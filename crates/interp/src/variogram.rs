//! Semivariogram estimation and model fitting for kriging.
//!
//! The empirical semivariogram `γ̂(h) = Σ_{|d_ij|≈h} (z_i − z_j)² / 2N_h`
//! is binned over pairwise distances; a bounded model (spherical /
//! exponential / Gaussian) is then fitted by grid search over the range
//! parameter with a constrained linear solve for nugget and partial
//! sill — the standard practical recipe (gstat, PyKrige).

use lsga_core::soa::{distances_sq_tile, PointsSoA, TILE};
use lsga_core::Point;

/// The bounded variogram model families every surveyed package offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariogramModelKind {
    Spherical,
    Exponential,
    Gaussian,
}

impl VariogramModelKind {
    /// Normalized structure function `f(h/range) ∈ [0, 1]`.
    fn shape(&self, h: f64, range: f64) -> f64 {
        if h <= 0.0 {
            return 0.0;
        }
        let r = h / range;
        match self {
            VariogramModelKind::Spherical => {
                if r >= 1.0 {
                    1.0
                } else {
                    1.5 * r - 0.5 * r * r * r
                }
            }
            VariogramModelKind::Exponential => 1.0 - (-3.0 * r).exp(),
            VariogramModelKind::Gaussian => 1.0 - (-3.0 * r * r).exp(),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            VariogramModelKind::Spherical => "spherical",
            VariogramModelKind::Exponential => "exponential",
            VariogramModelKind::Gaussian => "gaussian",
        }
    }
}

/// A fitted variogram model `γ(h) = nugget + psill · f(h / range)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariogramModel {
    pub kind: VariogramModelKind,
    pub nugget: f64,
    /// Partial sill (sill − nugget).
    pub psill: f64,
    pub range: f64,
}

impl VariogramModel {
    /// Semivariance at lag `h`.
    pub fn gamma(&self, h: f64) -> f64 {
        self.nugget + self.psill * self.kind.shape(h, self.range)
    }

    /// Total sill.
    pub fn sill(&self) -> f64 {
        self.nugget + self.psill
    }
}

/// One empirical variogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariogramBin {
    /// Mean pair distance in the bin.
    pub lag: f64,
    /// Semivariance estimate.
    pub gamma: f64,
    /// Number of pairs in the bin.
    pub pairs: usize,
}

/// Estimate the empirical semivariogram over `n_bins` equal-width lag
/// bins up to `max_lag`. Empty bins are omitted.
pub fn empirical_variogram(
    samples: &[(Point, f64)],
    max_lag: f64,
    n_bins: usize,
) -> Vec<VariogramBin> {
    assert!(max_lag > 0.0 && n_bins >= 1);
    let width = max_lag / n_bins as f64;
    let mut sum_sq = vec![0.0f64; n_bins];
    let mut sum_d = vec![0.0f64; n_bins];
    let mut count = vec![0usize; n_bins];
    // Pair distances batched over columnar tail spans; the lag filter
    // and binning stay on d = √d² exactly as the scalar loop had them,
    // so bin membership is unchanged.
    let soa = PointsSoA::from_samples(samples);
    let mut d2s = [0.0f64; TILE];
    for i in 0..soa.len() {
        let (px, py, zp) = (soa.xs[i], soa.ys[i], soa.ws[i]);
        let txs = &soa.xs[i + 1..];
        let tys = &soa.ys[i + 1..];
        let tzs = &soa.ws[i + 1..];
        let mut s0 = 0;
        while s0 < txs.len() {
            let s1 = (s0 + TILE).min(txs.len());
            let len = s1 - s0;
            distances_sq_tile(px, py, &txs[s0..s1], &tys[s0..s1], &mut d2s[..len]);
            for (&d2, zq) in d2s[..len].iter().zip(&tzs[s0..s1]) {
                let d = d2.sqrt();
                if d > max_lag || d == 0.0 {
                    continue;
                }
                let bin = ((d / width) as usize).min(n_bins - 1);
                let dz = zp - zq;
                sum_sq[bin] += dz * dz;
                sum_d[bin] += d;
                count[bin] += 1;
            }
            s0 = s1;
        }
    }
    (0..n_bins)
        .filter(|b| count[*b] > 0)
        .map(|b| VariogramBin {
            lag: sum_d[b] / count[b] as f64,
            gamma: sum_sq[b] / (2.0 * count[b] as f64),
            pairs: count[b],
        })
        .collect()
}

/// Fit a variogram model to empirical bins: grid search over the range,
/// pair-count-weighted least squares for `(nugget, psill)` with
/// non-negativity clamps. Returns `None` for fewer than 3 bins.
pub fn fit_variogram(bins: &[VariogramBin], kind: VariogramModelKind) -> Option<VariogramModel> {
    if bins.len() < 3 {
        return None;
    }
    let max_lag = bins.iter().map(|b| b.lag).fold(0.0, f64::max);
    let mut best: Option<(f64, VariogramModel)> = None;
    // Candidate ranges spanning a decade around the observed lags.
    for step in 1..=40 {
        let range = max_lag * step as f64 / 20.0;
        // Weighted LS for gamma ≈ nugget + psill·f: 2×2 normal equations.
        let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for bin in bins {
            let w = bin.pairs as f64;
            let f = kind.shape(bin.lag, range);
            a11 += w;
            a12 += w * f;
            a22 += w * f * f;
            b1 += w * bin.gamma;
            b2 += w * f * bin.gamma;
        }
        let det = a11 * a22 - a12 * a12;
        let (mut nugget, mut psill) = if det.abs() > 1e-12 {
            ((b1 * a22 - b2 * a12) / det, (a11 * b2 - a12 * b1) / det)
        } else {
            (0.0, b2 / a22.max(1e-12))
        };
        // Clamp to the physically meaningful region.
        if nugget < 0.0 {
            nugget = 0.0;
            psill = b2 / a22.max(1e-12);
        }
        if psill < 0.0 {
            psill = 0.0;
            nugget = b1 / a11.max(1e-12);
        }
        let model = VariogramModel {
            kind,
            nugget,
            psill,
            range,
        };
        let sse: f64 = bins
            .iter()
            .map(|bin| {
                let e = model.gamma(bin.lag) - bin.gamma;
                bin.pairs as f64 * e * e
            })
            .sum();
        if best.as_ref().is_none_or(|(s, _)| sse < *s) {
            best = Some((sse, model));
        }
    }
    best.map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples from a field with known spherical-like covariance: a
    /// smooth sinusoidal surface sampled on a jittered lattice.
    fn field_samples() -> Vec<(Point, f64)> {
        let mut out = Vec::new();
        for i in 0..18 {
            for j in 0..18 {
                let x = i as f64 * 5.0 + ((i * 7 + j) % 3) as f64 * 0.7;
                let y = j as f64 * 5.0 + ((i + j * 5) % 3) as f64 * 0.7;
                let z = (x * 0.08).sin() * 10.0 + (y * 0.06).cos() * 10.0;
                out.push((Point::new(x, y), z));
            }
        }
        out
    }

    #[test]
    fn empirical_variogram_increases_from_zero() {
        let bins = empirical_variogram(&field_samples(), 40.0, 10);
        assert!(bins.len() >= 8);
        // Short lags: small gamma; it should grow over the first bins.
        assert!(bins[0].gamma < bins[3].gamma);
        assert!(bins[0].gamma < bins[0].gamma + 1e9); // sanity
        for b in &bins {
            assert!(b.gamma >= 0.0 && b.pairs > 0);
            assert!(b.lag > 0.0 && b.lag <= 40.0);
        }
    }

    #[test]
    fn shapes_are_bounded_and_monotone() {
        for kind in [
            VariogramModelKind::Spherical,
            VariogramModelKind::Exponential,
            VariogramModelKind::Gaussian,
        ] {
            let mut last = 0.0;
            let mut h = 0.0;
            while h < 30.0 {
                let v = kind.shape(h, 10.0);
                assert!((0.0..=1.0 + 1e-12).contains(&v), "{kind:?} at {h}");
                assert!(v >= last - 1e-12, "{kind:?} not monotone at {h}");
                last = v;
                h += 0.1;
            }
            assert!(kind.shape(1e9, 10.0) > 0.99);
            assert_eq!(kind.shape(0.0, 10.0), 0.0);
        }
    }

    #[test]
    fn spherical_reaches_sill_exactly_at_range() {
        let k = VariogramModelKind::Spherical;
        assert!((k.shape(10.0, 10.0) - 1.0).abs() < 1e-12);
        assert_eq!(k.shape(15.0, 10.0), 1.0);
    }

    #[test]
    fn fit_recovers_synthetic_model() {
        // Generate bins directly from a known model and refit.
        let truth = VariogramModel {
            kind: VariogramModelKind::Spherical,
            nugget: 2.0,
            psill: 8.0,
            range: 20.0,
        };
        let bins: Vec<VariogramBin> = (1..=15)
            .map(|i| {
                let lag = i as f64 * 2.0;
                VariogramBin {
                    lag,
                    gamma: truth.gamma(lag),
                    pairs: 100,
                }
            })
            .collect();
        let fit = fit_variogram(&bins, VariogramModelKind::Spherical).unwrap();
        assert!((fit.nugget - 2.0).abs() < 0.5, "nugget {}", fit.nugget);
        assert!((fit.sill() - 10.0).abs() < 0.5, "sill {}", fit.sill());
        assert!((fit.range - 20.0).abs() < 4.0, "range {}", fit.range);
    }

    #[test]
    fn fit_on_real_bins_is_sane() {
        let bins = empirical_variogram(&field_samples(), 40.0, 12);
        for kind in [
            VariogramModelKind::Spherical,
            VariogramModelKind::Exponential,
            VariogramModelKind::Gaussian,
        ] {
            let m = fit_variogram(&bins, kind).unwrap();
            assert!(m.nugget >= 0.0 && m.psill >= 0.0 && m.range > 0.0);
            assert!(m.sill() > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn too_few_bins_returns_none() {
        let bins = vec![
            VariogramBin {
                lag: 1.0,
                gamma: 1.0,
                pairs: 5,
            };
            2
        ];
        assert!(fit_variogram(&bins, VariogramModelKind::Spherical).is_none());
    }
}
