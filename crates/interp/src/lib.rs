//! # lsga-interp
//!
//! The spatial-interpolation hotspot tools of the paper's Table 1:
//!
//! * [`idw`] — inverse distance weighting. The paper (§2.4) quotes the
//!   naive cost `O(X·Y·n)` \[20\] as a motivating inefficiency; this module
//!   provides that baseline plus the two standard accelerations (k-NN
//!   "local Shepard" via kd-tree, fixed-radius via bucket grid).
//! * [`variogram`] / [`kriging`] — ordinary kriging: empirical
//!   semivariogram estimation, model fitting (spherical / exponential /
//!   Gaussian), and local-neighbourhood kriging prediction with
//!   per-pixel variance.
//!
//! Inputs are `(Point, value)` samples (sensor readings, measured
//! concentrations); outputs are [`lsga_core::DensityGrid`] rasters like
//! every other hotspot tool in the suite.

pub mod idw;
pub mod kriging;
pub mod variogram;

pub use idw::{
    idw_knn, idw_knn_threads, idw_naive, idw_naive_threads, idw_radius, idw_radius_threads,
};
pub use kriging::{
    leave_one_out_rmse, loo_kriging_rmse, ordinary_kriging, ordinary_kriging_threads,
    KrigingPrediction,
};
pub use variogram::{empirical_variogram, fit_variogram, VariogramModel, VariogramModelKind};
