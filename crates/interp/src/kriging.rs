//! Ordinary kriging with local neighbourhoods.
//!
//! For each query, the `k` nearest samples form the ordinary kriging
//! system (semivariogram matrix bordered by the unbiasedness constraint);
//! solving it yields the BLUE weights and the kriging variance. Local
//! neighbourhoods keep the dense solve at `O(k³)` per pixel — the
//! standard scalability device that the GPU-kriging papers the paper
//! cites (\[36, 53, 109\]) also build on.

use crate::variogram::VariogramModel;
use lsga_core::linalg::{solve, Matrix};
use lsga_core::par::{par_map, Threads};
use lsga_core::soa::distances_sq_tile;
use lsga_core::{DensityGrid, GridSpec, LsgaError, Point, Result};
use lsga_index::KdTree;
use lsga_obs::{self as obs, Counter, Hist};

/// Kriging output: predicted surface and per-pixel kriging variance.
#[derive(Debug, Clone, PartialEq)]
pub struct KrigingPrediction {
    pub prediction: DensityGrid,
    pub variance: DensityGrid,
}

/// Ordinary kriging of `samples` onto `spec` using a fitted variogram
/// `model` and `neighborhood`-nearest samples per pixel.
///
/// Duplicate sample locations make the kriging matrix singular; such
/// inputs surface as [`LsgaError::SingularSystem`]. Fewer samples than
/// `neighborhood` simply uses them all; at least one sample is required.
pub fn ordinary_kriging(
    samples: &[(Point, f64)],
    spec: GridSpec,
    model: &VariogramModel,
    neighborhood: usize,
) -> Result<KrigingPrediction> {
    ordinary_kriging_threads(samples, spec, model, neighborhood, Threads::auto())
}

/// [`ordinary_kriging`] with an explicit [`Threads`] config. Rows of
/// per-pixel solves run in parallel; a singular system anywhere reports
/// the error of the first failing row in row order, so both the surface
/// and the error are bit-identical for any thread count.
pub fn ordinary_kriging_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    model: &VariogramModel,
    neighborhood: usize,
    threads: Threads,
) -> Result<KrigingPrediction> {
    if samples.is_empty() {
        return Err(LsgaError::EmptyDataset("kriging samples"));
    }
    assert!(neighborhood >= 1, "neighbourhood must be at least 1");
    let _span = obs::span("interp.kriging");
    let pts: Vec<Point> = samples.iter().map(|(p, _)| *p).collect();
    let tree = KdTree::build(&pts);
    let mut prediction = DensityGrid::zeros(spec);
    let mut variance = DensityGrid::zeros(spec);
    let k = neighborhood.min(samples.len());

    let pts_ref = &pts;
    let tree_ref = &tree;
    let rows: Vec<Result<(Vec<f64>, Vec<f64>)>> = par_map(spec.ny, 1, threads, |iy| {
        let qy = spec.row_y(iy);
        let mut pred_row = vec![0.0; spec.nx];
        let mut var_row = vec![0.0; spec.nx];
        // Row-local neighbour coordinate columns and squared-distance
        // scratch, reused across the row's pixels.
        let mut nxs: Vec<f64> = Vec::with_capacity(k);
        let mut nys: Vec<f64> = Vec::with_capacity(k);
        let mut d2row: Vec<f64> = vec![0.0; k];
        let mut solves: u64 = 0;
        let mut weighed: u64 = 0;
        for ix in 0..spec.nx {
            let q = Point::new(spec.col_x(ix), qy);
            let nbrs = tree_ref.knn(&q, k);
            // Exact hit: prediction is the sample, variance the nugget.
            if let Some((i0, d0)) = nbrs.first() {
                if *d0 == 0.0 {
                    pred_row[ix] = samples[*i0 as usize].1;
                    var_row[ix] = model.nugget;
                    continue;
                }
            }
            let m = nbrs.len();
            if m == 1 {
                // Single sample: OK weights degenerate to copying it.
                let (i0, d0) = nbrs[0];
                pred_row[ix] = samples[i0 as usize].1;
                var_row[ix] = 2.0 * model.gamma(d0);
                continue;
            }
            // Ordinary kriging system:
            // [ Γ  1 ] [λ]   [γ(q)]
            // [ 1ᵀ 0 ] [μ] = [ 1  ]
            let mut a = Matrix::zeros(m + 1, m + 1);
            let mut rhs = vec![0.0; m + 1];
            nxs.clear();
            nys.clear();
            for (idx, _) in &nbrs {
                let p = pts_ref[*idx as usize];
                nxs.push(p.x);
                nys.push(p.y);
            }
            for r in 0..m {
                // One batched distance row per matrix row; γ stays on
                // d = √d², matching the scalar assembly bit-for-bit.
                distances_sq_tile(nxs[r], nys[r], &nxs, &nys, &mut d2row[..m]);
                for (c, d2) in d2row[..m].iter().enumerate() {
                    a.set(r, c, model.gamma(d2.sqrt()));
                }
                a.set(r, m, 1.0);
                a.set(m, r, 1.0);
                rhs[r] = model.gamma(nbrs[r].1);
            }
            rhs[m] = 1.0;
            let sol = solve(a, rhs.clone())?;
            solves += 1;
            weighed += m as u64;
            obs::record(Hist::KrigingSystemSize, (m + 1) as u64);
            let mut pred = 0.0;
            let mut var = sol[m]; // Lagrange multiplier μ
            for (r, (idx, _)) in nbrs.iter().enumerate() {
                pred += sol[r] * samples[*idx as usize].1;
                var += sol[r] * rhs[r];
            }
            if pred.is_finite() && var.is_finite() {
                pred_row[ix] = pred;
                var_row[ix] = var.max(0.0);
            } else {
                // Near-singular system: the solve succeeded but the
                // weights blew up. Repair like the m == 1 branch —
                // nearest sample, distance-based variance. (`var.max`
                // alone would silently turn a NaN variance into 0.)
                obs::incr(Counter::NumericAnomalies);
                let (i0, d0) = nbrs[0];
                pred_row[ix] = samples[i0 as usize].1;
                var_row[ix] = 2.0 * model.gamma(d0);
            }
        }
        obs::add(Counter::KrigingSolves, solves);
        obs::add(Counter::InterpPairs, weighed);
        Ok((pred_row, var_row))
    });
    for (iy, row) in rows.into_iter().enumerate() {
        let (pred_row, var_row) = row?;
        prediction.row_mut(iy).copy_from_slice(&pred_row);
        variance.row_mut(iy).copy_from_slice(&var_row);
    }
    Ok(KrigingPrediction {
        prediction,
        variance,
    })
}

/// Leave-one-out cross-validation of an interpolator over the samples:
/// for each sample, predict its value from all the others and return
/// the RMSE. `predict(training, location)` abstracts over IDW/kriging —
/// see [`loo_kriging_rmse`] and `lsga-interp::idw` for ready closures.
pub fn leave_one_out_rmse(
    samples: &[(Point, f64)],
    mut predict: impl FnMut(&[(Point, f64)], &Point) -> Result<f64>,
) -> Result<f64> {
    if samples.len() < 2 {
        return Err(LsgaError::EmptyDataset("need at least two samples for LOO"));
    }
    let mut sum_sq = 0.0;
    let mut held_out = Vec::with_capacity(samples.len() - 1);
    for i in 0..samples.len() {
        held_out.clear();
        held_out.extend_from_slice(&samples[..i]);
        held_out.extend_from_slice(&samples[i + 1..]);
        let pred = predict(&held_out, &samples[i].0)?;
        let e = pred - samples[i].1;
        sum_sq += e * e;
    }
    Ok((sum_sq / samples.len() as f64).sqrt())
}

/// LOO RMSE of ordinary kriging with the given model and neighbourhood —
/// the standard variogram-model selection criterion.
pub fn loo_kriging_rmse(
    samples: &[(Point, f64)],
    model: &VariogramModel,
    neighborhood: usize,
) -> Result<f64> {
    leave_one_out_rmse(samples, |training, q| {
        // One-pixel grid centred on the held-out location.
        let eps = 1e-6;
        let spec = lsga_core::GridSpec::new(
            lsga_core::BBox::new(q.x - eps, q.y - eps, q.x + eps, q.y + eps),
            1,
            1,
        );
        let out = ordinary_kriging(training, spec, model, neighborhood)?;
        Ok(out.prediction.at(0, 0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variogram::{empirical_variogram, fit_variogram, VariogramModelKind};
    use lsga_core::BBox;

    fn model() -> VariogramModel {
        VariogramModel {
            kind: VariogramModelKind::Spherical,
            nugget: 0.0,
            psill: 10.0,
            range: 30.0,
        }
    }

    fn smooth_samples() -> Vec<(Point, f64)> {
        let mut out = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 * 10.0 + 2.0 * (((i * 3 + j) % 5) as f64 / 5.0);
                let y = j as f64 * 10.0 + 2.0 * (((i + j * 7) % 5) as f64 / 5.0);
                out.push((Point::new(x, y), 5.0 + 0.2 * x - 0.1 * y));
            }
        }
        out
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 95.0, 95.0), 12, 12)
    }

    #[test]
    fn constant_field_reproduced_exactly() {
        let samples: Vec<(Point, f64)> = smooth_samples()
            .into_iter()
            .map(|(p, _)| (p, 3.5))
            .collect();
        let out = ordinary_kriging(&samples, spec(), &model(), 8).unwrap();
        for v in out.prediction.values() {
            assert!((v - 3.5).abs() < 1e-8, "got {v}");
        }
    }

    #[test]
    fn weights_sum_to_one_implies_mean_unbiasedness() {
        // Shifting all values by a constant must shift predictions by
        // the same constant (direct consequence of Σλ = 1).
        let s1 = smooth_samples();
        let s2: Vec<(Point, f64)> = s1.iter().map(|(p, z)| (*p, z + 100.0)).collect();
        let m = model();
        let a = ordinary_kriging(&s1, spec(), &m, 8).unwrap();
        let b = ordinary_kriging(&s2, spec(), &m, 8).unwrap();
        for (x, y) in a.prediction.values().iter().zip(b.prediction.values()) {
            assert!((y - x - 100.0).abs() < 1e-7);
        }
        // Variance is translation-invariant.
        assert!(a.variance.linf_diff(&b.variance) < 1e-7);
    }

    #[test]
    fn recovers_linear_trend() {
        let samples = smooth_samples();
        let out = ordinary_kriging(&samples, spec(), &model(), 12).unwrap();
        let q = spec().pixel_center(6, 6);
        let truth = 5.0 + 0.2 * q.x - 0.1 * q.y;
        let got = out.prediction.at(6, 6);
        assert!((got - truth).abs() < 1.0, "got {got}, truth {truth}");
    }

    #[test]
    fn variance_grows_away_from_samples() {
        // Samples only in the left half: variance must be larger on the
        // right edge than amid the samples.
        let samples: Vec<(Point, f64)> = smooth_samples()
            .into_iter()
            .filter(|(p, _)| p.x < 45.0)
            .collect();
        let out = ordinary_kriging(&samples, spec(), &model(), 8).unwrap();
        let near = out.variance.at(2, 6);
        let far = out.variance.at(11, 6);
        assert!(far > near, "near {near}, far {far}");
        for v in out.variance.values() {
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn end_to_end_with_fitted_variogram() {
        let samples = smooth_samples();
        let bins = empirical_variogram(&samples, 50.0, 12);
        let fitted = fit_variogram(&bins, VariogramModelKind::Exponential).unwrap();
        let out = ordinary_kriging(&samples, spec(), &fitted, 10).unwrap();
        // Predictions stay within a loose hull of the sample values.
        let zmin = samples
            .iter()
            .map(|(_, z)| *z)
            .fold(f64::INFINITY, f64::min);
        let zmax = samples
            .iter()
            .map(|(_, z)| *z)
            .fold(f64::NEG_INFINITY, f64::max);
        for v in out.prediction.values() {
            assert!(*v > zmin - 5.0 && *v < zmax + 5.0);
        }
    }

    #[test]
    fn loo_prefers_the_better_model() {
        // LOO RMSE must be small for a sensible fitted model and finite.
        let samples = smooth_samples();
        let bins = empirical_variogram(&samples, 50.0, 12);
        let good = fit_variogram(&bins, VariogramModelKind::Spherical).unwrap();
        let rmse = loo_kriging_rmse(&samples, &good, 10).unwrap();
        assert!(rmse < 1.0, "LOO RMSE {rmse}");
        // A nonsense model (tiny range -> pure nugget behaviour) is worse.
        let bad = VariogramModel {
            kind: VariogramModelKind::Spherical,
            nugget: 50.0,
            psill: 0.1,
            range: 0.5,
        };
        let rmse_bad = loo_kriging_rmse(&samples, &bad, 10).unwrap();
        assert!(rmse_bad > rmse, "good {rmse} vs bad {rmse_bad}");
    }

    #[test]
    fn loo_needs_two_samples() {
        let one = vec![(Point::new(0.0, 0.0), 1.0)];
        assert!(leave_one_out_rmse(&one, |_, _| Ok(0.0)).is_err());
    }

    #[test]
    fn empty_samples_error() {
        assert!(matches!(
            ordinary_kriging(&[], spec(), &model(), 4),
            Err(LsgaError::EmptyDataset(_))
        ));
    }

    #[test]
    fn duplicate_samples_reported_singular() {
        let dup = vec![
            (Point::new(10.0, 10.0), 1.0),
            (Point::new(10.0, 10.0), 2.0),
            (Point::new(30.0, 30.0), 3.0),
        ];
        let r = ordinary_kriging(&dup, spec(), &model(), 3);
        assert!(matches!(r, Err(LsgaError::SingularSystem(_))), "{r:?}");
    }

    #[test]
    fn exact_hits_have_nugget_variance() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let samples = vec![
            (Point::new(0.5, 0.5), 2.0),
            (Point::new(3.5, 3.5), 4.0),
            (Point::new(0.5, 3.5), 6.0),
        ];
        let m = model();
        let out = ordinary_kriging(&samples, spec, &m, 3).unwrap();
        assert_eq!(out.prediction.at(0, 0), 2.0);
        assert_eq!(out.variance.at(0, 0), m.nugget);
    }
}
