//! Inverse distance weighting (Shepard interpolation).
//!
//! `F(q) = Σ_i w_i·z_i / Σ_i w_i` with `w_i = 1 / dist(q, p_i)^power`.
//! A query coinciding with a sample returns that sample's value exactly
//! (the limit of the weights).

use lsga_core::par::{par_map_rows, Threads};
use lsga_core::soa::PointsSoA;
use lsga_core::{DensityGrid, GridSpec, Point};
use lsga_index::{GridIndex, KdTree};

/// Exact global IDW — the `O(X·Y·n)` baseline of \[20\].
pub fn idw_naive(samples: &[(Point, f64)], spec: GridSpec, power: f64) -> DensityGrid {
    idw_naive_threads(samples, spec, power, Threads::auto())
}

/// [`idw_naive`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel; output is bit-identical for any thread count.
pub fn idw_naive_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let soa = PointsSoA::from_samples(samples);
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        // (qy − y_i)² is shared by every pixel of the row; hoist it.
        let dy2: Vec<f64> = soa
            .ys
            .iter()
            .map(|y| {
                let dy = qy - *y;
                dy * dy
            })
            .collect();
        for (ix, out) in row.iter_mut().enumerate() {
            *out = idw_from_cols(&soa.xs, &dy2, &soa.ws, spec.col_x(ix), power);
        }
    });
    grid
}

/// IDW estimate at one query from columnar samples, with the y-leg of
/// the squared distance precomputed. Same fold order, exact-hit
/// short-circuit, and `den > 0` guard as the point-at-a-time loop it
/// replaced.
fn idw_from_cols(xs: &[f64], dy2: &[f64], zs: &[f64], qx: f64, power: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ((x, d), z) in xs.iter().zip(dy2).zip(zs) {
        let dx = qx - *x;
        let d2 = dx * dx + *d;
        if d2 == 0.0 {
            return *z;
        }
        let w = d2.powf(-0.5 * power);
        num += w * z;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Local IDW over the `k` nearest samples (Shepard's local method) via a
/// kd-tree: `O(X·Y·(k + log n))`.
pub fn idw_knn(samples: &[(Point, f64)], spec: GridSpec, power: f64, k: usize) -> DensityGrid {
    idw_knn_threads(samples, spec, power, k, Threads::auto())
}

/// [`idw_knn`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel; output is bit-identical for any thread count.
pub fn idw_knn_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    k: usize,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    assert!(k >= 1, "k must be at least 1");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let pts: Vec<Point> = samples.iter().map(|(p, _)| *p).collect();
    let tree = KdTree::build(&pts);
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        // Row-local neighbour columns, reused across the row's pixels.
        let mut nxs: Vec<f64> = Vec::with_capacity(k);
        let mut nys: Vec<f64> = Vec::with_capacity(k);
        let mut nzs: Vec<f64> = Vec::with_capacity(k);
        for (ix, out) in row.iter_mut().enumerate() {
            let q = Point::new(spec.col_x(ix), qy);
            let nbrs = tree.knn(&q, k);
            nxs.clear();
            nys.clear();
            nzs.clear();
            for (i, _) in &nbrs {
                let (p, z) = samples[*i as usize];
                nxs.push(p.x);
                nys.push(p.y);
                nzs.push(z);
            }
            *out = idw_gathered(&nxs, &nys, &nzs, q.x, q.y, power);
        }
    });
    grid
}

/// IDW estimate at one query from gathered neighbour columns —
/// bit-identical to [`idw_from_cols`] for the same sample order.
fn idw_gathered(xs: &[f64], ys: &[f64], zs: &[f64], qx: f64, qy: f64, power: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ((x, y), z) in xs.iter().zip(ys).zip(zs) {
        let dx = qx - *x;
        let dy = qy - *y;
        let d2 = dx * dx + dy * dy;
        if d2 == 0.0 {
            return *z;
        }
        let w = d2.powf(-0.5 * power);
        num += w * z;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Local IDW over the samples within `radius` (bucket grid). Pixels with
/// no sample in range fall back to the single nearest sample, so the
/// surface is total.
pub fn idw_radius(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    radius: f64,
) -> DensityGrid {
    idw_radius_threads(samples, spec, power, radius, Threads::auto())
}

/// [`idw_radius`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel, each with its own candidate scratch buffer;
/// output is bit-identical for any thread count.
pub fn idw_radius_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    radius: f64,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    assert!(radius > 0.0, "radius must be positive");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let pts: Vec<Point> = samples.iter().map(|(p, _)| *p).collect();
    let index = GridIndex::build(&pts, radius);
    let tree = KdTree::build(&pts); // nearest-sample fallback
    let r2 = radius * radius;
    // Sample values in entry order, parallel to the index's coordinate
    // columns — the in-range filter and accumulation fuse into one scan.
    let ezs: Vec<f64> = index
        .entries()
        .iter()
        .map(|&i| samples[i as usize].1)
        .collect();
    let (exs, eys) = (index.entry_xs(), index.entry_ys());
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        for (ix, out) in row.iter_mut().enumerate() {
            let qx = spec.col_x(ix);
            let (cx0, cx1) = index.cell_col_range(qx - radius, qx + radius);
            let (cy0, cy1) = index.cell_row_range(qy - radius, qy + radius);
            let mut num = 0.0;
            let mut den = 0.0;
            let mut any = false;
            let mut exact = None;
            'cells: for cy in cy0..=cy1 {
                for k in index.row_span(cy, cx0, cx1) {
                    let dx = qx - exs[k];
                    let dy = qy - eys[k];
                    let d2 = dx * dx + dy * dy;
                    if d2 <= r2 {
                        let z = ezs[k];
                        if d2 == 0.0 {
                            exact = Some(z);
                            break 'cells;
                        }
                        any = true;
                        let w = d2.powf(-0.5 * power);
                        num += w * z;
                        den += w;
                    }
                }
            }
            *out = if let Some(z) = exact {
                z
            } else if !any {
                let q = Point::new(qx, qy);
                let nn = tree.knn(&q, 1);
                samples[nn[0].0 as usize].1
            } else if den > 0.0 {
                num / den
            } else {
                0.0
            };
        }
    });
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;

    fn samples() -> Vec<(Point, f64)> {
        (0..60)
            .map(|i| {
                let f = i as f64;
                let p = Point::new(
                    50.0 + (f * 0.831).sin() * 45.0,
                    50.0 + (f * 0.557).cos() * 45.0,
                );
                // A smooth underlying field.
                let z = 10.0 + 0.1 * p.x + 0.05 * p.y;
                (p, z)
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 20, 20)
    }

    #[test]
    fn prediction_within_sample_range() {
        let s = samples();
        let grid = idw_naive(&s, spec(), 2.0);
        let zmin = s.iter().map(|(_, z)| *z).fold(f64::INFINITY, f64::min);
        let zmax = s.iter().map(|(_, z)| *z).fold(f64::NEG_INFINITY, f64::max);
        for v in grid.values() {
            assert!(*v >= zmin - 1e-9 && *v <= zmax + 1e-9);
        }
    }

    #[test]
    fn exact_hit_returns_sample_value() {
        // Put a sample exactly on a pixel centre.
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let s = vec![(Point::new(1.5, 2.5), 7.0), (Point::new(3.0, 3.0), 1.0)];
        let grid = idw_naive(&s, spec, 2.0);
        assert_eq!(grid.at(1, 2), 7.0);
    }

    #[test]
    fn knn_with_full_k_equals_naive() {
        let s = samples();
        let naive = idw_naive(&s, spec(), 2.0);
        let knn = idw_knn(&s, spec(), 2.0, s.len());
        assert!(naive.linf_diff(&knn) < 1e-9);
    }

    #[test]
    fn knn_close_to_naive_for_moderate_k() {
        let s = samples();
        let naive = idw_naive(&s, spec(), 3.0);
        let knn = idw_knn(&s, spec(), 3.0, 12);
        // Distant samples carry little weight at power 3.
        let rel = knn.rel_diff(&naive, 1.0);
        assert!(rel < 0.1, "rel {rel}");
    }

    #[test]
    fn radius_variant_total_and_reasonable() {
        let s = samples();
        let grid = idw_radius(&s, spec(), 2.0, 20.0);
        let zmin = s.iter().map(|(_, z)| *z).fold(f64::INFINITY, f64::min);
        let zmax = s.iter().map(|(_, z)| *z).fold(f64::NEG_INFINITY, f64::max);
        for v in grid.values() {
            assert!(*v >= zmin - 1e-9 && *v <= zmax + 1e-9);
        }
    }

    #[test]
    fn empty_samples_give_zero_grid() {
        assert_eq!(idw_naive(&[], spec(), 2.0).sum(), 0.0);
        assert_eq!(idw_knn(&[], spec(), 2.0, 3).sum(), 0.0);
        assert_eq!(idw_radius(&[], spec(), 2.0, 5.0).sum(), 0.0);
    }

    #[test]
    fn single_sample_constant_surface() {
        let s = vec![(Point::new(50.0, 50.0), 42.0)];
        let grid = idw_naive(&s, spec(), 2.0);
        for v in grid.values() {
            assert!((*v - 42.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn recovers_smooth_field_approximately() {
        let s = samples();
        let grid = idw_knn(&s, spec(), 2.0, 8);
        // Check the centre pixel against the generating field.
        let q = spec().pixel_center(10, 10);
        let truth = 10.0 + 0.1 * q.x + 0.05 * q.y;
        let got = grid.at(10, 10);
        assert!((got - truth).abs() < 2.0, "got {got}, truth {truth}");
    }
}
