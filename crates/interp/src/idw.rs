//! Inverse distance weighting (Shepard interpolation).
//!
//! `F(q) = Σ_i w_i·z_i / Σ_i w_i` with `w_i = 1 / dist(q, p_i)^power`.
//! A query coinciding with a sample returns that sample's value exactly
//! (the limit of the weights).
//!
//! # Numeric robustness
//!
//! `w = d2^(−power/2)` overflows to `+inf` once `d2` drops below
//! ~`1e-308^(2/power)` — two near-coincident samples then accumulate
//! `num = den = inf` and the estimate collapses to `inf/inf = NaN`.
//! The accumulation loops below keep their fast form bit-for-bit, but
//! a non-finite (or vanished) accumulator triggers a repair pass
//! ([`idw_stable`]) that forms the weights in log space, so no public
//! IDW entry point returns a non-finite value for finite inputs. Every
//! repair bumps [`Counter::NumericAnomalies`].
//!
//! A squared distance that *underflows* to `0.0` (separation below
//! ~`1.5e-162`) is deliberately treated as an exact hit: the first
//! such sample in fold order wins. This keeps the exact-hit branch a
//! single comparison and is the limit behaviour anyway.

use lsga_core::par::{par_map_rows, Threads};
use lsga_core::soa::PointsSoA;
use lsga_core::{DensityGrid, GridSpec, Point};
use lsga_index::{GridIndex, KdTree};
use lsga_obs::{self as obs, Counter};

/// Exact global IDW — the `O(X·Y·n)` baseline of \[20\].
pub fn idw_naive(samples: &[(Point, f64)], spec: GridSpec, power: f64) -> DensityGrid {
    idw_naive_threads(samples, spec, power, Threads::auto())
}

/// [`idw_naive`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel; output is bit-identical for any thread count.
pub fn idw_naive_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    let _span = obs::span("interp.idw_naive");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let soa = PointsSoA::from_samples(samples);
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        // (qy − y_i)² is shared by every pixel of the row; hoist it.
        let dy2: Vec<f64> = soa
            .ys
            .iter()
            .map(|y| {
                let dy = qy - *y;
                dy * dy
            })
            .collect();
        for (ix, out) in row.iter_mut().enumerate() {
            *out = idw_from_cols(&soa.xs, &dy2, &soa.ws, spec.col_x(ix), power);
        }
        obs::add(Counter::InterpPairs, (soa.xs.len() * row.len()) as u64);
    });
    grid
}

/// IDW estimate at one query from columnar samples, with the y-leg of
/// the squared distance precomputed. Same fold order and exact-hit
/// short-circuit as the point-at-a-time loop it replaced; a non-finite
/// or vanished accumulator diverts to the [`idw_stable`] repair pass.
fn idw_from_cols(xs: &[f64], dy2: &[f64], zs: &[f64], qx: f64, power: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ((x, d), z) in xs.iter().zip(dy2).zip(zs) {
        let dx = qx - *x;
        let d2 = dx * dx + *d;
        if d2 == 0.0 {
            return *z;
        }
        let w = d2.powf(-0.5 * power);
        num += w * z;
        den += w;
    }
    if num.is_finite() && den.is_finite() && den > 0.0 {
        num / den
    } else {
        obs::incr(Counter::NumericAnomalies);
        let pairs: Vec<(f64, f64)> = xs
            .iter()
            .zip(dy2)
            .zip(zs)
            .map(|((x, d), z)| {
                let dx = qx - *x;
                (dx * dx + *d, *z)
            })
            .collect();
        idw_stable(&pairs, power)
    }
}

/// Numerically robust IDW fallback, used only after the fast
/// accumulation over- or underflowed. Weights are formed in log space
/// (`ln w = −(power/2)·ln d2`, finite for every positive `d2`) and
/// rescaled by the maximum, which preserves weight *ratios* even where
/// `d2^(−power/2)` itself is `inf` or `0`. Callers guarantee `pairs`
/// is non-empty and every `d2 > 0` (exact hits short-circuit earlier).
fn idw_stable(pairs: &[(f64, f64)], power: f64) -> f64 {
    debug_assert!(!pairs.is_empty());
    let lw = |d2: f64| -0.5 * power * d2.ln();
    let lmax = pairs
        .iter()
        .map(|(d2, _)| lw(*d2))
        .fold(f64::NEG_INFINITY, f64::max);
    if lmax == f64::NEG_INFINITY {
        // Every d2 overflowed to +inf: all weights vanish together, so
        // the only defensible estimate left is the unweighted mean.
        let n = pairs.len() as f64;
        return pairs.iter().map(|(_, z)| *z).sum::<f64>() / n;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (d2, z) in pairs {
        let r = (lw(*d2) - lmax).exp(); // in [0, 1]; the nearest sample gets 1
        num += r * z;
        den += r;
    }
    num / den
}

/// Local IDW over the `k` nearest samples (Shepard's local method) via a
/// kd-tree: `O(X·Y·(k + log n))`.
pub fn idw_knn(samples: &[(Point, f64)], spec: GridSpec, power: f64, k: usize) -> DensityGrid {
    idw_knn_threads(samples, spec, power, k, Threads::auto())
}

/// [`idw_knn`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel; output is bit-identical for any thread count.
pub fn idw_knn_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    k: usize,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    assert!(k >= 1, "k must be at least 1");
    let _span = obs::span("interp.idw_knn");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let pts: Vec<Point> = samples.iter().map(|(p, _)| *p).collect();
    let tree = KdTree::build(&pts);
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        // Row-local neighbour columns, reused across the row's pixels.
        let mut nxs: Vec<f64> = Vec::with_capacity(k);
        let mut nys: Vec<f64> = Vec::with_capacity(k);
        let mut nzs: Vec<f64> = Vec::with_capacity(k);
        let mut gathered: u64 = 0;
        for (ix, out) in row.iter_mut().enumerate() {
            let q = Point::new(spec.col_x(ix), qy);
            let nbrs = tree.knn(&q, k);
            gathered += nbrs.len() as u64;
            nxs.clear();
            nys.clear();
            nzs.clear();
            for (i, _) in &nbrs {
                let (p, z) = samples[*i as usize];
                nxs.push(p.x);
                nys.push(p.y);
                nzs.push(z);
            }
            *out = idw_gathered(&nxs, &nys, &nzs, q.x, q.y, power);
        }
        obs::add(Counter::InterpPairs, gathered);
    });
    grid
}

/// IDW estimate at one query from gathered neighbour columns —
/// bit-identical to [`idw_from_cols`] for the same sample order.
fn idw_gathered(xs: &[f64], ys: &[f64], zs: &[f64], qx: f64, qy: f64, power: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ((x, y), z) in xs.iter().zip(ys).zip(zs) {
        let dx = qx - *x;
        let dy = qy - *y;
        let d2 = dx * dx + dy * dy;
        if d2 == 0.0 {
            return *z;
        }
        let w = d2.powf(-0.5 * power);
        num += w * z;
        den += w;
    }
    if num.is_finite() && den.is_finite() && den > 0.0 {
        num / den
    } else {
        obs::incr(Counter::NumericAnomalies);
        let pairs: Vec<(f64, f64)> = xs
            .iter()
            .zip(ys)
            .zip(zs)
            .map(|((x, y), z)| {
                let dx = qx - *x;
                let dy = qy - *y;
                (dx * dx + dy * dy, *z)
            })
            .collect();
        idw_stable(&pairs, power)
    }
}

/// Local IDW over the samples within `radius` (bucket grid). Pixels with
/// no sample in range fall back to the single nearest sample, so the
/// surface is total.
pub fn idw_radius(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    radius: f64,
) -> DensityGrid {
    idw_radius_threads(samples, spec, power, radius, Threads::auto())
}

/// [`idw_radius`] with an explicit [`Threads`] config. Grid rows are
/// computed in parallel, each with its own candidate scratch buffer;
/// output is bit-identical for any thread count.
pub fn idw_radius_threads(
    samples: &[(Point, f64)],
    spec: GridSpec,
    power: f64,
    radius: f64,
    threads: Threads,
) -> DensityGrid {
    assert!(power > 0.0, "power must be positive");
    assert!(radius > 0.0, "radius must be positive");
    let _span = obs::span("interp.idw_radius");
    let mut grid = DensityGrid::zeros(spec);
    if samples.is_empty() {
        return grid;
    }
    let pts: Vec<Point> = samples.iter().map(|(p, _)| *p).collect();
    let index = GridIndex::build(&pts, radius);
    let tree = KdTree::build(&pts); // nearest-sample fallback
    let r2 = radius * radius;
    // Sample values in entry order, parallel to the index's coordinate
    // columns — the in-range filter and accumulation fuse into one scan.
    let ezs: Vec<f64> = index
        .entries()
        .iter()
        .map(|&i| samples[i as usize].1)
        .collect();
    let (exs, eys) = (index.entry_xs(), index.entry_ys());
    par_map_rows(grid.values_mut(), spec.nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        let mut scanned: u64 = 0;
        for (ix, out) in row.iter_mut().enumerate() {
            let qx = spec.col_x(ix);
            let (cx0, cx1) = index.cell_col_range(qx - radius, qx + radius);
            let (cy0, cy1) = index.cell_row_range(qy - radius, qy + radius);
            let mut num = 0.0;
            let mut den = 0.0;
            let mut any = false;
            let mut exact = None;
            'cells: for cy in cy0..=cy1 {
                for k in index.row_span(cy, cx0, cx1) {
                    scanned += 1;
                    let dx = qx - exs[k];
                    let dy = qy - eys[k];
                    let d2 = dx * dx + dy * dy;
                    if d2 <= r2 {
                        let z = ezs[k];
                        if d2 == 0.0 {
                            exact = Some(z);
                            break 'cells;
                        }
                        any = true;
                        let w = d2.powf(-0.5 * power);
                        num += w * z;
                        den += w;
                    }
                }
            }
            *out = if let Some(z) = exact {
                z
            } else if !any {
                let q = Point::new(qx, qy);
                let nn = tree.knn(&q, 1);
                samples[nn[0].0 as usize].1
            } else if num.is_finite() && den.is_finite() && den > 0.0 {
                num / den
            } else {
                // Rare repair pass: rescan the same spans with the
                // log-space accumulation. `exact` is None here, so
                // every in-range d2 is positive.
                obs::incr(Counter::NumericAnomalies);
                let mut pairs: Vec<(f64, f64)> = Vec::new();
                for cy in cy0..=cy1 {
                    for k in index.row_span(cy, cx0, cx1) {
                        let dx = qx - exs[k];
                        let dy = qy - eys[k];
                        let d2 = dx * dx + dy * dy;
                        if d2 <= r2 {
                            pairs.push((d2, ezs[k]));
                        }
                    }
                }
                idw_stable(&pairs, power)
            };
        }
        obs::add(Counter::InterpPairs, scanned);
    });
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;

    fn samples() -> Vec<(Point, f64)> {
        (0..60)
            .map(|i| {
                let f = i as f64;
                let p = Point::new(
                    50.0 + (f * 0.831).sin() * 45.0,
                    50.0 + (f * 0.557).cos() * 45.0,
                );
                // A smooth underlying field.
                let z = 10.0 + 0.1 * p.x + 0.05 * p.y;
                (p, z)
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 20, 20)
    }

    #[test]
    fn prediction_within_sample_range() {
        let s = samples();
        let grid = idw_naive(&s, spec(), 2.0);
        let zmin = s.iter().map(|(_, z)| *z).fold(f64::INFINITY, f64::min);
        let zmax = s.iter().map(|(_, z)| *z).fold(f64::NEG_INFINITY, f64::max);
        for v in grid.values() {
            assert!(*v >= zmin - 1e-9 && *v <= zmax + 1e-9);
        }
    }

    #[test]
    fn exact_hit_returns_sample_value() {
        // Put a sample exactly on a pixel centre.
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let s = vec![(Point::new(1.5, 2.5), 7.0), (Point::new(3.0, 3.0), 1.0)];
        let grid = idw_naive(&s, spec, 2.0);
        assert_eq!(grid.at(1, 2), 7.0);
    }

    #[test]
    fn knn_with_full_k_equals_naive() {
        let s = samples();
        let naive = idw_naive(&s, spec(), 2.0);
        let knn = idw_knn(&s, spec(), 2.0, s.len());
        assert!(naive.linf_diff(&knn) < 1e-9);
    }

    #[test]
    fn knn_close_to_naive_for_moderate_k() {
        let s = samples();
        let naive = idw_naive(&s, spec(), 3.0);
        let knn = idw_knn(&s, spec(), 3.0, 12);
        // Distant samples carry little weight at power 3.
        let rel = knn.rel_diff(&naive, 1.0);
        assert!(rel < 0.1, "rel {rel}");
    }

    #[test]
    fn radius_variant_total_and_reasonable() {
        let s = samples();
        let grid = idw_radius(&s, spec(), 2.0, 20.0);
        let zmin = s.iter().map(|(_, z)| *z).fold(f64::INFINITY, f64::min);
        let zmax = s.iter().map(|(_, z)| *z).fold(f64::NEG_INFINITY, f64::max);
        for v in grid.values() {
            assert!(*v >= zmin - 1e-9 && *v <= zmax + 1e-9);
        }
    }

    #[test]
    fn empty_samples_give_zero_grid() {
        assert_eq!(idw_naive(&[], spec(), 2.0).sum(), 0.0);
        assert_eq!(idw_knn(&[], spec(), 2.0, 3).sum(), 0.0);
        assert_eq!(idw_radius(&[], spec(), 2.0, 5.0).sum(), 0.0);
    }

    #[test]
    fn single_sample_constant_surface() {
        let s = vec![(Point::new(50.0, 50.0), 42.0)];
        let grid = idw_naive(&s, spec(), 2.0);
        for v in grid.values() {
            assert!((*v - 42.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn near_coincident_samples_do_not_produce_nan() {
        // The headline bug: samples at x = 1e-160 and 2e-160 give the
        // centre pixel (query at the origin) d² ≈ 1e-320, so
        // w = d2^(−power/2) overflows to +inf for power ≥ 2 and the
        // old accumulation returned inf/inf = NaN. The repair path
        // must keep every pixel finite and within the sample range.
        for power in [1.0, 2.0, 4.0] {
            let s = vec![
                (Point::new(1e-160, 0.0), 3.0),
                (Point::new(2e-160, 0.0), 5.0),
            ];
            let spec = GridSpec::new(BBox::new(-1.0, -1.0, 1.0, 1.0), 3, 3);
            let naive = idw_naive(&s, spec, power);
            let knn = idw_knn(&s, spec, power, 2);
            let radius = idw_radius(&s, spec, power, 4.0);
            for g in [&naive, &knn, &radius] {
                for v in g.values() {
                    assert!(v.is_finite(), "power {power}: got {v}");
                    assert!(
                        *v >= 3.0 - 1e-9 && *v <= 5.0 + 1e-9,
                        "power {power}: got {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn repair_preserves_weight_ratios() {
        // At the origin, d₁² ≈ 1e-320 and d₂² ≈ 4e-320: the power-2
        // weight ratio is ≈ 4:1, i.e. the estimate ≈ (4·3 + 5)/5 =
        // 3.4. The log-space repair must reproduce the ratio between
        // the actual (subnormal) squared distances even though both
        // raw weights are +inf.
        let s = vec![
            (Point::new(1e-160, 0.0), 3.0),
            (Point::new(2e-160, 0.0), 5.0),
        ];
        let spec = GridSpec::new(BBox::new(-1.0, -1.0, 1.0, 1.0), 3, 3);
        let grid = idw_naive(&s, spec, 2.0);
        let s1 = 1e-160_f64 * 1e-160;
        let s2 = 2e-160_f64 * 2e-160;
        let r = (s1.ln() - s2.ln()).exp(); // w₂/w₁ at power 2
        let expect = (3.0 + r * 5.0) / (1.0 + r);
        assert!((expect - 3.4).abs() < 1e-3, "repro drifted: {expect}");
        assert!(
            (grid.at(1, 1) - expect).abs() < 1e-12,
            "got {}, expect {expect}",
            grid.at(1, 1)
        );
    }

    #[test]
    fn underflowing_separation_is_an_exact_hit() {
        // |q − p| = 1e-200 ⇒ d² underflows to exactly 0.0. Documented
        // semantics: treated as an exact hit, first sample in fold
        // order wins.
        let spec = GridSpec::new(BBox::new(-1.0, -1.0, 1.0, 1.0), 3, 3);
        let s = vec![
            (Point::new(1e-200, 0.0), 7.0),
            (Point::new(-1e-200, 0.0), 9.0),
        ];
        let grid = idw_naive(&s, spec, 2.0);
        assert_eq!(grid.at(1, 1), 7.0);
    }

    #[test]
    fn all_weights_underflowing_fall_back_to_mean() {
        // Samples ~1e170 away: d² overflows to +inf, every weight is
        // exactly 0, and the old code returned the bogus constant 0.0.
        // The repair yields the unweighted mean instead.
        let spec = GridSpec::new(BBox::new(-1.0, -1.0, 1.0, 1.0), 3, 3);
        let s = vec![
            (Point::new(1e170, 0.0), 2.0),
            (Point::new(-1e170, 0.0), 4.0),
        ];
        let grid = idw_naive(&s, spec, 2.0);
        for v in grid.values() {
            assert!((*v - 3.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn recovers_smooth_field_approximately() {
        let s = samples();
        let grid = idw_knn(&s, spec(), 2.0, 8);
        // Check the centre pixel against the generating field.
        let q = spec().pixel_center(10, 10);
        let truth = 10.0 + 0.1 * q.x + 0.05 * q.y;
        let got = grid.at(10, 10);
        assert!((got - truth).abs() < 2.0, "got {got}, truth {truth}");
    }
}
