//! Property tests: interpolation laws on arbitrary inputs.

use lsga_core::{BBox, GridSpec, Point};
use lsga_interp::{
    empirical_variogram, fit_variogram, idw_knn, idw_naive, ordinary_kriging, VariogramModel,
    VariogramModelKind,
};
use proptest::prelude::*;

fn arb_samples(min: usize, max: usize) -> impl Strategy<Value = Vec<(Point, f64)>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0, -50.0f64..50.0).prop_map(|(x, y, z)| (Point::new(x, y), z)),
        min..max,
    )
    .prop_map(|mut v| {
        // Kriging requires distinct locations: drop near-duplicates.
        v.sort_by(|a, b| a.0.x.total_cmp(&b.0.x).then(a.0.y.total_cmp(&b.0.y)));
        v.dedup_by(|a, b| a.0.dist(&b.0) < 1e-6);
        v
    })
}

fn spec() -> GridSpec {
    GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 8, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn idw_is_a_convex_combination(samples in arb_samples(1, 40), power in 0.5f64..4.0) {
        let zmin = samples.iter().map(|(_, z)| *z).fold(f64::INFINITY, f64::min);
        let zmax = samples.iter().map(|(_, z)| *z).fold(f64::NEG_INFINITY, f64::max);
        for grid in [
            idw_naive(&samples, spec(), power),
            idw_knn(&samples, spec(), power, 5),
        ] {
            for v in grid.values() {
                prop_assert!(*v >= zmin - 1e-9 && *v <= zmax + 1e-9);
            }
        }
    }

    #[test]
    fn idw_translation_equivariant_in_values(
        samples in arb_samples(2, 30),
        power in 1.0f64..3.0,
        shift in -20.0f64..20.0,
    ) {
        let shifted: Vec<(Point, f64)> = samples.iter().map(|(p, z)| (*p, z + shift)).collect();
        let a = idw_naive(&samples, spec(), power);
        let b = idw_naive(&shifted, spec(), power);
        for (x, y) in a.values().iter().zip(b.values()) {
            prop_assert!((y - x - shift).abs() < 1e-7);
        }
    }

    #[test]
    fn variogram_models_well_behaved(
        nugget in 0.0f64..10.0,
        psill in 0.0f64..50.0,
        range in 0.5f64..100.0,
        kind_i in 0usize..3,
    ) {
        let kinds = [
            VariogramModelKind::Spherical,
            VariogramModelKind::Exponential,
            VariogramModelKind::Gaussian,
        ];
        let m = VariogramModel { kind: kinds[kind_i], nugget, psill, range };
        let mut last = m.gamma(0.0);
        prop_assert!((last - nugget).abs() < 1e-12);
        let mut h = 0.0;
        while h < 3.0 * range {
            h += range / 25.0;
            let g = m.gamma(h);
            prop_assert!(g >= last - 1e-9, "gamma not monotone");
            prop_assert!(g <= m.sill() + 1e-9);
            last = g;
        }
    }

    #[test]
    fn kriging_exact_at_samples_and_bounded_variance(samples in arb_samples(3, 25)) {
        prop_assume!(samples.len() >= 3);
        let bins = empirical_variogram(&samples, 80.0, 8);
        prop_assume!(bins.len() >= 3);
        let model = fit_variogram(&bins, VariogramModelKind::Exponential);
        prop_assume!(model.is_some());
        let model = model.unwrap();
        prop_assume!(model.sill() > 1e-9);
        if let Ok(out) = ordinary_kriging(&samples, spec(), &model, 8) {
            for v in out.variance.values() {
                prop_assert!(*v >= 0.0);
                prop_assert!(v.is_finite());
            }
            for v in out.prediction.values() {
                prop_assert!(v.is_finite());
            }
        }
    }
}
