//! End-to-end tests of the `lsga` command-line tool: every subcommand
//! driven through a real process, files verified on disk.

use std::path::PathBuf;
use std::process::Command;

fn lsga() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsga"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsga_cli_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = lsga().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("kdv"));
    assert!(text.contains("kfunc"));
}

#[test]
fn no_command_fails_with_usage() {
    let out = lsga().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn unknown_flags_and_commands_rejected() {
    let out = lsga().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = lsga().args(["kdv", "positional"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--flag"));
}

#[test]
fn generate_then_kdv_then_kfunc_pipeline() {
    let dir = temp_dir("pipeline");
    let csv = dir.join("pts.csv");
    let png = dir.join("heat.png");
    let svg = dir.join("kplot.svg");

    // generate
    let out = lsga()
        .args(["generate", "--kind", "crime", "--n", "3000"])
        .args(["--seed", "7", "--out", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    // kdv with auto bandwidth -> PNG
    let out = lsga()
        .args(["kdv", "--in", csv.to_str().unwrap()])
        .args(["--out", png.to_str().unwrap(), "--width", "128"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&png).unwrap();
    assert_eq!(&bytes[1..4], b"PNG");
    let log = String::from_utf8(out.stderr).unwrap();
    assert!(log.contains("hotspot"), "{log}");

    // kfunc -> CSV on stdout + SVG file
    let out = lsga()
        .args(["kfunc", "--in", csv.to_str().unwrap()])
        .args([
            "--steps",
            "5",
            "--sims",
            "5",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.starts_with("s,observed"));
    assert_eq!(table.lines().count(), 6); // header + 5 thresholds
    assert!(table.contains("Clustered"), "{table}");
    assert!(std::fs::read_to_string(&svg).unwrap().contains("<svg"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kdv_methods_and_formats() {
    let dir = temp_dir("methods");
    let csv = dir.join("pts.csv");
    lsga()
        .args([
            "generate",
            "--kind",
            "taxi",
            "--n",
            "2000",
            "--out",
            csv.to_str().unwrap(),
        ])
        .output()
        .unwrap();

    // grid method + gaussian kernel + ppm output
    let ppm = dir.join("heat.ppm");
    let out = lsga()
        .args([
            "kdv",
            "--in",
            csv.to_str().unwrap(),
            "--out",
            ppm.to_str().unwrap(),
        ])
        .args(["--method", "grid", "--kernel", "gaussian", "--width", "64"])
        .args(["--colormap", "viridis"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read(&ppm).unwrap().starts_with(b"P6"));

    // binned method demands gaussian
    let out = lsga()
        .args([
            "kdv",
            "--in",
            csv.to_str().unwrap(),
            "--out",
            ppm.to_str().unwrap(),
        ])
        .args(["--method", "binned", "--kernel", "quartic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("gaussian"));

    // slam rejects non-polynomial kernels with a helpful message
    let out = lsga()
        .args([
            "kdv",
            "--in",
            csv.to_str().unwrap(),
            "--out",
            ppm.to_str().unwrap(),
        ])
        .args(["--kernel", "gaussian"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("polynomial"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn moran_and_dbscan_outputs() {
    let dir = temp_dir("stats");
    let csv = dir.join("pts.csv");
    lsga()
        .args([
            "generate",
            "--kind",
            "crime",
            "--n",
            "4000",
            "--out",
            csv.to_str().unwrap(),
        ])
        .output()
        .unwrap();

    let out = lsga()
        .args([
            "moran",
            "--in",
            csv.to_str().unwrap(),
            "--cells",
            "12",
            "--perms",
            "49",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("morans_i,"));
    assert!(table.contains("general_g,"));
    // Crime data must be positively autocorrelated.
    let i: f64 = table
        .lines()
        .find(|l| l.starts_with("morans_i,"))
        .unwrap()
        .split(',')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(i > 0.1, "I = {i}");

    let labels = dir.join("labels.csv");
    let out = lsga()
        .args(["dbscan", "--in", csv.to_str().unwrap(), "--eps", "250"])
        .args(["--min-pts", "10", "--out", labels.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&labels).unwrap();
    assert!(text.starts_with("x,y,label"));
    assert_eq!(text.lines().count(), 4001);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nkdv_subcommand_produces_svg_and_geojson() {
    let dir = temp_dir("nkdv");
    let csv = dir.join("pts.csv");
    lsga()
        .args([
            "generate",
            "--kind",
            "crime",
            "--n",
            "1500",
            "--out",
            csv.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let svg = dir.join("roads.svg");
    let gj = dir.join("lixels.geojson");
    let out = lsga()
        .args(["nkdv", "--in", csv.to_str().unwrap(), "--blocks", "8"])
        .args(["--estimator", "equal-split"])
        .args([
            "--svg",
            svg.to_str().unwrap(),
            "--geojson",
            gj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    let gj_text = std::fs::read_to_string(&gj).unwrap();
    assert!(gj_text.starts_with(r#"{"type":"FeatureCollection""#));
    assert!(gj_text.contains("LineString"));
    let log = String::from_utf8(out.stderr).unwrap();
    assert!(log.contains("hottest segment"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_input_file_reports_cleanly() {
    let out = lsga()
        .args([
            "kdv",
            "--in",
            "/nonexistent/nope.csv",
            "--out",
            "/tmp/x.png",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("nope.csv"), "{err}");
}
