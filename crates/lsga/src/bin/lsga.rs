//! `lsga` — a command-line front end for the analytics suite.
//!
//! The paper's §2.4 lists "future opportunities for software
//! development": packages built on efficient algorithms rather than the
//! naive loops of QGIS/ArcGIS. This binary is that deliverable for the
//! suite — CSV in, heatmaps / plots / statistics out, every subcommand
//! backed by the accelerated implementations.
//!
//! ```text
//! lsga generate --kind crime --n 100000 --out points.csv
//! lsga kdv      --in points.csv --out heat.png --bandwidth auto
//! lsga kfunc    --in points.csv --max-s 500 --steps 10 --svg kplot.svg
//! lsga moran    --in points.csv --cells 20
//! lsga dbscan   --in points.csv --eps 150 --min-pts 10 --out labels.csv
//! ```
//!
//! Run `lsga help` for the full reference.

use lsga::prelude::*;
use lsga::{data, kdv, kfunc, stats, viz};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
lsga — large-scale geospatial analytics

USAGE: lsga <command> [--flag value]...

COMMANDS
  generate   synthesize a dataset
             --kind crime|csr|taxi|waves   (default crime)
             --n <count>                   (default 10000)
             --seed <u64>                  (default 42)
             --out <file.csv>              (required)
  kdv        rasterize a density heatmap
             --in <file.csv>               (required; columns x,y)
             --out <file.png|.ppm>         (required)
             --method slam|grid|sampling|binned|adaptive (default slam)
             --kernel uniform|epanechnikov|quartic|gaussian|triangular|cosine|exponential
                                           (default quartic)
             --bandwidth <b|auto>          (default auto: Silverman)
             --width <pixels>              (default 512)
             --colormap heat|viridis|gray  (default heat)
  kfunc      K-function plot with CSR envelopes
             --in <file.csv>               (required)
             --max-s <s>                   (default: 1/10 of window width)
             --steps <D>                   (default 10)
             --sims <L>                    (default 20)
             --svg <file.svg>              (optional Fig. 2 output)
  moran      global Moran's I + General G over quadrat counts
             --in <file.csv>               (required)
             --cells <k>                   (default 16; k x k lattice)
             --perms <count>               (default 199)
  dbscan     density-based clustering
             --in <file.csv>               (required)
             --eps <radius>                (required)
             --min-pts <count>             (default 5)
             --out <labels.csv>            (optional)
  nkdv       network KDV over a synthetic Manhattan grid
             --in <file.csv>               (required; events snapped)
             --blocks <k>                  (default 12; k x k grid)
             --bandwidth <b>               (default 3 block lengths)
             --estimator simple|equal-split (default simple)
             --svg <file.svg>              (optional road heatmap)
             --geojson <file.geojson>      (optional lixel export)
  help       print this text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "kdv" => cmd_kdv(&flags),
        "kfunc" => cmd_kfunc(&flags),
        "moran" => cmd_moran(&flags),
        "dbscan" => cmd_dbscan(&flags),
        "nkdv" => cmd_nkdv(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; see `lsga help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags.get(name).map(String::as_str)
}

fn require<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    get(flags, name).ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match get(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
    }
}

fn load_points(flags: &Flags) -> Result<Vec<Point>, String> {
    let path = require(flags, "in")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let pts = data::csv::read_points(file).map_err(|e| format!("parse {path}: {e}"))?;
    if pts.is_empty() {
        return Err(format!("{path} contains no points"));
    }
    Ok(pts)
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let out = require(flags, "out")?;
    let n: usize = parse(flags, "n", 10_000)?;
    let seed: u64 = parse(flags, "seed", 42)?;
    let kind = get(flags, "kind").unwrap_or("crime");
    let window = BBox::new(0.0, 0.0, 10_000.0, 8_000.0);
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    match kind {
        "crime" => {
            let hotspots = [
                Hotspot {
                    center: Point::new(2_500.0, 2_000.0),
                    sigma: 300.0,
                    weight: 2.0,
                },
                Hotspot {
                    center: Point::new(7_500.0, 5_500.0),
                    sigma: 500.0,
                    weight: 1.0,
                },
                Hotspot {
                    center: Point::new(5_000.0, 4_000.0),
                    sigma: 2_500.0,
                    weight: 1.0,
                },
            ];
            let pts = data::gaussian_mixture(n, &hotspots, window, seed);
            data::csv::write_points(file, &pts).map_err(|e| e.to_string())?;
        }
        "csr" => {
            let pts = data::uniform_points(n, window, seed);
            data::csv::write_points(file, &pts).map_err(|e| e.to_string())?;
        }
        "taxi" => {
            let pts = data::taxi_like(n, window, 0.7, seed);
            data::csv::write_points(file, &pts).map_err(|e| e.to_string())?;
        }
        "waves" => {
            let waves = [
                Wave {
                    hotspot: Hotspot {
                        center: Point::new(2_500.0, 5_500.0),
                        sigma: 400.0,
                        weight: 1.0,
                    },
                    t_peak: 20.0,
                    t_sigma: 6.0,
                },
                Wave {
                    hotspot: Hotspot {
                        center: Point::new(7_500.0, 2_500.0),
                        sigma: 350.0,
                        weight: 1.4,
                    },
                    t_peak: 75.0,
                    t_sigma: 5.0,
                },
            ];
            let pts = data::epidemic_waves(n, &waves, window, seed);
            data::csv::write_timed_points(file, &pts).map_err(|e| e.to_string())?;
        }
        other => return Err(format!("unknown --kind {other:?}")),
    }
    eprintln!("wrote {n} {kind} points to {out}");
    Ok(())
}

fn cmd_kdv(flags: &Flags) -> Result<(), String> {
    let points = load_points(flags)?;
    let out = require(flags, "out")?;
    let width: usize = parse(flags, "width", 512)?;
    let window = BBox::of_points(&points).inflate(1.0);
    let spec = GridSpec::with_width(window, width);

    let bandwidth = match get(flags, "bandwidth") {
        None | Some("auto") => lsga::core::silverman_bandwidth(&points)
            .ok_or("cannot auto-select a bandwidth for degenerate data")?,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--bandwidth: cannot parse {v:?}"))?,
    };
    let kernel_kind = match get(flags, "kernel").unwrap_or("quartic") {
        "uniform" => KernelKind::Uniform,
        "epanechnikov" => KernelKind::Epanechnikov,
        "quartic" => KernelKind::Quartic,
        "gaussian" => KernelKind::Gaussian,
        "triangular" => KernelKind::Triangular,
        "cosine" => KernelKind::Cosine,
        "exponential" => KernelKind::Exponential,
        other => return Err(format!("unknown --kernel {other:?}")),
    };
    let method = get(flags, "method").unwrap_or("slam");
    let start = std::time::Instant::now();
    let grid = match method {
        "slam" => {
            let poly = PolyKernel::new(kernel_kind, bandwidth).ok_or(
                "--method slam needs a polynomial kernel (uniform/epanechnikov/quartic); \
                 use --method grid for the others",
            )?;
            kdv::slam_kdv(&points, spec, poly)
        }
        "grid" => kdv::grid_pruned_kdv(
            &points,
            spec,
            kernel_kind.with_bandwidth(bandwidth),
            kdv::DEFAULT_TAIL_EPS,
        ),
        "sampling" => kdv::sampling_kdv(
            &points,
            spec,
            kernel_kind.with_bandwidth(bandwidth),
            8192,
            7,
        ),
        "binned" => {
            if kernel_kind != KernelKind::Gaussian {
                return Err("--method binned requires --kernel gaussian".into());
            }
            kdv::binned_gaussian_kdv(&points, spec, Gaussian::new(bandwidth), 8, 1e-9)
        }
        "adaptive" => kdv::adaptive_kdv(&points, spec, kernel_kind, bandwidth, 0.5),
        other => return Err(format!("unknown --method {other:?}")),
    };
    let elapsed = start.elapsed();
    let cmap = match get(flags, "colormap").unwrap_or("heat") {
        "heat" => Colormap::Heat,
        "viridis" => Colormap::Viridis,
        "gray" => Colormap::Gray,
        other => return Err(format!("unknown --colormap {other:?}")),
    };
    if out.ends_with(".ppm") {
        let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        viz::write_heatmap_ppm(file, &grid, cmap).map_err(|e| e.to_string())?;
    } else {
        viz::write_heatmap_png(out, &grid, cmap).map_err(|e| e.to_string())?;
    }
    let hot = grid.hotspot();
    eprintln!(
        "kdv: n={} method={method} kernel={} b={bandwidth:.1} {}x{} px in {elapsed:.1?}; \
         hotspot at ({:.1}, {:.1}); wrote {out}",
        points.len(),
        kernel_kind.name(),
        spec.nx,
        spec.ny,
        hot.x,
        hot.y
    );
    Ok(())
}

fn cmd_kfunc(flags: &Flags) -> Result<(), String> {
    let points = load_points(flags)?;
    let window = BBox::of_points(&points).inflate(1.0);
    let max_s: f64 = parse(flags, "max-s", window.width() / 10.0)?;
    let steps: usize = parse(flags, "steps", 10)?;
    let sims: usize = parse(flags, "sims", 20)?;
    if max_s <= 0.0 || steps == 0 || sims == 0 {
        return Err("--max-s, --steps and --sims must be positive".into());
    }
    let thresholds: Vec<f64> = (1..=steps)
        .map(|i| max_s * i as f64 / steps as f64)
        .collect();
    let plot = kfunc::k_function_plot(
        &points,
        window,
        &thresholds,
        sims,
        7,
        Default::default(),
        std::thread::available_parallelism().map_or(4, |p| p.get()),
    );
    println!("s,observed,envelope_low,envelope_high,l_minus_s,verdict");
    let l = plot.l_curve(points.len(), window.area());
    for (i, s) in plot.thresholds.iter().enumerate() {
        println!(
            "{s},{},{},{},{:.3},{:?}",
            plot.observed[i],
            plot.lower[i],
            plot.upper[i],
            l[i],
            plot.regimes()[i]
        );
    }
    if let Some(svg_path) = get(flags, "svg") {
        std::fs::write(svg_path, viz::k_plot_svg(&plot, 640, 480))
            .map_err(|e| format!("write {svg_path}: {e}"))?;
        eprintln!("wrote {svg_path}");
    }
    Ok(())
}

fn cmd_moran(flags: &Flags) -> Result<(), String> {
    let points = load_points(flags)?;
    let cells: usize = parse(flags, "cells", 16)?;
    let perms: usize = parse(flags, "perms", 199)?;
    if cells < 2 {
        return Err("--cells must be at least 2".into());
    }
    let window = BBox::of_points(&points).inflate(1.0);
    let spec = GridSpec::new(window, cells, cells);
    let counts = stats::areal::quadrat_counts(&points, spec);
    let centers = stats::areal::cell_centers(&spec);
    let radius = 1.5 * spec.dx().max(spec.dy());
    let w = stats::SpatialWeights::distance_band(&centers, radius);
    let moran = stats::morans_i(counts.values(), &w, perms, 1)
        .ok_or("Moran's I undefined (constant counts?)")?;
    println!(
        "morans_i,{:.4}\nexpected,{:.4}\nz_norm,{:.2}\np_norm,{:.4}\np_perm,{:.4}",
        moran.i,
        moran.expected,
        moran.z_norm,
        moran.p_norm,
        moran.p_perm.unwrap_or(f64::NAN)
    );
    if let Some(g) = stats::general_g(counts.values(), &w, perms, 2) {
        println!(
            "general_g,{:.6}\ng_expected,{:.6}\ng_z,{:.2}\ng_p_perm,{:.4}",
            g.g, g.expected, g.z, g.p_perm
        );
    }
    Ok(())
}

fn cmd_nkdv(flags: &Flags) -> Result<(), String> {
    let points = load_points(flags)?;
    let blocks: usize = parse(flags, "blocks", 12)?;
    if blocks < 2 {
        return Err("--blocks must be at least 2".into());
    }
    // Build a Manhattan grid covering the data bounds.
    let window = BBox::of_points(&points).inflate(1.0);
    let spacing = window.width().max(window.height()) / (blocks - 1) as f64;
    let net = {
        // grid_network spans from the origin; shift events instead.
        lsga::network::grid_network(blocks, blocks, spacing)
    };
    let shift = |p: &Point| Point::new(p.x - window.min_x, p.y - window.min_y);
    let idx = lsga::network::SegmentIndex::build(&net, spacing);
    let events: Vec<EdgePosition> = points
        .iter()
        .filter_map(|p| idx.snap(&net, &shift(p)).map(|(pos, _)| pos))
        .collect();
    let bandwidth: f64 = parse(flags, "bandwidth", 3.0 * spacing)?;
    let kernel = Quartic::new(bandwidth);
    let lixels = Lixels::build(&net, spacing / 8.0);
    let start = std::time::Instant::now();
    let estimator = get(flags, "estimator").unwrap_or("simple");
    let density = match estimator {
        "simple" => {
            lsga::kdv::nkdv_forward(&net, &lixels, &events, kernel).map_err(|e| e.to_string())?
        }
        "equal-split" => lsga::kdv::nkdv_equal_split(&net, &lixels, &events, kernel),
        other => return Err(format!("unknown --estimator {other:?}")),
    };
    let hot = lixels.all()[density.argmax()];
    let hot_pt = net.point_on_edge(hot.edge, hot.center_offset());
    eprintln!(
        "nkdv: {} events on a {blocks}x{blocks} grid ({} lixels), {estimator}, b={bandwidth:.0},          {:.1?}; hottest segment at ({:.0}, {:.0})",
        events.len(),
        lixels.len(),
        start.elapsed(),
        hot_pt.x + window.min_x,
        hot_pt.y + window.min_y
    );
    if let Some(svg_path) = get(flags, "svg") {
        let svg = lsga::viz::network_density_svg(&net, &lixels, &density, Colormap::Heat, 900, 900);
        std::fs::write(svg_path, svg).map_err(|e| format!("write {svg_path}: {e}"))?;
        eprintln!("wrote {svg_path}");
    }
    if let Some(gj_path) = get(flags, "geojson") {
        let gj = lsga::viz::lixels_geojson(&net, &lixels, &density);
        std::fs::write(gj_path, gj).map_err(|e| format!("write {gj_path}: {e}"))?;
        eprintln!("wrote {gj_path}");
    }
    Ok(())
}

fn cmd_dbscan(flags: &Flags) -> Result<(), String> {
    let points = load_points(flags)?;
    let eps: f64 = require(flags, "eps")?
        .parse()
        .map_err(|_| "--eps: not a number".to_string())?;
    let min_pts: usize = parse(flags, "min-pts", 5)?;
    if eps <= 0.0 || min_pts == 0 {
        return Err("--eps and --min-pts must be positive".into());
    }
    let start = std::time::Instant::now();
    let result = stats::dbscan(&points, eps, min_pts);
    eprintln!(
        "dbscan: n={} eps={eps} min_pts={min_pts}: {} clusters, {} noise, {:.1?}",
        points.len(),
        result.n_clusters,
        result.labels.iter().filter(|l| **l == stats::NOISE).count(),
        start.elapsed()
    );
    if let Some(out) = get(flags, "out") {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        writeln!(f, "x,y,label").map_err(|e| e.to_string())?;
        for (p, l) in points.iter().zip(&result.labels) {
            writeln!(f, "{},{},{}", p.x, p.y, l).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {out}");
    }
    Ok(())
}
