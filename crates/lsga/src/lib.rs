//! # lsga — Large-Scale Geospatial Analytics
//!
//! A Rust suite implementing the geospatial analytic tools surveyed in
//! Chan, U, Choi, Xu & Cheng, *Large-scale Geospatial Analytics:
//! Problems, Challenges, and Opportunities* (SIGMOD-Companion 2023):
//! kernel density visualization (KDV) with the four acceleration
//! families the paper describes, the K-function with Monte-Carlo
//! envelopes, their network and spatiotemporal variants, IDW, ordinary
//! kriging, Moran's I, the Getis-Ord General G, and spatial clustering —
//! plus the substrates they need (spatial indexes, a road-network
//! engine, synthetic data generators, a simulated distributed cluster,
//! and renderers).
//!
//! This umbrella crate re-exports every sub-crate under one namespace:
//!
//! ```
//! use lsga::prelude::*;
//!
//! // Synthetic crime-like hotspots...
//! let window = BBox::new(0.0, 0.0, 100.0, 100.0);
//! let points = lsga::data::gaussian_mixture(
//!     2_000,
//!     &[Hotspot { center: Point::new(30.0, 40.0), sigma: 5.0, weight: 1.0 }],
//!     window,
//!     42,
//! );
//!
//! // ...rasterized with the SLAM sweep-line (exact, shared evaluation):
//! let spec = GridSpec::new(window, 256, 256);
//! let kernel = PolyKernel::new(KernelKind::Epanechnikov, 8.0).unwrap();
//! let density = lsga::kdv::slam_kdv(&points, spec, kernel);
//! assert!(density.hotspot().dist(&Point::new(30.0, 40.0)) < 5.0);
//!
//! // ...and judged for statistical significance with a K-function plot:
//! let thresholds: Vec<f64> = (1..=10).map(f64::from).collect();
//! let plot = lsga::kfunc::k_function_plot(
//!     &points, window, &thresholds, 20, 7, Default::default(), 4,
//! );
//! assert!(!plot.clustered_thresholds().is_empty());
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the reproduced experiments.

/// Foundation types: geometry, kernels, rasters, bandwidth rules.
pub use lsga_core as core;
/// Synthetic dataset generators and CSV I/O.
pub use lsga_data as data;
/// Simulated distributed cluster.
pub use lsga_dist as dist;
/// HTTP/1.1 tile front-end: bounded queues, admission, wire formats.
pub use lsga_http as http;
/// Spatial indexes: kd-tree, ball tree, bucket grid, range tree.
pub use lsga_index as index;
/// IDW and ordinary kriging.
pub use lsga_interp as interp;
/// KDV and variants (NKDV, STKDV) with all acceleration families.
pub use lsga_kdv as kdv;
/// K-function and variants with Monte-Carlo envelopes.
pub use lsga_kfunc as kfunc;
/// Road networks: graph, Dijkstra, snapping, lixels, generators.
pub use lsga_network as network;
/// Tracing spans and work/anomaly counters (off by default).
pub use lsga_obs as obs;
/// Analytic tile server: pyramid, sharded LRU cache, single-flight.
pub use lsga_serve as serve;
/// Moran's I, Getis-Ord General G, DBSCAN, K-means.
pub use lsga_stats as stats;
/// Heatmap and plot rendering.
pub use lsga_viz as viz;

/// The types most programs need, importable in one line.
pub mod prelude {
    pub use lsga_core::{
        AnyKernel, BBox, DensityGrid, Epanechnikov, Gaussian, GridSpec, Kernel, KernelKind, Point,
        PolyKernel, Quartic, SpaceTimeGrid, TimedPoint, Uniform,
    };
    pub use lsga_data::{Hotspot, Wave};
    pub use lsga_kfunc::{KConfig, KFunctionPlot, Regime};
    pub use lsga_network::{EdgeId, EdgePosition, Lixels, NetworkBuilder, RoadNetwork, VertexId};
    pub use lsga_serve::{TileCoord, TileServer, TileServerConfig};
    pub use lsga_viz::Colormap;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let p = Point::new(1.0, 2.0);
        let b = BBox::of_points(&[p]);
        assert!(b.contains(&p));
        let _ = KConfig::default();
    }
}
