//! Property tests: the PNG encoder must emit spec-conformant files for
//! arbitrary images, and colormaps must stay in range.

use lsga_viz::png::{adler32, write_png, Crc32};
use lsga_viz::Colormap;
use proptest::prelude::*;

/// Validate the chunk structure and CRCs of an encoded PNG; return the
/// inflated raw scanline bytes.
fn validate(bytes: &[u8]) -> (u32, u32, Vec<u8>) {
    assert_eq!(
        &bytes[..8],
        &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]
    );
    let mut pos = 8;
    let mut dims = (0u32, 0u32);
    let mut idat = Vec::new();
    while pos < bytes.len() {
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let tag = &bytes[pos + 4..pos + 8];
        let data = &bytes[pos + 8..pos + 8 + len];
        let crc = u32::from_be_bytes(bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
        let mut check = Crc32::new();
        check.update(tag);
        check.update(data);
        assert_eq!(check.finish(), crc);
        match tag {
            b"IHDR" => {
                dims = (
                    u32::from_be_bytes(data[0..4].try_into().unwrap()),
                    u32::from_be_bytes(data[4..8].try_into().unwrap()),
                );
            }
            b"IDAT" => idat.extend_from_slice(data),
            _ => {}
        }
        pos += 12 + len;
    }
    let mut raw = Vec::new();
    let mut p = 2;
    loop {
        let bfinal = idat[p] & 1;
        let len = u16::from_le_bytes([idat[p + 1], idat[p + 2]]) as usize;
        raw.extend_from_slice(&idat[p + 5..p + 5 + len]);
        p += 5 + len;
        if bfinal == 1 {
            break;
        }
    }
    assert_eq!(
        u32::from_be_bytes(idat[p..p + 4].try_into().unwrap()),
        adler32(&raw)
    );
    (dims.0, dims.1, raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn png_roundtrips_arbitrary_images(
        w in 1u32..40,
        h in 1u32..40,
        seed in any::<u64>(),
    ) {
        let n = (3 * w * h) as usize;
        let rgb: Vec<u8> = (0..n)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64) >> 32) as u8)
            .collect();
        let mut buf = Vec::new();
        write_png(&mut buf, w, h, &rgb).unwrap();
        let (rw, rh, raw) = validate(&buf);
        prop_assert_eq!((rw, rh), (w, h));
        let mut pixels = Vec::new();
        for row in raw.chunks_exact(3 * w as usize + 1) {
            prop_assert_eq!(row[0], 0); // filter byte
            pixels.extend_from_slice(&row[1..]);
        }
        prop_assert_eq!(pixels, rgb);
    }

    #[test]
    fn colormaps_always_defined(t in prop::num::f64::ANY) {
        for cmap in [Colormap::Heat, Colormap::Viridis, Colormap::Gray] {
            let _rgb = cmap.map(t); // must not panic for any input incl. NaN/inf
        }
    }

    #[test]
    fn crc_is_order_sensitive_stream(data in prop::collection::vec(any::<u8>(), 0..200), split in 0usize..200) {
        // Streaming in two parts equals one-shot.
        let split = split.min(data.len());
        let mut a = Crc32::new();
        a.update(&data);
        let mut b = Crc32::new();
        b.update(&data[..split]);
        b.update(&data[split..]);
        prop_assert_eq!(a.finish(), b.finish());
    }
}
