//! GeoJSON export (RFC 7946) — the interop path into the web-GIS
//! systems the paper's §2.4 targets (QGIS Cloud, ArcGIS Online, Leaflet
//! dashboards all ingest GeoJSON directly).
//!
//! Coordinates are emitted as given (the suite works in projected planar
//! coordinates; reproject before uploading if a CRS other than the
//! GeoJSON default is needed). All writers are allocation-light string
//! builders with no external JSON dependency.

use lsga_core::{DensityGrid, Point};
use lsga_kdv::NetworkDensity;
use lsga_network::{Lixels, RoadNetwork};
use std::fmt::Write as _;

/// Points as a `FeatureCollection` of `Point` features. `properties`
/// supplies one optional numeric property per point (e.g. cluster
/// labels, local Gi* z-scores); pass `None` for bare points.
pub fn points_geojson(points: &[Point], properties: Option<(&str, &[f64])>) -> String {
    if let Some((_, vals)) = properties {
        assert_eq!(vals.len(), points.len(), "property length mismatch");
    }
    let mut out = String::from(r#"{"type":"FeatureCollection","features":["#);
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"type":"Feature","geometry":{{"type":"Point","coordinates":[{},{}]}},"properties":{}}}"#,
            fmt_f64(p.x),
            fmt_f64(p.y),
            match properties {
                Some((name, vals)) => format!(r#"{{"{name}":{}}}"#, fmt_f64(vals[i])),
                None => "{}".to_string(),
            }
        );
    }
    out.push_str("]}");
    out
}

/// A density raster as a `FeatureCollection` of cell `Polygon`s with a
/// `density` property. Cells below `min_density` are skipped (web maps
/// choke on hundreds of thousands of zero cells).
pub fn grid_geojson(grid: &DensityGrid, min_density: f64) -> String {
    let spec = *grid.spec();
    let mut out = String::from(r#"{"type":"FeatureCollection","features":["#);
    let mut first = true;
    for iy in 0..spec.ny {
        for ix in 0..spec.nx {
            let v = grid.at(ix, iy);
            if v < min_density {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let x0 = spec.bbox.min_x + ix as f64 * spec.dx();
            let y0 = spec.bbox.min_y + iy as f64 * spec.dy();
            let (x1, y1) = (x0 + spec.dx(), y0 + spec.dy());
            let _ = write!(
                out,
                concat!(
                    r#"{{"type":"Feature","geometry":{{"type":"Polygon","coordinates":"#,
                    r#"[[[{x0},{y0}],[{x1},{y0}],[{x1},{y1}],[{x0},{y1}],[{x0},{y0}]]]}},"#,
                    r#""properties":{{"density":{v}}}}}"#
                ),
                x0 = fmt_f64(x0),
                y0 = fmt_f64(y0),
                x1 = fmt_f64(x1),
                y1 = fmt_f64(y1),
                v = fmt_f64(v),
            );
        }
    }
    out.push_str("]}");
    out
}

/// An NKDV result as a `FeatureCollection` of lixel `LineString`s with a
/// `density` property (the layer spNetwork/PyNKDV users style in QGIS).
pub fn lixels_geojson(net: &RoadNetwork, lixels: &Lixels, density: &NetworkDensity) -> String {
    assert_eq!(lixels.len(), density.values().len(), "length mismatch");
    let mut out = String::from(r#"{"type":"FeatureCollection","features":["#);
    for (i, (lx, v)) in lixels.all().iter().zip(density.values()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let a = net.point_on_edge(lx.edge, lx.start);
        let b = net.point_on_edge(lx.edge, lx.end);
        let _ = write!(
            out,
            concat!(
                r#"{{"type":"Feature","geometry":{{"type":"LineString","coordinates":"#,
                r#"[[{},{}],[{},{}]]}},"properties":{{"density":{}}}}}"#
            ),
            fmt_f64(a.x),
            fmt_f64(a.y),
            fmt_f64(b.x),
            fmt_f64(b.y),
            fmt_f64(*v),
        );
    }
    out.push_str("]}");
    out
}

/// JSON-safe float formatting: finite values print normally; NaN and
/// infinities (not representable in JSON) become `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, GridSpec};
    use lsga_kdv::nkdv_forward;
    use lsga_network::{grid_network, EdgeId, EdgePosition};

    /// Minimal structural JSON check: balanced braces/brackets and no
    /// trailing commas before closers.
    fn assert_wellformed(json: &str) {
        let mut depth: i64 = 0;
        let mut prev = ' ';
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev, ',', "trailing comma before {c}");
                    depth -= 1;
                    assert!(depth >= 0);
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced braces");
    }

    #[test]
    fn points_with_and_without_properties() {
        let pts = [Point::new(1.5, 2.5), Point::new(-3.0, 0.0)];
        let bare = points_geojson(&pts, None);
        assert_wellformed(&bare);
        assert_eq!(bare.matches(r#""type":"Point""#).count(), 2);
        assert!(bare.contains("[1.5,2.5]"));

        let labeled = points_geojson(&pts, Some(("z", &[1.0, -2.5])));
        assert_wellformed(&labeled);
        assert!(labeled.contains(r#"{"z":1}"#));
        assert!(labeled.contains(r#"{"z":-2.5}"#));
    }

    #[test]
    fn grid_skips_cold_cells() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 2.0, 2.0), 2, 2);
        let mut g = lsga_core::DensityGrid::zeros(spec);
        g.set(0, 0, 5.0);
        g.set(1, 1, 0.4);
        let json = grid_geojson(&g, 0.5);
        assert_wellformed(&json);
        assert_eq!(json.matches(r#""type":"Polygon""#).count(), 1);
        assert!(json.contains(r#""density":5"#));
        // Polygon ring is closed (first == last coordinate).
        assert!(json.contains("[[[0,0],[1,0],[1,1],[0,1],[0,0]]]"));
    }

    #[test]
    fn lixels_export_matches_density() {
        let net = grid_network(3, 3, 10.0);
        let lixels = Lixels::build(&net, 5.0);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 5.0,
        }];
        let density = nkdv_forward(&net, &lixels, &events, Epanechnikov::new(8.0)).unwrap();
        let json = lixels_geojson(&net, &lixels, &density);
        assert_wellformed(&json);
        assert_eq!(json.matches(r#""type":"LineString""#).count(), lixels.len());
        assert!(json.contains(r#""density":"#));
    }

    #[test]
    fn non_finite_values_become_null() {
        let pts = [Point::new(0.0, 0.0)];
        let json = points_geojson(&pts, Some(("v", &[f64::NAN])));
        assert_wellformed(&json);
        assert!(json.contains(r#"{"v":null}"#));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn property_length_checked() {
        let _ = points_geojson(&[Point::new(0.0, 0.0)], Some(("v", &[1.0, 2.0])));
    }
}
