//! SVG rendering of network densities (NKDV output): road segments
//! coloured by their lixel density — the network analogue of the Fig. 1
//! heatmap, matching how PyNKDV/spNetwork visualize results.

use crate::colormap::Colormap;
use lsga_kdv::NetworkDensity;
use lsga_network::{Lixels, RoadNetwork};
use std::fmt::Write as _;

/// Render an NKDV result as a standalone SVG: every lixel drawn as a
/// line segment coloured by its normalized density. The viewBox maps
/// the network's bounding box (inflated 5%) to `width × height`.
pub fn network_density_svg(
    net: &RoadNetwork,
    lixels: &Lixels,
    density: &NetworkDensity,
    cmap: Colormap,
    width: u32,
    height: u32,
) -> String {
    assert_eq!(
        lixels.len(),
        density.values().len(),
        "density/lixel length mismatch"
    );
    let bbox = net.bbox();
    let pad = 0.05 * bbox.width().max(bbox.height()).max(1e-9);
    let (x0, y0) = (bbox.min_x - pad, bbox.min_y - pad);
    let (w_world, h_world) = (bbox.width() + 2.0 * pad, bbox.height() + 2.0 * pad);
    let sx = width as f64 / w_world;
    let sy = height as f64 / h_world;
    // Flip y: SVG's y axis points down, maps point north up.
    let tx = |x: f64| (x - x0) * sx;
    let ty = |y: f64| height as f64 - (y - y0) * sy;

    let max = density.max().max(1e-300);
    let mut svg = String::new();
    let _ = write!(
        svg,
        concat!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" "#,
            r#"viewBox="0 0 {w} {h}">"#,
            r#"<rect width="{w}" height="{h}" fill="white"/>"#
        ),
        w = width,
        h = height
    );
    // Faint base network so zero-density roads stay visible.
    for e in net.edges() {
        let a = net.vertex(e.u);
        let b = net.vertex(e.v);
        let _ = write!(
            svg,
            concat!(
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" "#,
                r##"stroke="#dddddd" stroke-width="1"/>"##
            ),
            tx(a.x),
            ty(a.y),
            tx(b.x),
            ty(b.y)
        );
    }
    // Lixels coloured by density (skip zeros: base network shows them).
    for (lx, v) in lixels.all().iter().zip(density.values()) {
        if *v <= 0.0 {
            continue;
        }
        let p0 = net.point_on_edge(lx.edge, lx.start);
        let p1 = net.point_on_edge(lx.edge, lx.end);
        let [r, g, b] = cmap.map(v / max);
        let _ = write!(
            svg,
            concat!(
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" "#,
                r##"stroke="#{:02x}{:02x}{:02x}" stroke-width="3" stroke-linecap="round"/>"##
            ),
            tx(p0.x),
            ty(p0.y),
            tx(p1.x),
            ty(p1.y),
            r,
            g,
            b
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{Epanechnikov, Point};
    use lsga_kdv::nkdv_forward;
    use lsga_network::{grid_network, EdgeId, EdgePosition};

    #[test]
    fn svg_renders_hot_and_base_segments() {
        let net = grid_network(4, 4, 10.0);
        let lixels = Lixels::build(&net, 2.5);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 5.0,
        }];
        let density = nkdv_forward(&net, &lixels, &events, Epanechnikov::new(8.0)).unwrap();
        let svg = network_density_svg(&net, &lixels, &density, Colormap::Heat, 400, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Base network lines plus at least one coloured lixel.
        assert!(svg.matches("#dddddd").count() >= net.edge_count());
        assert!(svg.contains("stroke-linecap"));
        // Hottest colour appears (density normalized to 1 at the peak).
        let hot = Colormap::Heat.map(1.0);
        let hot_hex = format!("#{:02x}{:02x}{:02x}", hot[0], hot[1], hot[2]);
        assert!(svg.contains(&hot_hex), "missing peak colour {hot_hex}");
    }

    #[test]
    fn zero_density_only_renders_base() {
        let net = grid_network(3, 3, 5.0);
        let lixels = Lixels::build(&net, 1.0);
        let density = nkdv_forward(&net, &lixels, &[], Epanechnikov::new(3.0)).unwrap();
        let svg = network_density_svg(&net, &lixels, &density, Colormap::Viridis, 200, 200);
        assert_eq!(svg.matches("stroke-linecap").count(), 0);
    }

    #[test]
    fn coordinates_fit_canvas() {
        let net = grid_network(3, 3, 7.0);
        let lixels = Lixels::build(&net, 2.0);
        let events = [EdgePosition {
            edge: EdgeId(2),
            offset: 1.0,
        }];
        let density = nkdv_forward(&net, &lixels, &events, Epanechnikov::new(10.0)).unwrap();
        let svg = network_density_svg(&net, &lixels, &density, Colormap::Gray, 300, 150);
        for part in svg.split("x1=\"").skip(1) {
            let x: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=300.0).contains(&x));
        }
        for part in svg.split("y1=\"").skip(1) {
            let y: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=150.0).contains(&y));
        }
        let _ = Point::new(0.0, 0.0);
    }
}
