//! Colour ramps for heatmap rendering.

/// A colour ramp mapping normalized density `t ∈ [0, 1]` to RGB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// Black → red → yellow → white: the classic "hotspot" ramp the
    /// paper's Fig. 1 heatmap uses (red = hotspot).
    Heat,
    /// A perceptually-ordered blue→green→yellow ramp (viridis-like
    /// anchor table).
    Viridis,
    /// Linear grayscale.
    Gray,
}

impl Colormap {
    /// Map `t` (clamped to `[0, 1]`; NaN maps to 0) to an RGB triple.
    pub fn map(&self, t: f64) -> [u8; 3] {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        match self {
            Colormap::Gray => {
                let v = (t * 255.0).round() as u8;
                [v, v, v]
            }
            Colormap::Heat => {
                // Three linear segments: black->red->yellow->white.
                if t < 1.0 / 3.0 {
                    let u = t * 3.0;
                    [(u * 255.0) as u8, 0, 0]
                } else if t < 2.0 / 3.0 {
                    let u = (t - 1.0 / 3.0) * 3.0;
                    [255, (u * 255.0) as u8, 0]
                } else {
                    let u = (t - 2.0 / 3.0) * 3.0;
                    [255, 255, (u * 255.0) as u8]
                }
            }
            Colormap::Viridis => interp_table(t, &VIRIDIS_ANCHORS),
        }
    }
}

/// Eight-anchor approximation of matplotlib's viridis.
const VIRIDIS_ANCHORS: [[u8; 3]; 8] = [
    [68, 1, 84],
    [70, 50, 127],
    [54, 92, 141],
    [39, 127, 142],
    [31, 161, 135],
    [74, 194, 109],
    [159, 218, 58],
    [253, 231, 37],
];

fn interp_table(t: f64, table: &[[u8; 3]]) -> [u8; 3] {
    let n = table.len();
    let x = t * (n - 1) as f64;
    let i = (x as usize).min(n - 2);
    let f = x - i as f64;
    let mut out = [0u8; 3];
    for c in 0..3 {
        let a = table[i][c] as f64;
        let b = table[i + 1][c] as f64;
        out[c] = (a + (b - a) * f).round() as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(Colormap::Gray.map(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Gray.map(1.0), [255, 255, 255]);
        assert_eq!(Colormap::Heat.map(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Heat.map(1.0), [255, 255, 255]);
        assert_eq!(Colormap::Viridis.map(0.0), [68, 1, 84]);
        assert_eq!(Colormap::Viridis.map(1.0), [253, 231, 37]);
    }

    #[test]
    fn out_of_range_clamped() {
        assert_eq!(Colormap::Heat.map(-5.0), Colormap::Heat.map(0.0));
        assert_eq!(Colormap::Heat.map(7.0), Colormap::Heat.map(1.0));
        assert_eq!(Colormap::Viridis.map(f64::NAN), Colormap::Viridis.map(0.0));
    }

    #[test]
    fn heat_is_red_hot_in_the_middle() {
        // Mid-range: strong red (the paper's hotspot colour), no blue.
        let [r, _, b] = Colormap::Heat.map(0.45);
        assert!(r >= 250);
        assert_eq!(b, 0);
    }

    #[test]
    fn luminance_monotone_for_gray_and_heat() {
        for cmap in [Colormap::Gray, Colormap::Heat] {
            let mut last = -1.0;
            for i in 0..=100 {
                let [r, g, b] = cmap.map(i as f64 / 100.0);
                let lum = 0.299 * r as f64 + 0.587 * g as f64 + 0.114 * b as f64;
                assert!(lum >= last - 1e-9, "{cmap:?} at {i}");
                last = lum;
            }
        }
    }
}
