//! Heatmap rendering from [`DensityGrid`] rasters.

use crate::colormap::Colormap;
use crate::png::write_png;
use lsga_core::DensityGrid;
use std::io::Write;
use std::path::Path;

/// Convert a density grid to RGB bytes (row-major, **top row first** —
/// i.e. the grid's highest `iy` renders at the top, map convention).
/// Densities are normalized by the grid maximum; an all-zero grid maps
/// everywhere to `cmap.map(0)`.
pub fn render_rgb(grid: &DensityGrid, cmap: Colormap) -> (u32, u32, Vec<u8>) {
    let spec = *grid.spec();
    let max = grid.max().max(0.0);
    let scale = if max > 0.0 { 1.0 / max } else { 0.0 };
    let mut rgb = Vec::with_capacity(3 * spec.len());
    for iy in (0..spec.ny).rev() {
        for ix in 0..spec.nx {
            let t = grid.at(ix, iy) * scale;
            rgb.extend_from_slice(&cmap.map(t));
        }
    }
    (spec.nx as u32, spec.ny as u32, rgb)
}

/// Render a heatmap and write it as PNG to `path`.
pub fn write_heatmap_png(
    path: impl AsRef<Path>,
    grid: &DensityGrid,
    cmap: Colormap,
) -> std::io::Result<()> {
    let (w, h, rgb) = render_rgb(grid, cmap);
    let file = std::fs::File::create(path)?;
    write_png(std::io::BufWriter::new(file), w, h, &rgb)
}

/// Render a heatmap and write it as binary PPM (P6) to `w`.
pub fn write_heatmap_ppm<W: Write>(
    mut w: W,
    grid: &DensityGrid,
    cmap: Colormap,
) -> std::io::Result<()> {
    let (width, height, rgb) = render_rgb(grid, cmap);
    write!(w, "P6\n{width} {height}\n255\n")?;
    w.write_all(&rgb)?;
    Ok(())
}

/// ASCII ramp used by [`ascii_heatmap`], darkest to brightest.
const ASCII_RAMP: &[u8] = b" .:-=+*#%@";

/// Render a coarse ASCII heatmap (one character per pixel, top row
/// first). Useful in terminal demos and for eyeballing grids in tests.
pub fn ascii_heatmap(grid: &DensityGrid) -> String {
    let spec = *grid.spec();
    let max = grid.max().max(0.0);
    let scale = if max > 0.0 { 1.0 / max } else { 0.0 };
    let mut out = String::with_capacity((spec.nx + 1) * spec.ny);
    for iy in (0..spec.ny).rev() {
        for ix in 0..spec.nx {
            let t = (grid.at(ix, iy) * scale).clamp(0.0, 1.0);
            let idx = (t * (ASCII_RAMP.len() - 1) as f64).round() as usize;
            out.push(ASCII_RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, GridSpec};

    fn grid_with_peak() -> DensityGrid {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 8.0, 4.0), 8, 4);
        let mut g = DensityGrid::zeros(spec);
        g.set(2, 3, 10.0); // top row in map orientation
        g.set(5, 0, 5.0);
        g
    }

    #[test]
    fn rgb_dimensions_and_orientation() {
        let g = grid_with_peak();
        let (w, h, rgb) = render_rgb(&g, Colormap::Gray);
        assert_eq!((w, h), (8, 4));
        assert_eq!(rgb.len(), 8 * 4 * 3);
        // Peak at (2, iy=3) must appear in the FIRST rendered row.
        let first_row = &rgb[..8 * 3];
        assert_eq!(first_row[2 * 3], 255);
        // Half-peak at (5, iy=0) in the LAST row, gray 128.
        let last_row = &rgb[3 * 8 * 3..];
        assert_eq!(last_row[5 * 3], 128);
    }

    #[test]
    fn zero_grid_renders_flat() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 2.0, 2.0), 2, 2);
        let g = DensityGrid::zeros(spec);
        let (_, _, rgb) = render_rgb(&g, Colormap::Heat);
        assert!(rgb.iter().all(|b| *b == 0));
    }

    #[test]
    fn ppm_header() {
        let g = grid_with_peak();
        let mut buf = Vec::new();
        write_heatmap_ppm(&mut buf, &g, Colormap::Gray).unwrap();
        assert!(buf.starts_with(b"P6\n8 4\n255\n"));
        assert_eq!(buf.len(), 11 + 8 * 4 * 3);
    }

    #[test]
    fn ascii_shape_and_peak() {
        let g = grid_with_peak();
        let art = ascii_heatmap(&g);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 8));
        // Peak character '@' at column 2 of the first line.
        assert_eq!(lines[0].as_bytes()[2], b'@');
        assert_eq!(lines[0].as_bytes()[0], b' ');
    }

    #[test]
    fn png_file_written() {
        let g = grid_with_peak();
        let dir = std::env::temp_dir().join("lsga_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heatmap.png");
        write_heatmap_png(&path, &g, Colormap::Viridis).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[1..4], b"PNG");
        std::fs::remove_file(&path).ok();
    }
}
