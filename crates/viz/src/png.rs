//! A minimal dependency-free PNG encoder.
//!
//! Emits 8-bit RGB PNGs using zlib **stored** (uncompressed) deflate
//! blocks — larger files than a real compressor, but byte-exact,
//! spec-conformant output from ~150 lines of code with no external
//! crates, which keeps the whole suite hermetic. CRC-32 (ISO-HDLC) and
//! Adler-32 are implemented here.

use std::io::Write;

/// Encode `rgb` (row-major, `3 * width * height` bytes, top row first)
/// as an 8-bit RGB PNG.
pub fn write_png<W: Write>(mut w: W, width: u32, height: u32, rgb: &[u8]) -> std::io::Result<()> {
    assert_eq!(
        rgb.len(),
        (3 * width * height) as usize,
        "pixel buffer size mismatch"
    );
    assert!(width > 0 && height > 0, "image dimensions must be positive");
    // Signature.
    w.write_all(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A])?;
    // IHDR.
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&width.to_be_bytes());
    ihdr.extend_from_slice(&height.to_be_bytes());
    ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // depth 8, RGB, default
    write_chunk(&mut w, b"IHDR", &ihdr)?;
    // Raw scanline data: filter byte 0 before each row.
    let stride = 3 * width as usize;
    let mut raw = Vec::with_capacity((stride + 1) * height as usize);
    for row in rgb.chunks_exact(stride) {
        raw.push(0u8);
        raw.extend_from_slice(row);
    }
    // zlib stream with stored deflate blocks.
    let mut idat = Vec::with_capacity(raw.len() + raw.len() / 65_535 * 5 + 16);
    idat.extend_from_slice(&[0x78, 0x01]); // CMF/FLG (32K window, no dict)
    let mut chunks = raw.chunks(65_535).peekable();
    if raw.is_empty() {
        idat.extend_from_slice(&[0x01, 0, 0, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        idat.push(u8::from(last)); // BFINAL, BTYPE=00 (stored)
        let len = chunk.len() as u16;
        idat.extend_from_slice(&len.to_le_bytes());
        idat.extend_from_slice(&(!len).to_le_bytes());
        idat.extend_from_slice(chunk);
    }
    idat.extend_from_slice(&adler32(&raw).to_be_bytes());
    write_chunk(&mut w, b"IDAT", &idat)?;
    write_chunk(&mut w, b"IEND", &[])?;
    Ok(())
}

fn write_chunk<W: Write>(w: &mut W, tag: &[u8; 4], data: &[u8]) -> std::io::Result<()> {
    w.write_all(&(data.len() as u32).to_be_bytes())?;
    w.write_all(tag)?;
    w.write_all(data)?;
    let mut crc = Crc32::new();
    crc.update(tag);
    crc.update(data);
    w.write_all(&crc.finish().to_be_bytes())?;
    Ok(())
}

/// Adler-32 checksum (RFC 1950).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5_552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Streaming CRC-32 (ISO-HDLC polynomial, as PNG requires).
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = CRC_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC table generated at first use.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        let mut e = Crc32::new();
        e.update(b"");
        assert_eq!(e.finish(), 0);
        // IEND chunk CRC (well-known constant).
        let mut iend = Crc32::new();
        iend.update(b"IEND");
        assert_eq!(iend.finish(), 0xAE42_6082);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    /// A tiny PNG reader sufficient to validate our own output: checks
    /// the signature, walks the chunks verifying every CRC, inflates the
    /// stored blocks, and checks the Adler.
    fn validate_png(bytes: &[u8]) -> (u32, u32, Vec<u8>) {
        assert_eq!(
            &bytes[..8],
            &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]
        );
        let mut pos = 8;
        let mut dims = (0u32, 0u32);
        let mut idat = Vec::new();
        let mut saw_end = false;
        while pos < bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let tag = &bytes[pos + 4..pos + 8];
            let data = &bytes[pos + 8..pos + 8 + len];
            let crc = u32::from_be_bytes(bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let mut check = Crc32::new();
            check.update(tag);
            check.update(data);
            assert_eq!(
                check.finish(),
                crc,
                "chunk {:?} CRC",
                std::str::from_utf8(tag)
            );
            match tag {
                b"IHDR" => {
                    dims = (
                        u32::from_be_bytes(data[0..4].try_into().unwrap()),
                        u32::from_be_bytes(data[4..8].try_into().unwrap()),
                    );
                    assert_eq!(&data[8..13], &[8, 2, 0, 0, 0]);
                }
                b"IDAT" => idat.extend_from_slice(data),
                b"IEND" => saw_end = true,
                _ => {}
            }
            pos += 12 + len;
        }
        assert!(saw_end);
        // Inflate the stored blocks.
        assert_eq!(idat[0], 0x78);
        let mut raw = Vec::new();
        let mut p = 2;
        loop {
            let bfinal = idat[p] & 1;
            assert_eq!(idat[p] >> 1, 0, "only stored blocks expected");
            let len = u16::from_le_bytes([idat[p + 1], idat[p + 2]]) as usize;
            let nlen = u16::from_le_bytes([idat[p + 3], idat[p + 4]]);
            assert_eq!(!(len as u16), nlen);
            raw.extend_from_slice(&idat[p + 5..p + 5 + len]);
            p += 5 + len;
            if bfinal == 1 {
                break;
            }
        }
        let adler = u32::from_be_bytes(idat[p..p + 4].try_into().unwrap());
        assert_eq!(adler, adler32(&raw));
        (dims.0, dims.1, raw)
    }

    #[test]
    fn roundtrip_small_image() {
        let (w, h) = (3u32, 2u32);
        let rgb: Vec<u8> = (0..(3 * w * h) as usize).map(|i| (i * 7) as u8).collect();
        let mut buf = Vec::new();
        write_png(&mut buf, w, h, &rgb).unwrap();
        let (rw, rh, raw) = validate_png(&buf);
        assert_eq!((rw, rh), (w, h));
        // Strip filter bytes and compare.
        let mut pixels = Vec::new();
        for row in raw.chunks_exact(3 * w as usize + 1) {
            assert_eq!(row[0], 0);
            pixels.extend_from_slice(&row[1..]);
        }
        assert_eq!(pixels, rgb);
    }

    #[test]
    fn large_image_multiple_deflate_blocks() {
        // > 65535 raw bytes forces several stored blocks.
        let (w, h) = (200u32, 120u32);
        let rgb: Vec<u8> = (0..(3 * w * h) as usize).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_png(&mut buf, w, h, &rgb).unwrap();
        let (rw, rh, raw) = validate_png(&buf);
        assert_eq!((rw, rh), (w, h));
        assert_eq!(raw.len(), (3 * w as usize + 1) * h as usize);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let mut buf = Vec::new();
        let _ = write_png(&mut buf, 4, 4, &[0u8; 3]);
    }
}
