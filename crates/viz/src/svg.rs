//! SVG rendering of K-function plots (the paper's Fig. 2).

use lsga_kfunc::KFunctionPlot;
use std::fmt::Write as _;

/// Render a K-function plot as a standalone SVG document: observed curve
/// in black, envelope bounds as red (lower) and blue (upper) dashed
/// curves — the paper's Fig. 2 styling.
pub fn k_plot_svg(plot: &KFunctionPlot, width: u32, height: u32) -> String {
    assert!(
        !plot.thresholds.is_empty(),
        "cannot render an empty K-function plot"
    );
    let margin = 40.0;
    let w = width as f64;
    let h = height as f64;
    let x_max = plot
        .thresholds
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let y_max = plot
        .observed
        .iter()
        .chain(&plot.upper)
        .copied()
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let x_of = |s: f64| margin + (s / x_max) * (w - 2.0 * margin);
    let y_of = |k: f64| h - margin - (k / y_max) * (h - 2.0 * margin);

    let polyline = |vals: &[u64]| -> String {
        plot.thresholds
            .iter()
            .zip(vals)
            .map(|(s, k)| format!("{:.2},{:.2}", x_of(*s), y_of(*k as f64)))
            .collect::<Vec<_>>()
            .join(" ")
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        concat!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" "#,
            r#"viewBox="0 0 {w} {h}">"#
        ),
        w = width,
        h = height
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{m}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>"#,
        m = margin,
        y0 = h - margin,
        x1 = w - margin
    );
    let _ = write!(
        svg,
        r#"<line x1="{m}" y1="{m}" x2="{m}" y2="{y0}" stroke="black"/>"#,
        m = margin,
        y0 = h - margin
    );
    // Envelope curves (Fig. 2: red dotted lower, blue dotted upper).
    let _ = write!(
        svg,
        r#"<polyline points="{}" fill="none" stroke="red" stroke-dasharray="4 3"/>"#,
        polyline(&plot.lower)
    );
    let _ = write!(
        svg,
        r#"<polyline points="{}" fill="none" stroke="blue" stroke-dasharray="4 3"/>"#,
        polyline(&plot.upper)
    );
    // Observed curve.
    let _ = write!(
        svg,
        r#"<polyline points="{}" fill="none" stroke="black" stroke-width="1.5"/>"#,
        polyline(&plot.observed)
    );
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{x}" y="{y}" font-size="12" text-anchor="middle">s</text>"#,
        x = w / 2.0,
        y = h - 8.0
    );
    let _ = write!(
        svg,
        concat!(
            r#"<text x="12" y="{y}" font-size="12" text-anchor="middle" "#,
            r#"transform="rotate(-90 12 {y})">K-function</text>"#
        ),
        y = h / 2.0
    );
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot() -> KFunctionPlot {
        KFunctionPlot {
            thresholds: vec![1.0, 2.0, 3.0],
            observed: vec![10, 40, 90],
            lower: vec![5, 20, 45],
            upper: vec![15, 30, 60],
        }
    }

    #[test]
    fn svg_structure() {
        let svg = k_plot_svg(&plot(), 400, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains(r#"stroke="red""#));
        assert!(svg.contains(r#"stroke="blue""#));
        assert!(svg.contains(r#"stroke="black""#));
        assert!(svg.contains("K-function"));
    }

    #[test]
    fn coordinates_inside_viewbox() {
        let svg = k_plot_svg(&plot(), 400, 300);
        // All polyline coordinates must be finite and inside the canvas.
        for seg in svg.split("points=\"").skip(1) {
            let pts = seg.split('"').next().unwrap();
            for pair in pts.split(' ') {
                let (x, y) = pair.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!((0.0..=400.0).contains(&x), "{x}");
                assert!((0.0..=300.0).contains(&y), "{y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_plot_panics() {
        let empty = KFunctionPlot {
            thresholds: vec![],
            observed: vec![],
            lower: vec![],
            upper: vec![],
        };
        let _ = k_plot_svg(&empty, 100, 100);
    }
}
