//! # lsga-viz
//!
//! Rendering for the suite's outputs — the "V" in KDV. The paper's
//! deployments render heatmaps through QGIS/ArcGIS (Fig. 1, 4, 5); this
//! crate regenerates equivalent images without external dependencies:
//!
//! * [`colormap`] — heat / viridis-like / grayscale colour ramps;
//! * [`png`] — a minimal self-contained PNG encoder (stored-block
//!   zlib, CRC32/Adler32 implemented in-repo);
//! * [`render`] — density-grid → RGB/PPM/PNG/ASCII heatmaps;
//! * [`svg`] — K-function plots (Fig. 2) as standalone SVG;
//! * [`network_svg`] — NKDV results as road maps coloured by density;
//! * [`geojson`] — RFC 7946 export of points / rasters / lixels into the
//!   web-GIS systems the paper's §2.4 targets.

pub mod colormap;
pub mod geojson;
pub mod network_svg;
pub mod png;
pub mod render;
pub mod svg;

pub use colormap::Colormap;
pub use geojson::{grid_geojson, lixels_geojson, points_geojson};
pub use network_svg::network_density_svg;
pub use render::{ascii_heatmap, render_rgb, write_heatmap_png, write_heatmap_ppm};
pub use svg::k_plot_svg;
