//! # lsga-serve — in-memory analytic tile serving
//!
//! The paper's motivating deployments are interactive: KDV heatmaps and
//! K-function dashboards that "serve heavy traffic from millions of
//! users". Raw kernel throughput (lsga-kdv, lsga-core::par) is not a
//! serving story on its own — every pan/zoom would recompute full
//! rasters. This crate adds the missing layer on top of the existing
//! exact analytics:
//!
//! - a **multi-resolution tile pyramid** ([`tile`]): at zoom `z` the
//!   layer window splits into `2^z × 2^z` tiles, each a fixed-size
//!   raster evaluated by the grid-pruned exact KDV path;
//! - a **sharded, byte-budgeted LRU cache** ([`cache`]): per-shard
//!   mutexes keep unrelated requests from contending, and eviction is
//!   charged in bytes so memory is bounded regardless of tile size;
//! - **single-flight coalescing** ([`flight`]): N concurrent misses on
//!   one tile trigger exactly one computation, the rest wait;
//! - **append-driven invalidation** ([`server`]): inserting points
//!   dirties exactly the cached tiles whose kernel-support-inflated
//!   bounding boxes the new data intersects — every other tile is
//!   provably still bit-exact (see the proof sketch in [`server`]);
//! - **deadline-aware quality tiers** ([`policy`]): a request carrying
//!   a [`QualityPolicy`] degrades to a guaranteed-ε approximate tile
//!   (the paper's Eq. 6 bound-refinement or Eq. 7 sampling) when the
//!   admission controller judges the exact queue too deep for the
//!   deadline, every tile is stamped with its [`TileTier`], and a
//!   background refinement queue upgrades degraded cache
//!   entries to the exact, bit-identical tile off the request path.
//!
//! The crate inherits the repo's determinism discipline: a served
//! exact-tier tile is **bit-identical** to [`compute_tile_direct`] on
//! the layer's current point sequence, under any cache state, eviction
//! pressure, thread count, and request interleaving — and a degraded
//! tile is a deterministic, seeded function of the same sequence with
//! a machine-checkable error bound. `tests/serve_coherence.rs` drives
//! randomized interleavings against that oracle,
//! `tests/serve_singleflight.rs` pins the coalescing accounting via
//! the `lsga-obs` counter table (`serve.*`), and
//! `tests/serve_tiers.rs` proves the tier state machine: exact and
//! post-refinement bits identical to the oracle, degraded bits within
//! their stamped ε.

pub mod cache;
pub mod cluster;
pub mod compute;
pub mod flight;
pub mod policy;
pub(crate) mod refine;
pub(crate) mod segment;
pub mod server;
pub mod tile;

pub use cache::ShardedTileCache;
pub use cluster::{home_node, z_order_key, ClusterConfig, ClusterServer, SupervisedTiles};
pub use compute::{
    hotspot_overlay, nkdv_snap_index, rasterize_lixel_values, resample_overlay, snap_batch,
    AppendBatch, DirtyRegion, HotspotCompute, HotspotStat, KdvCompute, LayerKind, NkdvCompute,
    StkdvCompute, TileCompute,
};
pub use policy::{ApproxMode, QualityPolicy, TileTier};
pub use server::{compute_tile_direct, tile_grid_spec, TileServer, TileServerConfig};
pub use tile::{tile_bbox, tile_spec, LayerId, Tile, TileCoord, TileKey};
