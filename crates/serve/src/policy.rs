//! Quality tiers: deadlines, approximation modes, and tier metadata.
//!
//! A [`QualityPolicy`] rides on a request and tells the server two
//! things: how long the caller is willing to wait (`deadline`), and
//! which §2.2 approximation family to fall back on when the exact
//! queue is judged too deep ([`ApproxMode`]). The server stamps every
//! tile it returns with a [`TileTier`], so a caller (or a test oracle)
//! can always tell exact bits from guaranteed-ε bits and can recompute
//! the guarantee from the metadata alone.
//!
//! Validation lives in the constructor: a policy that exists is a
//! policy whose ε/δ are sane, so the hot request path never re-checks
//! them. The ε/δ rules are the same ones
//! [`lsga_kdv::sample_size_for_guarantee`] enforces — constructing a
//! sampling policy *is* evaluating Eq. 7.

use lsga_core::{LsgaError, Result};
use std::time::Duration;

/// Which approximation family serves the degraded tier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ApproxMode {
    /// Data sampling with the Eq. 7 Hoeffding guarantee: additive
    /// per-pixel error ≤ `eps · n · K(0)` with probability `1 − delta`,
    /// from a seeded subset whose size is fixed at policy construction.
    Sampling { eps: f64, delta: f64, seed: u64 },
    /// Bound-refinement (Eq. 6) over the layer's points: deterministic
    /// relative guarantee `(1 − eps)·F ≤ result ≤ (1 + eps)·F` per
    /// pixel.
    Bounds { eps: f64 },
}

/// Tier metadata stamped on every served tile. `Exact` tiles are
/// bit-identical to `compute_tile_direct`; degraded tiers carry enough
/// metadata to recompute their ε guarantee against an exact oracle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TileTier {
    /// The exact grid-pruned evaluation — the only tier the plain
    /// `get_tile` path ever serves.
    Exact,
    /// Eq. 7 sampling: L∞ vs exact ≤ `eps · n · K(0)` w.p. `1 − delta`,
    /// where `n` is the layer's point count at compute time.
    Sampled {
        eps: f64,
        delta: f64,
        seed: u64,
        /// Points actually drawn (the Eq. 7 size clamped to `n`).
        sample_size: usize,
        /// Layer point count the guarantee is scaled by.
        n: usize,
    },
    /// Eq. 6 bound-refinement: relative error ≤ `eps` per pixel,
    /// deterministically.
    Bounds { eps: f64 },
}

impl TileTier {
    /// True for the exact tier.
    #[inline]
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self, TileTier::Exact)
    }
}

/// A request-scoped deadline plus the degraded-tier fallback. Validated
/// at construction; immutable afterwards.
#[derive(Clone, Copy, Debug)]
pub struct QualityPolicy {
    deadline: Duration,
    mode: ApproxMode,
    /// Eq. 7 sample size for `Sampling` mode (0 for `Bounds`),
    /// precomputed so admission never pays the `ln`.
    sample_size: usize,
}

impl QualityPolicy {
    /// Build a policy, rejecting nonsensical guarantee parameters with
    /// [`LsgaError::InvalidParameter`] — the same rules as
    /// [`lsga_kdv::sample_size_for_guarantee`] (finite `eps > 0`,
    /// `0 < delta < 1`).
    pub fn new(deadline: Duration, mode: ApproxMode) -> Result<Self> {
        let sample_size = match mode {
            ApproxMode::Sampling { eps, delta, .. } => {
                lsga_kdv::sample_size_for_guarantee(eps, delta)?
            }
            ApproxMode::Bounds { eps } => {
                if !eps.is_finite() || eps <= 0.0 {
                    return Err(LsgaError::InvalidParameter {
                        name: "eps",
                        message: format!("must be a finite positive number, got {eps}"),
                    });
                }
                0
            }
        };
        Ok(QualityPolicy {
            deadline,
            mode,
            sample_size,
        })
    }

    /// The latency budget admission control compares its queue-wait
    /// estimate against.
    #[inline]
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The degraded-tier approximation family.
    #[inline]
    #[must_use]
    pub fn mode(&self) -> ApproxMode {
        self.mode
    }

    /// The precomputed Eq. 7 sample size (0 in `Bounds` mode).
    #[inline]
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_policy_precomputes_eq7_size() {
        let p = QualityPolicy::new(
            Duration::from_millis(5),
            ApproxMode::Sampling {
                eps: 0.05,
                delta: 0.01,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(
            p.sample_size(),
            lsga_kdv::sample_size_for_guarantee(0.05, 0.01).unwrap()
        );
        assert_eq!(p.deadline(), Duration::from_millis(5));
    }

    #[test]
    fn nonsensical_policies_rejected() {
        for (eps, delta) in [
            (0.0, 0.1),
            (-1.0, 0.1),
            (f64::NAN, 0.1),
            (0.05, 0.0),
            (0.05, 1.0),
            (0.05, f64::INFINITY),
        ] {
            let err = QualityPolicy::new(
                Duration::ZERO,
                ApproxMode::Sampling {
                    eps,
                    delta,
                    seed: 0,
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, LsgaError::InvalidParameter { .. }),
                "eps {eps} delta {delta} -> {err:?}"
            );
        }
        for eps in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(QualityPolicy::new(Duration::ZERO, ApproxMode::Bounds { eps }).is_err());
        }
        assert!(QualityPolicy::new(Duration::ZERO, ApproxMode::Bounds { eps: 0.25 }).is_ok());
    }

    #[test]
    fn tier_exactness_predicate() {
        assert!(TileTier::Exact.is_exact());
        assert!(!TileTier::Bounds { eps: 0.1 }.is_exact());
        assert!(!TileTier::Sampled {
            eps: 0.1,
            delta: 0.1,
            seed: 0,
            sample_size: 10,
            n: 100
        }
        .is_exact());
    }
}
