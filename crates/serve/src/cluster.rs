//! Multi-node tile serving: shard ownership, invalidation broadcast,
//! and fault re-homing over the `lsga-dist` failure machinery.
//!
//! A [`ClusterServer`] simulates an N-node serving tier in-process.
//! Each node runs its own full [`TileServer`] — its own cache shards,
//! flight tables, and admission controller — over a **replicated
//! store**: `add_layer` and `insert_points` apply the same batch
//! sequence to every live node, so every live replica holds identical
//! layer state at the same generation. What the cluster *shards* is
//! the serving work: caches, single-flight coalescing, and tile
//! compute are partitioned by an ownership map so that each tile's
//! working set lives on exactly one node.
//!
//! # Ownership map
//!
//! Tiles are laid on the linearized-quadtree Z-order curve:
//! [`z_order_key`] is the level offset `(4^z − 1)/3` plus the Morton
//! interleave of `(x, y)`. The home node of a tile is that key modulo
//! the node count ([`home_node`]) — contiguous Z-order runs stripe
//! round-robin across nodes, which balances any spatially-coherent
//! request storm without coordination. Routing ([`ClusterServer::route`])
//! sends a tile to the first *live* node in the rotation
//! `(home, home+1, …) mod n`, so a dead node's entire tile range
//! re-homes to the survivors deterministically, with no routing table
//! to rebuild.
//!
//! # Invalidation broadcast
//!
//! An append ([`ClusterServer::insert_points`]) is delivered to every
//! live node in node order. Each delivery runs that node's own
//! append path — segment build, generation bump, dirty-region cache
//! sweep — so cross-node cache coherence falls out of the per-node
//! invariant rather than a separate protocol. The cluster stamps each
//! committed broadcast with a monotone generation
//! ([`ClusterServer::generation`]); because every live node sees the
//! same batch sequence, per-node snapshot generations advance in
//! lockstep and a router never needs to compare them. A dead node
//! misses broadcasts and its replica goes stale — which is safe,
//! because routing never selects a dead node and there is no rejoin.
//!
//! # Fault re-homing
//!
//! [`ClusterServer::get_tiles_supervised`] serves a batch under a
//! seeded [`FaultPlan`], reusing the two-phase determinism argument of
//! `lsga_dist::supervisor` (DESIGN.md §3.13):
//!
//! 1. **Planning** is a sequential simulation over tiles in index
//!    order — a pure function of `(plan, policy, ownership, alive
//!    set)`. It charges halo re-shipments (the points within the
//!    tile's kernel-inflated bbox, at `BYTES_PER_POINT` each) whenever
//!    a tile is adopted by a node that does not hold its serving
//!    state, kills nodes on crash faults, and abandons tiles whose
//!    retry budget is exhausted.
//! 2. **Execution** serves each scheduled-successful tile from its
//!    final node's exact path. A tile is a pure function of the layer
//!    replica, every live replica is identical, and the per-node exact
//!    tier is bit-stable — so any recoverable schedule yields tiles
//!    bit-identical to [`crate::server::compute_tile_direct`], for
//!    every thread count. Doomed plans degrade to a partial result
//!    with an exact [`CoverageReport`] instead of an error.
//!
//! All `cluster.*` counters are published from the sequential planning
//! loop (or from sequential routing), so observability is invariant
//! under `LSGA_THREADS` — the property `tests/obs_invariance.rs`
//! checks for the rest of the registry and
//! `tests/cluster_coherence.rs` checks here.

use crate::compute::{KdvCompute, TileCompute};
use crate::policy::QualityPolicy;
use crate::server::{TileServer, TileServerConfig};
use crate::tile::{tile_bbox, LayerId, Tile, TileCoord};
use lsga_core::error::{LsgaError, Result};
use lsga_core::{AnyKernel, BBox, Kernel, Point, TimedPoint};
use lsga_dist::metrics::BYTES_PER_POINT;
use lsga_dist::supervisor::{CoverageReport, Schedule, TileOutcome};
use lsga_dist::{FaultKind, FaultPlan, RetryPolicy, SimClock};
use lsga_obs::{self as obs, Counter, Hist};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spread the low 32 bits of `v` so they occupy the even bit
/// positions of the result (Morton/Z-order bit interleave half).
fn spread_bits(v: u32) -> u64 {
    let mut x = u64::from(v);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Linearized-quadtree Z-order key of a tile: the level offset
/// `(4^z − 1)/3` (total tiles above level `z`) plus the Morton
/// interleave of `(x, y)` within the level. Distinct tiles of the
/// pyramid get distinct keys, and keys within one zoom level follow
/// the Z-order space-filling curve.
#[must_use]
pub fn z_order_key(coord: TileCoord) -> u64 {
    // Zoom is clamped to 31 only to keep the shift defined; real
    // pyramids are bounded far below by `TileServerConfig::max_zoom`.
    let z = u32::from(coord.z).min(31);
    let offset = ((1u64 << (2 * z)) - 1) / 3;
    offset + (spread_bits(coord.x) | (spread_bits(coord.y) << 1))
}

/// The home (owning) node of a tile in an `nodes`-node cluster:
/// [`z_order_key`] modulo the node count.
#[must_use]
pub fn home_node(coord: TileCoord, nodes: usize) -> usize {
    debug_assert!(nodes > 0);
    (z_order_key(coord) % nodes as u64) as usize
}

/// Routing key of a `(coordinate, time-bin)` pair: the spatial Z-order
/// key mixed with a golden-ratio multiple of the bin, so an STKDV
/// layer's bins of one tile stripe across nodes instead of piling onto
/// the spatial home. `bin == 0` reproduces [`z_order_key`] exactly —
/// spatial-only layers route as they always did.
#[must_use]
pub fn route_key(coord: TileCoord, bin: u32) -> u64 {
    z_order_key(coord) ^ u64::from(bin).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Configuration of a simulated serving cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of simulated nodes (>= 1).
    pub nodes: usize,
    /// Per-node tile-server configuration; every node gets its own
    /// independent instance (cache budget is *per node*).
    pub node: TileServerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            node: TileServerConfig::default(),
        }
    }
}

/// Per-layer ledger the cluster keeps beside the per-node replicas:
/// the window/radius that define tile halos plus the full point set,
/// used to account halo re-shipment bytes exactly.
struct LayerLedger {
    window: BBox,
    /// Kernel effective radius at the layer's `tail_eps` — the halo
    /// margin around a tile's bbox (same inflation the per-node
    /// invalidation sweep uses).
    radius: f64,
    points: Vec<Point>,
}

/// A batch served under a fault plan: per-tile results (abandoned
/// tiles are `None`), the exact coverage report, and the full
/// simulated schedule for auditing.
pub struct SupervisedTiles {
    /// One entry per requested coordinate, in request order.
    pub tiles: Vec<Option<Arc<Tile>>>,
    /// Exact account of what the partial result covers; complete iff
    /// every tile executed.
    pub report: CoverageReport,
    /// The simulated failure/recovery schedule (attempts, re-homings,
    /// re-shipped bytes, node deaths).
    pub schedule: Schedule,
}

/// An N-node simulated tile-serving cluster. See the module docs for
/// the ownership, broadcast, and re-homing model.
pub struct ClusterServer {
    nodes: Vec<TileServer>,
    /// Liveness mask; `false` nodes are never routed to and miss
    /// broadcasts. Guarded by a mutex so routing, broadcast, and
    /// planning observe a consistent membership.
    alive: Mutex<Vec<bool>>,
    ledgers: Mutex<Vec<LayerLedger>>,
    /// Monotone broadcast generation, bumped once per committed
    /// append.
    generation: AtomicU64,
}

impl ClusterServer {
    /// Build a cluster of `cfg.nodes` independent tile servers.
    pub fn new(cfg: ClusterConfig) -> Result<Self> {
        if cfg.nodes == 0 {
            return Err(LsgaError::InvalidParameter {
                name: "nodes",
                message: "a cluster needs at least one node".into(),
            });
        }
        let nodes = (0..cfg.nodes).map(|_| TileServer::new(cfg.node)).collect();
        Ok(ClusterServer {
            nodes,
            alive: Mutex::new(vec![true; cfg.nodes]),
            ledgers: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
        })
    }

    /// Number of nodes (live and dead).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to one node's server — tests use this to inspect
    /// per-node caches and to compare against single-node behaviour.
    #[must_use]
    pub fn node(&self, i: usize) -> &TileServer {
        &self.nodes[i]
    }

    /// Indices of the currently live nodes, ascending.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<usize> {
        let alive = self.alive.lock().unwrap();
        (0..alive.len()).filter(|&i| alive[i]).collect()
    }

    /// Whether node `i` is live.
    #[must_use]
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.lock().unwrap()[i]
    }

    /// The cluster broadcast generation: number of committed appends.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Register a layer on **every** node (dead nodes included, so
    /// layer ids stay aligned across the cluster) and open its ledger.
    pub fn add_layer(
        &self,
        points: Vec<Point>,
        window: BBox,
        kernel: AnyKernel,
        tail_eps: f64,
    ) -> Result<LayerId> {
        let radius = kernel.effective_radius(tail_eps);
        let compute: Arc<dyn TileCompute> =
            Arc::new(KdvCompute::new(&points, window, kernel, tail_eps)?);
        self.add_compute_layer(compute, radius, points)
    }

    /// Register any [`TileCompute`] on every node. All replicas share
    /// the generation-zero state `Arc` (it is immutable); appends then
    /// evolve each node's snapshot independently but identically.
    /// `halo_radius` is the tile-halo inflation margin and `points`
    /// the planar (proxy) coordinates the re-homing accountant weighs
    /// shipments by — for KDV these are the layer's actual points.
    pub fn add_compute_layer(
        &self,
        compute: Arc<dyn TileCompute>,
        halo_radius: f64,
        points: Vec<Point>,
    ) -> Result<LayerId> {
        let window = compute.window();
        // Hold the ledger lock for the whole registration so two
        // concurrent `add_layer` calls cannot interleave per-node
        // registrations and hand out diverged ids.
        let mut ledgers = self.ledgers.lock().unwrap();
        let mut id: Option<LayerId> = None;
        for node in &self.nodes {
            let lid = node.add_compute_layer(Arc::clone(&compute))?;
            match id {
                None => id = Some(lid),
                Some(prev) => assert_eq!(prev, lid, "layer ids diverged across nodes"),
            }
        }
        let id = id.expect("cluster has at least one node");
        assert_eq!(id, ledgers.len(), "ledger out of step with layer ids");
        ledgers.push(LayerLedger {
            window,
            radius: halo_radius,
            points,
        });
        Ok(id)
    }

    /// The node a tile is routed to right now: the first live node in
    /// the rotation starting at its home. Errs only when every node is
    /// dead.
    pub fn route(&self, coord: TileCoord) -> Result<usize> {
        let alive = self.alive.lock().unwrap();
        Self::route_in(&alive, coord, self.nodes.len())
    }

    fn route_in(alive: &[bool], coord: TileCoord, n: usize) -> Result<usize> {
        Self::route_from(alive, z_order_key(coord), n)
    }

    fn route_from(alive: &[bool], key: u64, n: usize) -> Result<usize> {
        let home = (key % n as u64) as usize;
        (0..n)
            .map(|k| (home + k) % n)
            .find(|&w| alive[w])
            .ok_or_else(|| LsgaError::TaskFailed {
                tile: (key % usize::MAX as u64) as usize,
                attempts: 0,
                message: "no live cluster nodes to route to".into(),
            })
    }

    /// Serve one tile at the exact tier from its owning node.
    pub fn get_tile(&self, layer: LayerId, z: u8, x: u32, y: u32) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        let w = self.route(coord)?;
        obs::incr(Counter::ClusterRoutedRequests);
        self.nodes[w].get_tile(layer, z, x, y)
    }

    /// Serve one time-binned tile from its owning node — ownership is
    /// [`route_key`], so each bin of a tile may live on a different
    /// node (`bin == 0` routes exactly like [`get_tile`](Self::get_tile)).
    pub fn get_tile_binned(
        &self,
        layer: LayerId,
        z: u8,
        x: u32,
        y: u32,
        bin: u32,
    ) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        let w = {
            let alive = self.alive.lock().unwrap();
            Self::route_from(&alive, route_key(coord, bin), self.nodes.len())?
        };
        obs::incr(Counter::ClusterRoutedRequests);
        self.nodes[w].get_tile_binned(layer, z, x, y, bin)
    }

    /// Serve one tile under a quality policy from its owning node.
    pub fn get_tile_with_policy(
        &self,
        layer: LayerId,
        z: u8,
        x: u32,
        y: u32,
        policy: &QualityPolicy,
    ) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        let w = self.route(coord)?;
        obs::incr(Counter::ClusterRoutedRequests);
        self.nodes[w].get_tile_with_policy(layer, z, x, y, policy)
    }

    /// Serve a batch, each tile from its owning node, in request
    /// order.
    pub fn get_tiles(&self, layer: LayerId, coords: &[TileCoord]) -> Result<Vec<Arc<Tile>>> {
        coords
            .iter()
            .map(|&c| self.get_tile(layer, c.z, c.x, c.y))
            .collect()
    }

    /// Append points to a layer and broadcast the invalidation to
    /// every live node in node order. Each delivery runs the node's
    /// own append path (segment build, generation bump, dirty-region
    /// cache sweep), so all live replicas stay bit-identical. Dead
    /// nodes miss the broadcast and go stale — safe, because routing
    /// never selects them and there is no rejoin.
    pub fn insert_points(&self, layer: LayerId, points: &[Point]) -> Result<()> {
        {
            let ledgers = self.ledgers.lock().unwrap();
            if layer >= ledgers.len() {
                return Err(LsgaError::InvalidParameter {
                    name: "layer",
                    message: format!("unknown layer {layer:?}"),
                });
            }
        }
        // Hold the membership lock across the whole broadcast so a
        // concurrent kill cannot split one append between replicas.
        let alive = self.alive.lock().unwrap();
        for (w, node) in self.nodes.iter().enumerate() {
            if !alive[w] {
                continue;
            }
            node.insert_points(layer, points)?;
            obs::incr(Counter::ClusterInvalidationsBroadcast);
        }
        self.ledgers.lock().unwrap()[layer]
            .points
            .extend_from_slice(points);
        self.generation.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Append timed points to an STKDV layer on every live node, with
    /// the same broadcast/ledger protocol as
    /// [`insert_points`](Self::insert_points); the ledger records the
    /// batch's planar coordinates for halo accounting.
    pub fn insert_timed_points(&self, layer: LayerId, points: &[TimedPoint]) -> Result<()> {
        {
            let ledgers = self.ledgers.lock().unwrap();
            if layer >= ledgers.len() {
                return Err(LsgaError::InvalidParameter {
                    name: "layer",
                    message: format!("unknown layer {layer:?}"),
                });
            }
        }
        let alive = self.alive.lock().unwrap();
        for (w, node) in self.nodes.iter().enumerate() {
            if !alive[w] {
                continue;
            }
            node.insert_timed_points(layer, points)?;
            obs::incr(Counter::ClusterInvalidationsBroadcast);
        }
        self.ledgers.lock().unwrap()[layer]
            .points
            .extend(points.iter().map(|tp| tp.point));
        self.generation.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Kill node `w`: it drops its serving state, is removed from
    /// routing, and misses all future broadcasts. Idempotent; returns
    /// whether the node was live.
    pub fn kill_node(&self, w: usize) -> bool {
        let mut alive = self.alive.lock().unwrap();
        if !alive[w] {
            return false;
        }
        alive[w] = false;
        // A crash loses the node's in-memory serving state.
        self.nodes[w].clear_cache();
        obs::incr(Counter::ClusterNodeDeaths);
        true
    }

    /// Points inside the kernel-inflated bbox of each tile — the halo
    /// shipment an adopting node must receive, and the unit the
    /// coverage report weighs tiles by.
    fn shipment_sizes(&self, layer: LayerId, coords: &[TileCoord]) -> Result<Vec<usize>> {
        let ledgers = self.ledgers.lock().unwrap();
        let ledger = ledgers
            .get(layer)
            .ok_or_else(|| LsgaError::InvalidParameter {
                name: "layer",
                message: format!("unknown layer {layer:?}"),
            })?;
        Ok(coords
            .iter()
            .map(|&c| {
                let halo = tile_bbox(&ledger.window, c).inflate(ledger.radius);
                ledger.points.iter().filter(|p| halo.contains(p)).count()
            })
            .collect())
    }

    /// Serve a batch under a seeded fault plan with deterministic
    /// re-homing. Planning (sequential, pure) decides every attempt,
    /// node death, and halo re-shipment; execution then serves each
    /// scheduled-successful tile from its final node's exact path —
    /// bit-identical to the fault-free run for any recoverable plan.
    /// Tiles whose retry budget is exhausted come back `None`, listed
    /// in the exact [`CoverageReport`]. Node deaths scheduled here are
    /// applied to the cluster (routing + broadcasts) before returning.
    pub fn get_tiles_supervised(
        &self,
        layer: LayerId,
        coords: &[TileCoord],
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SupervisedTiles> {
        let shipment_sizes = self.shipment_sizes(layer, coords)?;
        let n = self.nodes.len();

        // ---- Phase 1: sequential planning (mirrors dist::plan_schedule,
        // with node ownership in place of the worker-per-tile pairing).
        let (schedule, was_dead) = {
            let alive = self.alive.lock().unwrap();
            let mut dead: Vec<bool> = alive.iter().map(|&a| !a).collect();
            let was_dead = dead.clone();
            let mut tiles = Vec::with_capacity(coords.len());
            for (t, &coord) in coords.iter().enumerate() {
                let home = home_node(coord, n);
                let entry = Self::route_in(&alive, coord, n).ok();
                let mut out = TileOutcome {
                    tile: t,
                    initial_worker: entry.unwrap_or(home),
                    final_worker: None,
                    attempts: 0,
                    retries: 0,
                    timeouts: 0,
                    reshipments: 0,
                    reshipped_bytes: 0,
                    ticks: 0,
                    errors: Vec::new(),
                };
                let mut clock = SimClock::default();
                let bytes = shipment_sizes[t] as u64 * BYTES_PER_POINT;
                // The entry node already holds the tile's serving state
                // (it is the current route target); anyone else must be
                // shipped the halo before an attempt can run there.
                let mut halo_holder = entry.filter(|&w| !dead[w]);
                for attempt in 0..policy.max_attempts {
                    let Some(node) = (0..n).map(|k| (home + k) % n).find(|&w| !dead[w]) else {
                        out.errors.push(LsgaError::TaskFailed {
                            tile: t,
                            attempts: out.attempts,
                            message: "no surviving nodes to re-home to".into(),
                        });
                        break;
                    };
                    if halo_holder != Some(node) {
                        out.reshipments += 1;
                        out.reshipped_bytes += bytes;
                        halo_holder = Some(node);
                    }
                    out.attempts += 1;
                    match plan.fault_at(t, attempt) {
                        None => {
                            clock.advance(policy.task_ticks);
                            out.final_worker = Some(node);
                            break;
                        }
                        Some(FaultKind::Straggle { ticks }) if ticks <= policy.timeout_ticks => {
                            // Slow but within the deadline: pure latency.
                            clock.advance(ticks);
                            out.final_worker = Some(node);
                            break;
                        }
                        Some(kind) => {
                            let error = match kind {
                                FaultKind::Straggle { .. } => {
                                    out.timeouts += 1;
                                    clock.advance(policy.timeout_ticks);
                                    LsgaError::Timeout {
                                        what: "straggling tile serve abandoned",
                                        ticks: policy.timeout_ticks,
                                    }
                                }
                                FaultKind::CrashBeforeTask | FaultKind::CrashMidTask => {
                                    dead[node] = true;
                                    halo_holder = None; // died with the data
                                    out.timeouts += 1;
                                    clock.advance(policy.timeout_ticks);
                                    LsgaError::WorkerLost {
                                        worker: node,
                                        tile: t,
                                    }
                                }
                                FaultKind::DropHaloShipment => {
                                    halo_holder = None;
                                    out.timeouts += 1;
                                    clock.advance(policy.timeout_ticks);
                                    LsgaError::ShipmentLost { tile: t }
                                }
                                FaultKind::TaskError => {
                                    clock.advance(policy.task_ticks);
                                    LsgaError::TaskFailed {
                                        tile: t,
                                        attempts: out.attempts,
                                        message: "transient serve error".into(),
                                    }
                                }
                            };
                            out.errors.push(error);
                            out.retries += 1;
                            if attempt + 1 < policy.max_attempts {
                                clock.advance(policy.backoff_after(attempt));
                            } else {
                                out.errors.push(LsgaError::TaskFailed {
                                    tile: t,
                                    attempts: out.attempts,
                                    message: "retry budget exhausted".into(),
                                });
                            }
                        }
                    }
                }
                out.ticks = clock.now();
                tiles.push(out);
            }
            let dead_workers: Vec<usize> = (0..n).filter(|&w| dead[w]).collect();
            let sim_ticks = tiles.iter().map(|o| o.ticks).max().unwrap_or(0);
            (
                Schedule {
                    tiles,
                    dead_workers,
                    sim_ticks,
                },
                was_dead,
            )
        };

        // Publish the schedule's recovery activity. The planning loop
        // above is sequential, so these totals are identical for every
        // thread count.
        let mut adopted = vec![0u64; n];
        for o in &schedule.tiles {
            obs::add(Counter::ClusterReshippedBytes, o.reshipped_bytes);
            for _ in 0..o.reshipments {
                obs::instant("cluster.reshipment");
            }
            if o.executed() && o.final_worker != Some(o.initial_worker) {
                obs::incr(Counter::ClusterTilesRehomed);
                adopted[o.final_worker.unwrap()] += 1;
            }
        }
        for (w, &count) in adopted.iter().enumerate() {
            if count > 0 && !schedule.dead_workers.contains(&w) {
                obs::record(Hist::ClusterRehomeBatch, count);
            }
        }

        // Apply scheduled deaths to the live cluster (routing and
        // future broadcasts) exactly once each.
        for &w in &schedule.dead_workers {
            if !was_dead[w] {
                self.kill_node(w);
            }
        }

        // ---- Phase 2: serve every scheduled-successful tile from its
        // final node. All live replicas are bit-identical, so the node
        // choice cannot change bits — only whose cache warms.
        let mut tiles = Vec::with_capacity(coords.len());
        for (o, &coord) in schedule.tiles.iter().zip(coords) {
            match o.final_worker {
                Some(w) => {
                    obs::incr(Counter::ClusterRoutedRequests);
                    let tile = if o.final_worker != Some(o.initial_worker) {
                        let _rehome = obs::span("cluster.rehome");
                        self.nodes[w].get_tile(layer, coord.z, coord.x, coord.y)?
                    } else {
                        self.nodes[w].get_tile(layer, coord.z, coord.x, coord.y)?
                    };
                    tiles.push(Some(tile));
                }
                None => tiles.push(None),
            }
        }

        let report = CoverageReport::from_schedule(&schedule, &shipment_sizes);
        Ok(SupervisedTiles {
            tiles,
            report,
            schedule,
        })
    }
}
