//! The tile server: layers, request path, batching, invalidation.
//!
//! # Bit-identity
//!
//! The headline invariant is that a served tile is bit-identical to
//! [`compute_tile_direct`] over the layer's current point sequence, no
//! matter what the cache did in between. Three facts make that hold:
//!
//! 1. **Fixed decomposition.** Every layer index is built with
//!    `GridIndex::with_bbox` over the layer's *fixed window* and the
//!    kernel's effective radius, so the cell grid never depends on
//!    where the points happen to sit. The pruned KDV sweep folds each
//!    pixel's candidates in (cell row, cell column, entry order); with
//!    the decomposition pinned, that order is a pure function of the
//!    point sequence.
//! 2. **Appends preserve entry order.** The index's counting sort is
//!    stable in input order within each cell, and `insert_points`
//!    appends new points after the existing sequence — so for every
//!    cell, old candidates keep their order and new ones come after.
//! 3. **Masked adds are bit-inert.** Candidates past the kernel cutoff
//!    contribute `0.0 · K_raw(d²)` = ±0.0 to a non-negative
//!    accumulator, which cannot change its bits. Hence a tile farther
//!    than the kernel radius from every inserted point produces the
//!    exact bits it produced before the insert.
//!
//! (1)+(2)+(3) give the invalidation bound: after an insert with
//! bounding box `B`, a cached tile is stale **iff** `B.inflate(radius)`
//! intersects its bbox. `insert_points` drops exactly those tiles;
//! everything else in the cache is still bit-exact, so serving it is
//! indistinguishable from recomputing.
//!
//! # Locking
//!
//! Lock order is `layers → cache shard → flight table`; flight-table
//! and per-flight mutexes are leaves (never held across another
//! acquisition). Tile computation runs with no locks held: a leader
//! captures its layer snapshot (an `Arc` — inserts swap the slot, they
//! never mutate) and computes against it.
//!
//! `layers` is an `RwLock`: the hot read path (every snapshot capture
//! and every leader commit) takes it shared, so concurrent requests —
//! including commits for *different* tiles — never serialize on the
//! layer table; single-flight already guarantees at most one leader
//! per key, so two shared-mode commits can never race on the same
//! cache entry. Only `add_layer` and the `insert_points` swap+sweep
//! take it exclusively, which preserves the atomic-commit argument
//! below verbatim: an exclusive swap still cannot interleave with any
//! shared commit's generation re-check.
//!
//! The leader **commit** is one atomic step under the layers lock:
//! re-check the layer generation, insert into the cache, and retire
//! the flight. Because `insert_points` swaps the snapshot and sweeps
//! the cache under the same lock, every insert either completes before
//! the commit (the generation re-check fails and the leader recomputes
//! against the fresh snapshot — `serve.stale_discards`) or after it
//! (the sweep removes the just-cached tile iff dirty, and any request
//! arriving later starts a fresh flight because the old one is already
//! retired). That closes the stale-join window: a request that begins
//! after an insert has completed can never receive pre-insert bits —
//! it hits the post-commit cache or leads a fresh flight; only
//! requests that genuinely overlap the insert may observe either side,
//! which is linearizable. The tile is published to waiters *after* the
//! commit; waiters joined before the flight was retired, hence before
//! the generation re-check, so the published bits are current for all
//! of them.
//!
//! Every leader exit path deposits a terminal flight outcome: success
//! publishes the tile, an error (unknown layer) fails the flight with
//! that error, and a panic in the compute path is caught by a drop
//! guard that retires the flight and fails it with
//! [`LsgaError::Panicked`] — so waiters can never be left parked on an
//! abandoned flight.
//!
//! # Ingest: the tiered segment stack
//!
//! A layer's index is not one monolithic `GridIndex` but a
//! [`SegmentedGrid`] — an ordered stack of immutable segments sharing
//! the layer's fixed cell decomposition. `insert_points` indexes only
//! its own batch (an O(batch) counting sort), pushes it as a new
//! segment, and lets size-tiered compaction ([`crate::segment`]) keep
//! the stack logarithmic — so a batch append is amortized
//! O(batch · log n) instead of the O(n) clone-and-rebuild the previous
//! design paid. Reads fold each candidate cell segment-by-segment in
//! stack order, which reproduces the monolithic fold bit for bit (the
//! proof lives on [`SegmentedGrid`] and
//! [`lsga_kdv::grid_pruned_kdv_segmented`]); compaction is a pure CSR
//! merge that never recomputes a float, so no served bit ever depends
//! on how far compaction has progressed.
//!
//! The successor stack (shared `Arc`s + the one new segment, plus any
//! compaction merge) is assembled *outside* the layers lock and
//! swapped in only if the generation is still the one it was built
//! against; concurrent inserts retry on top of the winner,
//! **re-stamping the same already-built batch segment** rather than
//! re-indexing anything. The exclusive critical section is just the
//! swap and the invalidation sweep.

use crate::cache::ShardedTileCache;
use crate::flight::{Flight, FlightTable};
use crate::segment::compact_tiers;
use crate::tile::{tile_bbox, tile_spec, LayerId, Tile, TileCoord, TileKey};
use lsga_core::error::{LsgaError, Result};
use lsga_core::par::{par_map, Threads};
use lsga_core::{AnyKernel, BBox, DensityGrid, GridSpec, Kernel, Point};
use lsga_index::{GridIndex, SegmentedGrid};
use lsga_kdv::{grid_pruned_kdv_segmented, grid_pruned_kdv_with_index};
use lsga_obs::{self as obs, Counter, Hist};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Server-wide knobs. The defaults suit a city-scale layer on a
/// workstation; tests shrink the budget to force eviction.
#[derive(Clone, Copy, Debug)]
pub struct TileServerConfig {
    /// Pixels per tile side; every tile is `tile_px × tile_px`.
    pub tile_px: usize,
    /// Deepest zoom level served (level `z` has `4^z` tiles).
    pub max_zoom: u8,
    /// Cache shard count, rounded up to a power of two.
    pub shards: usize,
    /// Total cache budget in bytes, split evenly across shards.
    pub byte_budget: usize,
    /// Pool used for batched requests and tile sweeps.
    pub threads: Threads,
}

impl Default for TileServerConfig {
    fn default() -> Self {
        TileServerConfig {
            tile_px: 256,
            max_zoom: 8,
            shards: 16,
            byte_budget: 256 << 20,
            threads: Threads::auto(),
        }
    }
}

/// Immutable view of a layer at one generation. `insert_points`
/// replaces the whole snapshot; readers clone the `Arc` and compute
/// lock-free against a consistent segment stack. Successive snapshots
/// share every surviving segment `Arc`, so a swap is O(depth) — the
/// layer's point data is never cloned.
struct LayerSnapshot {
    window: BBox,
    kernel: AnyKernel,
    tail_eps: f64,
    /// Kernel effective radius at `tail_eps` — the invalidation
    /// inflation margin and the index cell size.
    radius: f64,
    segments: SegmentedGrid,
    generation: u64,
}

impl LayerSnapshot {
    /// Generation-zero snapshot: the registration points become the
    /// stack's base segment.
    fn seed(window: BBox, kernel: AnyKernel, tail_eps: f64, points: &[Point]) -> Self {
        let radius = kernel.effective_radius(tail_eps);
        let index = GridIndex::with_bbox(points, radius.max(1e-12), window);
        LayerSnapshot {
            window,
            kernel,
            tail_eps,
            radius,
            segments: SegmentedGrid::single(index),
            generation: 0,
        }
    }
}

/// Hook invoked by a flight leader after winning the flight and before
/// computing — lets tests pin request interleavings (e.g. hold the
/// leader until all coalescing waiters have parked).
type ComputeHook = Arc<dyn Fn(TileKey) + Send + Sync>;

/// Hook invoked by `insert_points` after the batch segment is built
/// but before the first commit attempt, with `(layer, batch_len)` —
/// lets tests pin writer/writer and writer/reader interleavings (e.g.
/// park one writer so another steals its generation and forces the
/// CAS re-stamp path).
type InsertHook = Arc<dyn Fn(LayerId, usize) + Send + Sync>;

/// In-memory analytic tile server over KDV layers.
///
/// ```
/// use lsga_core::{BBox, KernelKind, Point};
/// use lsga_serve::{TileServer, TileServerConfig};
///
/// let window = BBox::new(0.0, 0.0, 100.0, 100.0);
/// let points = vec![Point::new(40.0, 60.0), Point::new(42.0, 58.0)];
/// let server = TileServer::new(TileServerConfig {
///     tile_px: 32,
///     ..TileServerConfig::default()
/// });
/// let layer = server
///     .add_layer(points, window, KernelKind::Quartic.with_bandwidth(10.0), 1e-9)
///     .unwrap();
/// let tile = server.get_tile(layer, 2, 1, 2).unwrap(); // cold: computed
/// let again = server.get_tile(layer, 2, 1, 2).unwrap(); // warm: cached
/// assert!(std::ptr::eq(&*tile, &*again));
/// ```
pub struct TileServer {
    cfg: TileServerConfig,
    layers: RwLock<Vec<Arc<LayerSnapshot>>>,
    cache: ShardedTileCache,
    flights: FlightTable,
    compute_hook: Mutex<Option<ComputeHook>>,
    insert_hook: Mutex<Option<InsertHook>>,
}

impl TileServer {
    /// Create an empty server.
    #[must_use]
    pub fn new(cfg: TileServerConfig) -> Self {
        let cache = ShardedTileCache::new(cfg.shards, cfg.byte_budget);
        TileServer {
            cfg,
            layers: RwLock::new(Vec::new()),
            cache,
            flights: FlightTable::new(),
            compute_hook: Mutex::new(None),
            insert_hook: Mutex::new(None),
        }
    }

    /// The configuration this server was built with.
    #[must_use]
    pub fn config(&self) -> &TileServerConfig {
        &self.cfg
    }

    /// Register a KDV layer over a fixed `window` and return its id.
    ///
    /// The window is the pyramid's extent *and* the index frame every
    /// future append reuses, so it must be non-empty and contain every
    /// point — including points inserted later.
    pub fn add_layer(
        &self,
        points: Vec<Point>,
        window: BBox,
        kernel: AnyKernel,
        tail_eps: f64,
    ) -> Result<LayerId> {
        if window.is_empty() {
            return Err(LsgaError::InvalidParameter {
                name: "window",
                message: "layer window must be non-empty".into(),
            });
        }
        if !(tail_eps.is_finite() && tail_eps > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "tail_eps",
                message: format!("tail_eps must be finite and positive, got {tail_eps}"),
            });
        }
        validate_in_window(&points, &window)?;
        let snap = LayerSnapshot::seed(window, kernel, tail_eps, &points);
        let mut layers = self.layers.write().expect("layers poisoned");
        layers.push(Arc::new(snap));
        Ok(layers.len() - 1)
    }

    fn snapshot(&self, layer: LayerId) -> Result<Arc<LayerSnapshot>> {
        let layers = self.layers.read().expect("layers poisoned");
        layers
            .get(layer)
            .cloned()
            .ok_or(LsgaError::InvalidParameter {
                name: "layer",
                message: format!("unknown layer id {layer} ({} registered)", layers.len()),
            })
    }

    fn validate_coord(&self, coord: TileCoord) -> Result<()> {
        if coord.z > self.cfg.max_zoom {
            return Err(LsgaError::InvalidParameter {
                name: "z",
                message: format!("zoom {} exceeds max_zoom {}", coord.z, self.cfg.max_zoom),
            });
        }
        let n = coord.tiles_per_axis();
        if coord.x >= n || coord.y >= n {
            return Err(LsgaError::InvalidParameter {
                name: "tile",
                message: format!(
                    "tile ({}, {}) out of range at zoom {} ({n} per axis)",
                    coord.x, coord.y, coord.z
                ),
            });
        }
        Ok(())
    }

    /// Serve one tile: cache hit, coalesced wait, or leader compute.
    pub fn get_tile(&self, layer: LayerId, z: u8, x: u32, y: u32) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        self.validate_coord(coord)?;
        let key = TileKey { layer, coord };
        if let Some(tile) = self.cache.get(&key) {
            obs::incr(Counter::ServeCacheHits);
            return Ok(tile);
        }
        obs::incr(Counter::ServeCacheMisses);

        let (flight, leader) = self.flights.join(key);
        if !leader {
            // Counted before parking so a test (or dashboard) watching
            // the counter knows how many requests are already waiting.
            obs::incr(Counter::ServeCoalescedWaits);
            return flight.wait();
        }
        self.lead_flight(key, &flight)
    }

    /// Leader side of a flight: compute, commit, publish. Guaranteed
    /// to deposit a terminal outcome on the flight on **every** exit —
    /// success, error return, or panic — so waiters are never left
    /// parked and the key never wedges (see module docs).
    fn lead_flight(&self, key: TileKey, flight: &Flight) -> Result<Arc<Tile>> {
        /// On unwind (or any exit before `disarm`), retire the flight
        /// and fail it so current waiters wake with an error and
        /// future requests lead a fresh flight.
        struct AbortGuard<'a> {
            flights: &'a FlightTable,
            flight: &'a Flight,
            key: TileKey,
            armed: bool,
        }
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.flights.complete(&self.key);
                    self.flight.fail(LsgaError::Panicked("tile computation"));
                }
            }
        }
        let mut guard = AbortGuard {
            flights: &self.flights,
            flight,
            key,
            armed: true,
        };

        let tile = loop {
            // Snapshot the layer; compute runs with no locks held.
            let snap = match self.snapshot(key.layer) {
                Ok(s) => s,
                Err(e) => {
                    // Retire first so racing requests lead fresh
                    // flights, then wake parked waiters with the real
                    // error (`fail` before the guard's generic one).
                    guard.armed = false;
                    self.flights.complete(&key);
                    flight.fail(e.clone());
                    return Err(e);
                }
            };
            let hook = self
                .compute_hook
                .lock()
                .expect("hook poisoned")
                .as_ref()
                .map(Arc::clone);
            if let Some(hook) = hook {
                hook(key);
            }
            let tile = {
                let _span = obs::span("serve.compute_tile");
                obs::incr(Counter::ServeTilesComputed);
                let spec = tile_spec(&snap.window, self.cfg.tile_px, key.coord);
                Arc::new(Tile {
                    key,
                    grid: grid_pruned_kdv_segmented(
                        &snap.segments,
                        spec,
                        snap.kernel,
                        snap.tail_eps,
                    ),
                })
            };
            // Commit: generation re-check, cache insert, and flight
            // retirement form one atomic step against `insert_points`'
            // swap+invalidate, which holds the lock exclusively. Shared
            // mode suffices here: the only writer this must not
            // interleave with is the exclusive swap, and same-key
            // commits cannot coexist (single-flight — this thread is
            // the key's only leader). A request arriving after this
            // point finds the tile in the cache or leads a fresh
            // flight — it can no longer join this one, so no insert
            // completing after the commit can make these bits stale
            // for anyone who receives them.
            {
                let layers = self.layers.read().expect("layers poisoned");
                if layers[key.layer].generation == snap.generation {
                    self.cache.insert(key, Arc::clone(&tile));
                    self.flights.complete(&key);
                    break tile;
                }
            }
            // An insert completed between snapshot and commit: a
            // waiter may have joined *after* that insert, so these
            // bits must not be published. Recompute against the fresh
            // snapshot and try to commit again.
            obs::incr(Counter::ServeStaleDiscards);
        };
        guard.armed = false;
        flight.publish(Arc::clone(&tile));
        Ok(tile)
    }

    /// Serve a batch of tiles for one layer: deduplicates, schedules
    /// the unique tiles across the pool, and returns tiles aligned
    /// with `coords` (duplicates share one `Arc`).
    pub fn get_tiles(&self, layer: LayerId, coords: &[TileCoord]) -> Result<Vec<Arc<Tile>>> {
        for &c in coords {
            self.validate_coord(c)?;
        }
        let _span = obs::span("serve.batch");
        let mut unique: Vec<TileCoord> = Vec::new();
        let mut slot: HashMap<TileCoord, usize> = HashMap::new();
        for &c in coords {
            slot.entry(c).or_insert_with(|| {
                unique.push(c);
                unique.len() - 1
            });
        }
        obs::record(Hist::ServeBatchUniqueTiles, unique.len() as u64);
        let fetched: Vec<Result<Arc<Tile>>> = par_map(unique.len(), 1, self.cfg.threads, |i| {
            let c = unique[i];
            self.get_tile(layer, c.z, c.x, c.y)
        });
        let mut tiles: Vec<Option<Arc<Tile>>> = vec![None; unique.len()];
        for (i, r) in fetched.into_iter().enumerate() {
            tiles[i] = Some(r?);
        }
        Ok(coords
            .iter()
            .map(|c| Arc::clone(tiles[slot[c]].as_ref().expect("slot filled")))
            .collect())
    }

    /// Append points to a layer, dirtying exactly the cached tiles
    /// whose kernel-inflated bboxes the new data touches.
    ///
    /// The batch is indexed **once**, into its own immutable segment —
    /// an O(batch) counting sort over the layer's fixed decomposition,
    /// never an O(n) rebuild. The successor stack (shared `Arc`s + the
    /// new segment, tier-compacted) is assembled outside the layers
    /// lock, so concurrent snapshots (every cold get) and leader
    /// commits are never blocked behind ingest work. The exclusive
    /// critical section is only the generation check, the snapshot
    /// swap, and the invalidation sweep. If another insert won the
    /// race in the meantime, the retry re-stamps the *same* segment
    /// onto the winner's stack — compaction work against the stale
    /// stack is discarded, the batch index is not.
    pub fn insert_points(&self, layer: LayerId, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Err(LsgaError::EmptyDataset("insert_points batch"));
        }
        let _span = obs::span("ingest.append");
        let mut old = self.snapshot(layer)?;
        validate_in_window(points, &old.window)?;

        // The one and only index build for this batch. Window, kernel,
        // and tail_eps are fixed at registration, so the segment's
        // geometry is valid for every future generation too.
        let segment = Arc::new(GridIndex::with_bbox(
            points,
            old.radius.max(1e-12),
            old.window,
        ));
        obs::incr(Counter::IngestSegmentsCreated);
        obs::add(Counter::IngestPointsAppended, points.len() as u64);

        let hook = self
            .insert_hook
            .lock()
            .expect("hook poisoned")
            .as_ref()
            .map(Arc::clone);
        if let Some(hook) = hook {
            hook(layer, points.len());
        }

        loop {
            let mut segs: Vec<Arc<GridIndex>> = old.segments.segments().to_vec();
            segs.push(Arc::clone(&segment));
            let stats = compact_tiers(&mut segs, self.cfg.threads);
            let next = LayerSnapshot {
                window: old.window,
                kernel: old.kernel,
                tail_eps: old.tail_eps,
                radius: old.radius,
                segments: SegmentedGrid::from_segments(segs),
                generation: old.generation + 1,
            };
            let radius = next.radius;
            let window = next.window;
            let depth = next.segments.depth();

            let mut layers = self.layers.write().expect("layers poisoned");
            if layers[layer].generation != old.generation {
                drop(layers);
                old = self.snapshot(layer)?;
                continue;
            }
            layers[layer] = Arc::new(next);

            // Still under the exclusive layers lock (order: layers →
            // shard): dirty exactly the tiles within kernel reach of
            // the new data, atomically with the swap (see module docs).
            let dirty = BBox::of_points(points).inflate(radius);
            let dropped = self
                .cache
                .invalidate(layer, |coord| dirty.intersects(&tile_bbox(&window, coord)));
            if dropped > 0 {
                obs::add(Counter::ServeTilesInvalidated, dropped);
            }
            // Merge accounting is recorded only for the committed
            // attempt, so the ingest tables are a deterministic
            // function of the committed batch sequence.
            if stats.merged_segments > 0 {
                obs::add(Counter::IngestSegmentsMerged, stats.merged_segments as u64);
                obs::add(Counter::IngestMergeBytes, stats.merged_bytes() as u64);
            }
            obs::record(Hist::IngestSegmentCount, depth as u64);
            return Ok(());
        }
    }

    /// Resident segment count of a layer's index stack — bounded by
    /// `log_3 n + O(1)` under the tier policy (see [`crate::segment`]).
    pub fn segment_count(&self, layer: LayerId) -> Result<usize> {
        Ok(self.snapshot(layer)?.segments.depth())
    }

    /// Drop every cached tile (counts as eviction).
    pub fn clear_cache(&self) {
        let dropped = self.cache.clear();
        if dropped > 0 {
            obs::add(Counter::ServeTilesEvicted, dropped);
        }
    }

    /// Resident cache bytes (snapshot, for reporting).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Cached tile count (snapshot, for reporting).
    #[must_use]
    pub fn cached_tiles(&self) -> usize {
        self.cache.len()
    }

    /// Install (or clear) the leader compute hook. Test-oriented; see
    /// [`ComputeHook`].
    pub fn set_compute_hook(&self, hook: Option<Arc<dyn Fn(TileKey) + Send + Sync>>) {
        *self.compute_hook.lock().expect("hook poisoned") = hook;
    }

    /// Install (or clear) the insert hook. Test-oriented; see
    /// [`InsertHook`].
    pub fn set_insert_hook(&self, hook: Option<Arc<dyn Fn(LayerId, usize) + Send + Sync>>) {
        *self.insert_hook.lock().expect("hook poisoned") = hook;
    }
}

fn validate_in_window(points: &[Point], window: &BBox) -> Result<()> {
    for (i, p) in points.iter().enumerate() {
        if !(p.x.is_finite() && p.y.is_finite()) {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} is non-finite: ({}, {})", p.x, p.y),
            });
        }
        if !window.contains(p) {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} ({}, {}) lies outside the layer window", p.x, p.y),
            });
        }
    }
    Ok(())
}

/// The oracle the test suites compare against: compute the tile's
/// region from scratch — fresh index over the same fixed window, same
/// pruned sweep — with no server, cache, or flight in the loop.
/// A served tile must match this bit for bit.
#[must_use]
pub fn compute_tile_direct(
    points: &[Point],
    window: &BBox,
    kernel: AnyKernel,
    tail_eps: f64,
    tile_px: usize,
    coord: TileCoord,
) -> DensityGrid {
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::with_bbox(points, radius.max(1e-12), *window);
    grid_pruned_kdv_with_index(&index, tile_spec(window, tile_px, coord), kernel, tail_eps)
}

/// Convenience for callers that want a one-off spec without a server
/// (e.g. to rasterize the direct answer at tile geometry).
#[must_use]
pub fn tile_grid_spec(window: &BBox, tile_px: usize, coord: TileCoord) -> GridSpec {
    tile_spec(window, tile_px, coord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::KernelKind;

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 45.0,
                    50.0 + (f * 0.557).cos() * 45.0,
                )
            })
            .collect()
    }

    fn server(budget: usize) -> TileServer {
        TileServer::new(TileServerConfig {
            tile_px: 16,
            max_zoom: 5,
            shards: 4,
            byte_budget: budget,
            threads: Threads::exact(2),
        })
    }

    #[test]
    fn served_tile_matches_direct_computation() {
        let pts = scatter(200);
        let s = server(1 << 20);
        let kernel = KernelKind::Quartic.with_bandwidth(12.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        for (z, x, y) in [(0, 0, 0), (1, 1, 0), (3, 5, 2), (5, 31, 31)] {
            let tile = s.get_tile(layer, z, x, y).unwrap();
            let direct =
                compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(z, x, y));
            assert_eq!(
                tile.grid
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                direct
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "tile ({z},{x},{y}) diverged from direct computation"
            );
        }
    }

    #[test]
    fn warm_request_returns_cached_arc() {
        let s = server(1 << 20);
        let layer = s
            .add_layer(
                scatter(50),
                window(),
                KernelKind::Epanechnikov.with_bandwidth(8.0),
                1e-9,
            )
            .unwrap();
        let a = s.get_tile(layer, 2, 1, 1).unwrap();
        let b = s.get_tile(layer, 2, 1, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm hit must share the cached tile");
    }

    #[test]
    fn insert_only_invalidates_tiles_within_kernel_reach() {
        let s = server(1 << 24);
        let kernel = KernelKind::Quartic.with_bandwidth(5.0);
        let layer = s.add_layer(scatter(100), window(), kernel, 1e-9).unwrap();
        // Warm all 16 tiles at zoom 2 (tile side 25 > radius 5).
        for x in 0..4 {
            for y in 0..4 {
                let _ = s.get_tile(layer, 2, x, y).unwrap();
            }
        }
        assert_eq!(s.cached_tiles(), 16);
        // A point in the middle of tile (0,0) reaches only the 25-unit
        // tiles adjacent to its 5-unit radius — i.e. tile (0,0) alone
        // here, since 12.5 ± 5 stays inside [0, 25).
        s.insert_points(layer, &[Point::new(12.5, 12.5)]).unwrap();
        assert_eq!(s.cached_tiles(), 15, "exactly one tile dirtied");
        assert!(s.get_tile(layer, 2, 3, 3).is_ok());
    }

    #[test]
    fn post_insert_tiles_reflect_new_points() {
        let mut pts = scatter(80);
        let s = server(1 << 22);
        let kernel = KernelKind::Gaussian.with_bandwidth(6.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        let _ = s.get_tile(layer, 1, 0, 0).unwrap();
        let extra = vec![Point::new(20.0, 20.0), Point::new(21.0, 19.0)];
        s.insert_points(layer, &extra).unwrap();
        pts.extend_from_slice(&extra);
        let tile = s.get_tile(layer, 1, 0, 0).unwrap();
        let direct =
            compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(1, 0, 0));
        for (a, b) in tile.grid.values().iter().zip(direct.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_dedupes_and_aligns_output() {
        let s = server(1 << 22);
        let layer = s
            .add_layer(
                scatter(60),
                window(),
                KernelKind::Triangular.with_bandwidth(10.0),
                1e-9,
            )
            .unwrap();
        let coords = vec![
            TileCoord::new(1, 0, 0),
            TileCoord::new(1, 1, 1),
            TileCoord::new(1, 0, 0), // duplicate
            TileCoord::new(1, 1, 0),
        ];
        let tiles = s.get_tiles(layer, &coords).unwrap();
        assert_eq!(tiles.len(), 4);
        assert!(Arc::ptr_eq(&tiles[0], &tiles[2]), "duplicate shares Arc");
        for (t, c) in tiles.iter().zip(&coords) {
            assert_eq!(t.key.coord, *c);
        }
    }

    #[test]
    fn rejects_bad_requests() {
        let s = server(1 << 20);
        let layer = s
            .add_layer(
                scatter(10),
                window(),
                KernelKind::Uniform.with_bandwidth(5.0),
                1e-9,
            )
            .unwrap();
        assert!(s.get_tile(layer, 6, 0, 0).is_err(), "zoom beyond max");
        assert!(s.get_tile(layer, 2, 4, 0).is_err(), "column out of range");
        assert!(s.get_tile(layer + 1, 0, 0, 0).is_err(), "unknown layer");
        assert!(
            s.insert_points(layer, &[Point::new(-1.0, 0.0)]).is_err(),
            "outside window"
        );
        assert!(s.insert_points(layer, &[]).is_err(), "empty batch");
        assert!(
            s.add_layer(
                vec![],
                BBox::empty(),
                KernelKind::Uniform.with_bandwidth(1.0),
                1e-9
            )
            .is_err(),
            "empty window"
        );
    }

    #[test]
    fn sustained_appends_tier_the_stack_and_keep_identity() {
        let mut pts = scatter(64);
        let s = server(1 << 22);
        let kernel = KernelKind::Quartic.with_bandwidth(10.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        assert_eq!(s.segment_count(layer).unwrap(), 1);
        for batch_no in 0..40 {
            let batch: Vec<Point> = (0..3)
                .map(|i| {
                    let f = (batch_no * 3 + i) as f64;
                    Point::new(
                        50.0 + (f * 0.413).sin() * 40.0,
                        50.0 + (f * 0.739).cos() * 40.0,
                    )
                })
                .collect();
            s.insert_points(layer, &batch).unwrap();
            pts.extend_from_slice(&batch);
            let n = pts.len() as f64;
            assert!(
                s.segment_count(layer).unwrap() <= n.log2() as usize + 2,
                "stack depth {} after batch {batch_no} exceeds log bound",
                s.segment_count(layer).unwrap()
            );
        }
        // Compaction has provably run (40 batches, depth stayed ≤ 9)
        // and the served bits still match the monolithic oracle.
        for (z, x, y) in [(0, 0, 0), (2, 1, 2), (4, 9, 7)] {
            let tile = s.get_tile(layer, z, x, y).unwrap();
            let direct =
                compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(z, x, y));
            for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile ({z},{x},{y})");
            }
        }
    }

    #[test]
    fn eviction_pressure_never_breaks_identity() {
        let pts = scatter(120);
        let kernel = KernelKind::Epanechnikov.with_bandwidth(9.0);
        // Budget fits ~2 tiles: nearly every request recomputes.
        let s = server(2 * (16 * 16 * 8 + 128));
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        for pass in 0..3 {
            for x in 0..4 {
                for y in 0..4 {
                    let tile = s.get_tile(layer, 2, x, y).unwrap();
                    let direct = compute_tile_direct(
                        &pts,
                        &window(),
                        kernel,
                        1e-9,
                        16,
                        TileCoord::new(2, x, y),
                    );
                    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "pass {pass} tile ({x},{y})");
                    }
                }
            }
        }
    }
}
