//! The tile server: layers, request path, batching, invalidation.
//!
//! Since PR 10 a layer is any [`TileCompute`] — KDV, STKDV, NKDV, or a
//! Gi*/LISA hotspot overlay — and everything below (cache, flights,
//! tiers, ingest CAS loop) is analytic-agnostic. The per-kind compute
//! and dirty-region obligations live in [`crate::compute`]; this module
//! keeps the serving-side argument, written for the original KDV layer
//! but carried by each kind's trait contract.
//!
//! # Bit-identity
//!
//! The headline invariant is that a served tile is bit-identical to
//! its layer's direct compute (for KDV, [`compute_tile_direct`]) over
//! the layer's current point sequence, no matter what the cache did in
//! between. For KDV, three facts make that hold:
//!
//! 1. **Fixed decomposition.** Every layer index is built with
//!    `GridIndex::with_bbox` over the layer's *fixed window* and the
//!    kernel's effective radius, so the cell grid never depends on
//!    where the points happen to sit. The pruned KDV sweep folds each
//!    pixel's candidates in (cell row, cell column, entry order); with
//!    the decomposition pinned, that order is a pure function of the
//!    point sequence.
//! 2. **Appends preserve entry order.** The index's counting sort is
//!    stable in input order within each cell, and `insert_points`
//!    appends new points after the existing sequence — so for every
//!    cell, old candidates keep their order and new ones come after.
//! 3. **Masked adds are bit-inert.** Candidates past the kernel cutoff
//!    contribute `0.0 · K_raw(d²)` = ±0.0 to a non-negative
//!    accumulator, which cannot change its bits. Hence a tile farther
//!    than the kernel radius from every inserted point produces the
//!    exact bits it produced before the insert.
//!
//! (1)+(2)+(3) give the invalidation bound: after an insert with
//! bounding box `B`, a cached tile is stale **iff** `B.inflate(radius)`
//! intersects its bbox. `insert_points` drops exactly those tiles;
//! everything else in the cache is still bit-exact, so serving it is
//! indistinguishable from recomputing.
//!
//! # Locking
//!
//! Lock order is `layers → cache shard → flight table`; flight-table
//! and per-flight mutexes are leaves (never held across another
//! acquisition). Tile computation runs with no locks held: a leader
//! captures its layer snapshot (an `Arc` — inserts swap the slot, they
//! never mutate) and computes against it.
//!
//! `layers` is an `RwLock`: the hot read path (every snapshot capture
//! and every leader commit) takes it shared, so concurrent requests —
//! including commits for *different* tiles — never serialize on the
//! layer table; single-flight already guarantees at most one leader
//! per key, so two shared-mode commits can never race on the same
//! cache entry. Only `add_layer` and the `insert_points` swap+sweep
//! take it exclusively, which preserves the atomic-commit argument
//! below verbatim: an exclusive swap still cannot interleave with any
//! shared commit's generation re-check.
//!
//! The leader **commit** is one atomic step under the layers lock:
//! re-check the layer generation, insert into the cache, and retire
//! the flight. Because `insert_points` swaps the snapshot and sweeps
//! the cache under the same lock, every insert either completes before
//! the commit (the generation re-check fails and the leader recomputes
//! against the fresh snapshot — `serve.stale_discards`) or after it
//! (the sweep removes the just-cached tile iff dirty, and any request
//! arriving later starts a fresh flight because the old one is already
//! retired). That closes the stale-join window: a request that begins
//! after an insert has completed can never receive pre-insert bits —
//! it hits the post-commit cache or leads a fresh flight; only
//! requests that genuinely overlap the insert may observe either side,
//! which is linearizable. The tile is published to waiters *after* the
//! commit; waiters joined before the flight was retired, hence before
//! the generation re-check, so the published bits are current for all
//! of them.
//!
//! Every leader exit path deposits a terminal flight outcome: success
//! publishes the tile, an error (unknown layer) fails the flight with
//! that error, and a panic in the compute path is caught by a drop
//! guard that retires the flight and fails it with
//! [`LsgaError::Panicked`] — so waiters can never be left parked on an
//! abandoned flight.
//!
//! # Ingest: the tiered segment stack
//!
//! A layer's index is not one monolithic `GridIndex` but a
//! [`SegmentedGrid`] — an ordered stack of immutable segments sharing
//! the layer's fixed cell decomposition. `insert_points` indexes only
//! its own batch (an O(batch) counting sort), pushes it as a new
//! segment, and lets size-tiered compaction ([`crate::segment`]) keep
//! the stack logarithmic — so a batch append is amortized
//! O(batch · log n) instead of the O(n) clone-and-rebuild the previous
//! design paid. Reads fold each candidate cell segment-by-segment in
//! stack order, which reproduces the monolithic fold bit for bit (the
//! proof lives on [`SegmentedGrid`] and
//! [`lsga_kdv::grid_pruned_kdv_segmented`]); compaction is a pure CSR
//! merge that never recomputes a float, so no served bit ever depends
//! on how far compaction has progressed.
//!
//! The successor stack (shared `Arc`s + the one new segment, plus any
//! compaction merge) is assembled *outside* the layers lock and
//! swapped in only if the generation is still the one it was built
//! against; concurrent inserts retry on top of the winner,
//! **re-stamping the same already-built batch segment** rather than
//! re-indexing anything. The exclusive critical section is just the
//! swap and the invalidation sweep.
//!
//! # Quality tiers: degrade now, refine later
//!
//! [`TileServer::get_tile_with_policy`] adds deadline-aware admission
//! control in front of the exact path. The server keeps an EWMA of
//! recent foreground exact-tile compute times and counts the exact
//! leaders currently computing; a request with a [`QualityPolicy`] is
//! admitted to the exact path only while
//! `(inflight + 1) × ewma ≤ deadline`. The estimate deliberately
//! ignores how many workers drain the queue — it is a conservative
//! serialized-queue model, which keeps the degrade/admit decision (and
//! therefore the `serve.*` tier counters) independent of the host's
//! thread count. While the EWMA is still unseeded (`ewma == 0`) the
//! wait behind in-flight leaders is unknown but non-zero, so a
//! deadline request degrades whenever any exact leader is already
//! computing; with zero leaders in flight the request is admitted and
//! its own compute seeds the estimate. Past the budget, the request is served a degraded
//! tile computed **inline, without joining any flight**: an O(sample)
//! seeded Eq. 7 evaluation ([`lsga_kdv::sampling_kdv_segmented`]) or
//! an Eq. 6 bound-refined evaluation, stamped with its [`TileTier`]
//! metadata. Degraded computes skip the flight table on purpose —
//! coalescing behind an exact leader is exactly the queue the caller
//! asked to bypass, and duplicate O(sample) computes are the cheap,
//! bounded price of never waiting.
//!
//! The tier state machine per cache entry is `absent → degraded →
//! exact` (or `absent → exact` directly): a degraded insert never
//! replaces an exact tile ([`ShardedTileCache::insert_degraded`]), the
//! plain exact path looks up with
//! [`ShardedTileCache::get_exact`] so an exact request can never
//! receive approximate bits, and every committed degraded serve
//! enqueues a background **refinement** that recomputes the tile
//! exactly and upgrades the entry. Refinements are generation-checked
//! twice — at dequeue against the generation observed when the
//! degraded tile was served, and again under the layers lock at commit
//! — and a mismatch discards the task (`serve.refine_discards`),
//! exactly like a stale flight; the entry stays degraded until the
//! next degraded cache hit re-enqueues it at the current generation. A
//! refinement may race a foreground exact leader on the same key; both
//! commit under the same generation check, so they write identical
//! bits and the race is benign. Degraded serves themselves commit to
//! the cache only if the generation is unchanged since their snapshot
//! (otherwise `serve.stale_discards`, no retry — the caller still gets
//! the tile, which is linearizable for a request that overlapped the
//! insert, but the stale approximation is never published).

use crate::cache::ShardedTileCache;
use crate::compute::{AppendBatch, DirtyRegion, KdvCompute, LayerKind, TileCompute};
use crate::flight::{Flight, FlightTable};
use crate::policy::{ApproxMode, QualityPolicy, TileTier};
use crate::refine::RefineQueue;
use crate::tile::{tile_bbox, tile_spec, LayerId, Tile, TileCoord, TileKey};
use lsga_core::error::{LsgaError, Result};
use lsga_core::par::{par_map, Threads};
use lsga_core::{AnyKernel, BBox, DensityGrid, GridSpec, Kernel, Point, TimedPoint};
use lsga_index::GridIndex;
use lsga_kdv::{grid_pruned_kdv_with_index, sampling_kdv_segmented};
use lsga_obs::{self as obs, Counter, Hist};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide knobs. The defaults suit a city-scale layer on a
/// workstation; tests shrink the budget to force eviction.
#[derive(Clone, Copy, Debug)]
pub struct TileServerConfig {
    /// Pixels per tile side; every tile is `tile_px × tile_px`.
    pub tile_px: usize,
    /// Deepest zoom level served (level `z` has `4^z` tiles).
    pub max_zoom: u8,
    /// Cache shard count, rounded up to a power of two.
    pub shards: usize,
    /// Total cache budget in bytes, split evenly across shards.
    pub byte_budget: usize,
    /// Pool used for batched requests and tile sweeps.
    pub threads: Threads,
    /// Dedicated background threads upgrading degraded cache entries
    /// to exact tiles (clamped to at least 1).
    pub refine_workers: usize,
    /// Bound on queued refinement tasks; pushes past the cap are
    /// dropped and charged to `serve.refine_discards`.
    pub refine_queue_cap: usize,
}

impl Default for TileServerConfig {
    fn default() -> Self {
        TileServerConfig {
            tile_px: 256,
            max_zoom: 8,
            shards: 16,
            byte_budget: 256 << 20,
            threads: Threads::auto(),
            refine_workers: 1,
            refine_queue_cap: 1024,
        }
    }
}

/// Immutable view of a layer at one generation. Appends replace the
/// whole snapshot; readers clone the `Arc` and compute lock-free
/// against a consistent analytic state. Successive snapshots share the
/// bulk of their state (KDV segment `Arc`s, the NKDV network, …), so a
/// swap never clones the layer's point data.
struct LayerSnapshot {
    compute: Arc<dyn TileCompute>,
    generation: u64,
}

/// Hook invoked by a flight leader after winning the flight and before
/// computing — lets tests pin request interleavings (e.g. hold the
/// leader until all coalescing waiters have parked).
type ComputeHook = Arc<dyn Fn(TileKey) + Send + Sync>;

/// Hook invoked by `insert_points` after the batch segment is built
/// but before the first commit attempt, with `(layer, batch_len)` —
/// lets tests pin writer/writer and writer/reader interleavings (e.g.
/// park one writer so another steals its generation and forces the
/// CAS re-stamp path).
type InsertHook = Arc<dyn Fn(LayerId, usize) + Send + Sync>;

/// Hook invoked by a refinement worker after dequeueing a task and
/// before any generation check — lets tests park a refinement so an
/// insert can land under it and force the discard path.
type RefineHook = Arc<dyn Fn(TileKey) + Send + Sync>;

/// In-memory analytic tile server over KDV layers.
///
/// ```
/// use lsga_core::{BBox, KernelKind, Point};
/// use lsga_serve::{TileServer, TileServerConfig};
///
/// let window = BBox::new(0.0, 0.0, 100.0, 100.0);
/// let points = vec![Point::new(40.0, 60.0), Point::new(42.0, 58.0)];
/// let server = TileServer::new(TileServerConfig {
///     tile_px: 32,
///     ..TileServerConfig::default()
/// });
/// let layer = server
///     .add_layer(points, window, KernelKind::Quartic.with_bandwidth(10.0), 1e-9)
///     .unwrap();
/// let tile = server.get_tile(layer, 2, 1, 2).unwrap(); // cold: computed
/// let again = server.get_tile(layer, 2, 1, 2).unwrap(); // warm: cached
/// assert!(std::ptr::eq(&*tile, &*again));
/// ```
pub struct TileServer {
    core: Arc<ServerCore>,
    /// The refinement worker threads; joined on drop.
    workers: Vec<JoinHandle<()>>,
}

/// Everything the request path and the refinement workers share. The
/// public [`TileServer`] is a thin handle over one `Arc` of this.
struct ServerCore {
    cfg: TileServerConfig,
    layers: RwLock<Vec<Arc<LayerSnapshot>>>,
    cache: ShardedTileCache,
    flights: FlightTable,
    refine: RefineQueue,
    /// EWMA (ns) of foreground exact-tile compute times; 0 = no
    /// estimate yet, which disables degrading (the first requests must
    /// run exact to seed it). Updated with relaxed RMW — the estimate
    /// is advisory, not a synchronization point.
    ewma_tile_ns: AtomicU64,
    /// Foreground exact leaders currently computing.
    inflight_exact: AtomicUsize,
    compute_hook: Mutex<Option<ComputeHook>>,
    insert_hook: Mutex<Option<InsertHook>>,
    refine_hook: Mutex<Option<RefineHook>>,
}

/// A refinement worker's whole life: pop, process, report done —
/// `task_done` fires even if processing unwinds, so `drain` can never
/// hang on a lost task.
fn refine_worker(core: Arc<ServerCore>) {
    struct Done<'a>(&'a RefineQueue);
    impl Drop for Done<'_> {
        fn drop(&mut self) {
            self.0.task_done();
        }
    }
    while let Some((key, generation)) = core.refine.pop() {
        let _done = Done(&core.refine);
        core.process_refinement(key, generation);
    }
}

impl TileServer {
    /// Create an empty server, spawning its refinement workers.
    #[must_use]
    pub fn new(cfg: TileServerConfig) -> Self {
        let core = Arc::new(ServerCore {
            cfg,
            layers: RwLock::new(Vec::new()),
            cache: ShardedTileCache::new(cfg.shards, cfg.byte_budget),
            flights: FlightTable::new(),
            refine: RefineQueue::new(cfg.refine_queue_cap),
            ewma_tile_ns: AtomicU64::new(0),
            inflight_exact: AtomicUsize::new(0),
            compute_hook: Mutex::new(None),
            insert_hook: Mutex::new(None),
            refine_hook: Mutex::new(None),
        });
        let workers = (0..cfg.refine_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("lsga-refine-{i}"))
                    .spawn(move || refine_worker(core))
                    .expect("spawn refinement worker")
            })
            .collect();
        TileServer { core, workers }
    }

    /// The configuration this server was built with.
    #[must_use]
    pub fn config(&self) -> &TileServerConfig {
        &self.core.cfg
    }

    /// Register a KDV layer over a fixed `window` and return its id.
    ///
    /// The window is the pyramid's extent *and* the index frame every
    /// future append reuses, so it must be non-empty and contain every
    /// point — including points inserted later.
    pub fn add_layer(
        &self,
        points: Vec<Point>,
        window: BBox,
        kernel: AnyKernel,
        tail_eps: f64,
    ) -> Result<LayerId> {
        self.core.add_layer(points, window, kernel, tail_eps)
    }

    /// Register any [`TileCompute`] as a layer and return its id —
    /// the generic entry point behind [`add_layer`](Self::add_layer)
    /// that STKDV/NKDV/hotspot layers use directly.
    pub fn add_compute_layer(&self, compute: Arc<dyn TileCompute>) -> Result<LayerId> {
        self.core.add_compute_layer(compute)
    }

    /// The analytic kind of a registered layer.
    pub fn layer_kind(&self, layer: LayerId) -> Result<LayerKind> {
        Ok(self.core.snapshot(layer)?.compute.kind())
    }

    /// Number of time bins a layer serves (1 for spatial-only kinds).
    pub fn time_bins(&self, layer: LayerId) -> Result<u32> {
        Ok(self.core.snapshot(layer)?.compute.time_bins())
    }

    /// Serve one tile at the **exact** tier: cache hit, coalesced
    /// wait, or leader compute. A degraded cache entry is a miss for
    /// this path — it never returns approximate bits.
    pub fn get_tile(&self, layer: LayerId, z: u8, x: u32, y: u32) -> Result<Arc<Tile>> {
        self.core.get_tile(layer, z, x, y, 0)
    }

    /// Serve one tile of a time-binned layer at the exact tier.
    /// Spatial-only layers accept only `bin == 0` (where this is
    /// exactly [`get_tile`](Self::get_tile)); any other bin fails with
    /// `InvalidParameter`.
    pub fn get_tile_binned(
        &self,
        layer: LayerId,
        z: u8,
        x: u32,
        y: u32,
        bin: u32,
    ) -> Result<Arc<Tile>> {
        self.core.get_tile(layer, z, x, y, bin)
    }

    /// Serve one tile under a deadline: exact while the estimated
    /// queue wait fits the budget, otherwise a guaranteed-ε degraded
    /// tile computed inline (see the module docs' tier section). The
    /// returned tile's [`Tile::tier`] says which happened.
    pub fn get_tile_with_policy(
        &self,
        layer: LayerId,
        z: u8,
        x: u32,
        y: u32,
        policy: &QualityPolicy,
    ) -> Result<Arc<Tile>> {
        self.core.get_tile_with_policy(layer, z, x, y, policy)
    }

    /// Serve a batch of tiles for one layer: deduplicates, schedules
    /// the unique tiles across the pool, and returns tiles aligned
    /// with `coords` (duplicates share one `Arc`).
    pub fn get_tiles(&self, layer: LayerId, coords: &[TileCoord]) -> Result<Vec<Arc<Tile>>> {
        self.core.get_tiles(layer, coords, None)
    }

    /// [`get_tiles`](Self::get_tiles) with a per-request
    /// [`QualityPolicy`] applied to every tile in the batch.
    pub fn get_tiles_with_policy(
        &self,
        layer: LayerId,
        coords: &[TileCoord],
        policy: &QualityPolicy,
    ) -> Result<Vec<Arc<Tile>>> {
        self.core.get_tiles(layer, coords, Some(policy))
    }

    /// Append points to a layer, dirtying exactly the cached tiles the
    /// layer's [`DirtyRegion`] covers (for KDV: the kernel-inflated
    /// bbox of the batch). NKDV layers snap the points onto their road
    /// network; STKDV layers reject planar batches — use
    /// [`insert_timed_points`](Self::insert_timed_points).
    pub fn insert_points(&self, layer: LayerId, points: &[Point]) -> Result<()> {
        self.core.insert(layer, AppendBatch::Planar(points))
    }

    /// Append timed points to an STKDV layer; spatial-only layers
    /// reject the batch with `InvalidParameter`.
    pub fn insert_timed_points(&self, layer: LayerId, points: &[TimedPoint]) -> Result<()> {
        self.core.insert(layer, AppendBatch::Timed(points))
    }

    /// Resident segment count of a layer's index stack — bounded by
    /// `log_3 n + O(1)` under the tier policy (see [`crate::segment`]).
    pub fn segment_count(&self, layer: LayerId) -> Result<usize> {
        self.core.segment_count(layer)
    }

    /// Drop every cached tile (counts as eviction).
    pub fn clear_cache(&self) {
        self.core.clear_cache();
    }

    /// Resident cache bytes (snapshot, for reporting).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.core.cache.bytes()
    }

    /// Cached tile count (snapshot, for reporting).
    #[must_use]
    pub fn cached_tiles(&self) -> usize {
        self.core.cache.len()
    }

    /// Tier of the cached tile at `(layer, z, x, y)`, if resident —
    /// observability for tests and dashboards, no LRU side effects.
    #[must_use]
    pub fn cached_tier(&self, layer: LayerId, z: u8, x: u32, y: u32) -> Option<TileTier> {
        let key = TileKey::new(layer, TileCoord::new(z, x, y));
        self.core.cache.peek(&key).map(|t| t.tier)
    }

    /// Seed (or override) the exact-compute cost estimate admission
    /// control multiplies by the in-flight depth. Operationally this
    /// warms the controller before traffic arrives; tests use it to
    /// pin the degrade decision deterministically.
    /// `Duration::ZERO` clears the estimate, which disables degrading
    /// until the next foreground exact compute re-seeds it.
    pub fn set_compute_estimate(&self, estimate: Duration) {
        let ns = estimate.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.core.ewma_tile_ns.store(ns, Ordering::Relaxed);
    }

    /// The admission controller's current serialized-queue estimate:
    /// `(inflight + 1) · ewma`, i.e. what an exact request arriving now
    /// would be predicted to wait. Zero while the EWMA is unseeded.
    /// Front-ends use this to derive honest backoff hints
    /// (`Retry-After`) instead of a hardcoded constant.
    #[must_use]
    pub fn estimated_queue_wait(&self) -> Duration {
        let ewma = self.core.ewma_tile_ns.load(Ordering::Relaxed);
        let depth = self.core.inflight_exact.load(Ordering::Relaxed) as u64;
        Duration::from_nanos((depth + 1).saturating_mul(ewma))
    }

    /// Block until every queued refinement has committed or been
    /// discarded. Makes the asynchronous upgrade observable: after
    /// this returns (with no concurrent traffic), every cache entry a
    /// degraded serve left behind is either refined to exact bits or
    /// accounted in `serve.refine_discards`.
    pub fn drain_refinements(&self) {
        self.core.refine.drain();
    }

    /// Install (or clear) the leader compute hook. Test-oriented; see
    /// [`ComputeHook`].
    pub fn set_compute_hook(&self, hook: Option<Arc<dyn Fn(TileKey) + Send + Sync>>) {
        *self.core.compute_hook.lock().expect("hook poisoned") = hook;
    }

    /// Install (or clear) the insert hook. Test-oriented; see
    /// [`InsertHook`].
    pub fn set_insert_hook(&self, hook: Option<Arc<dyn Fn(LayerId, usize) + Send + Sync>>) {
        *self.core.insert_hook.lock().expect("hook poisoned") = hook;
    }

    /// Install (or clear) the refinement hook. Test-oriented; see
    /// [`RefineHook`].
    pub fn set_refine_hook(&self, hook: Option<Arc<dyn Fn(TileKey) + Send + Sync>>) {
        *self.core.refine_hook.lock().expect("hook poisoned") = hook;
    }
}

impl Drop for TileServer {
    fn drop(&mut self) {
        self.core.refine.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl ServerCore {
    /// Register a KDV layer over a fixed `window` and return its id.
    ///
    /// The window is the pyramid's extent *and* the index frame every
    /// future append reuses, so it must be non-empty and contain every
    /// point — including points inserted later.
    pub fn add_layer(
        &self,
        points: Vec<Point>,
        window: BBox,
        kernel: AnyKernel,
        tail_eps: f64,
    ) -> Result<LayerId> {
        let compute = KdvCompute::new(&points, window, kernel, tail_eps)?;
        self.add_compute_layer(Arc::new(compute))
    }

    /// Register any [`TileCompute`] as a layer at generation zero.
    pub fn add_compute_layer(&self, compute: Arc<dyn TileCompute>) -> Result<LayerId> {
        let mut layers = self.layers.write().expect("layers poisoned");
        layers.push(Arc::new(LayerSnapshot {
            compute,
            generation: 0,
        }));
        Ok(layers.len() - 1)
    }

    fn snapshot(&self, layer: LayerId) -> Result<Arc<LayerSnapshot>> {
        let layers = self.layers.read().expect("layers poisoned");
        layers
            .get(layer)
            .cloned()
            .ok_or(LsgaError::InvalidParameter {
                name: "layer",
                message: format!("unknown layer id {layer} ({} registered)", layers.len()),
            })
    }

    fn validate_coord(&self, coord: TileCoord) -> Result<()> {
        if coord.z > self.cfg.max_zoom {
            return Err(LsgaError::InvalidParameter {
                name: "z",
                message: format!("zoom {} exceeds max_zoom {}", coord.z, self.cfg.max_zoom),
            });
        }
        let n = coord.tiles_per_axis();
        if coord.x >= n || coord.y >= n {
            return Err(LsgaError::InvalidParameter {
                name: "tile",
                message: format!(
                    "tile ({}, {}) out of range at zoom {} ({n} per axis)",
                    coord.x, coord.y, coord.z
                ),
            });
        }
        Ok(())
    }

    /// Serve one tile at the exact tier: cache hit, coalesced wait, or
    /// leader compute. Uses [`ShardedTileCache::get_exact`], so a
    /// resident degraded tile is a miss here and gets replaced by the
    /// leader's exact commit.
    fn get_tile(&self, layer: LayerId, z: u8, x: u32, y: u32, bin: u32) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        self.validate_coord(coord)?;
        let key = TileKey::binned(layer, coord, bin);
        if let Some(tile) = self.cache.get_exact(&key) {
            obs::incr(Counter::ServeCacheHits);
            return Ok(tile);
        }
        obs::incr(Counter::ServeCacheMisses);

        let (flight, leader) = self.flights.join(key);
        if !leader {
            // Counted before parking so a test (or dashboard) watching
            // the counter knows how many requests are already waiting.
            obs::incr(Counter::ServeCoalescedWaits);
            return flight.wait();
        }
        self.lead_flight(key, &flight)
    }

    /// Deadline-checked request path (see module docs): any-tier cache
    /// hit, else an admission decision between the exact flight path
    /// and an inline degraded compute.
    fn get_tile_with_policy(
        &self,
        layer: LayerId,
        z: u8,
        x: u32,
        y: u32,
        policy: &QualityPolicy,
    ) -> Result<Arc<Tile>> {
        let coord = TileCoord::new(z, x, y);
        self.validate_coord(coord)?;
        let key = TileKey::new(layer, coord);
        if let Some(tile) = self.cache.get(&key) {
            obs::incr(Counter::ServeCacheHits);
            if !tile.tier.is_exact() {
                // A degraded hit re-arms the upgrade: if an earlier
                // refinement was discarded under a racing insert, this
                // retries it at the current generation.
                let generation = self.snapshot(layer)?.generation;
                if !self.refine.push(key, generation) {
                    obs::incr(Counter::ServeRefineDiscards);
                }
            }
            return Ok(tile);
        }
        obs::incr(Counter::ServeCacheMisses);

        // Degraded tiers exist only for KDV layers (Eq. 6/7 are KDV
        // approximations); every other kind takes the exact flight
        // path directly, skipping admission control entirely so the
        // `serve.queue_wait` table stays a KDV-only signal.
        if self.snapshot(layer)?.compute.as_kdv().is_none() {
            let (flight, leader) = self.flights.join(key);
            if !leader {
                obs::incr(Counter::ServeCoalescedWaits);
                return flight.wait();
            }
            return self.lead_flight(key, &flight);
        }

        // Admission: a conservative serialized-queue estimate of what
        // joining the exact path would cost. Deliberately not divided
        // by any worker count — see module docs.
        let ewma = self.ewma_tile_ns.load(Ordering::Relaxed);
        let depth = self.inflight_exact.load(Ordering::Relaxed) as u64;
        let est_ns = (depth + 1).saturating_mul(ewma);
        obs::record(Hist::ServeQueueWait, est_ns / 1_000);
        let deadline_ns = policy.deadline().as_nanos().min(u128::from(u64::MAX)) as u64;
        // An unseeded controller (`ewma == 0`) with exact leaders already
        // in flight must not wave a deadline request onto the queue: the
        // wait is unknown but provably non-zero, so degrade. With no
        // in-flight leaders the request itself becomes the seeding
        // compute, which is the bootstrap path.
        if (ewma > 0 && est_ns > deadline_ns) || (ewma == 0 && depth > 0) {
            return self.serve_degraded(key, policy);
        }

        let (flight, leader) = self.flights.join(key);
        if !leader {
            obs::incr(Counter::ServeCoalescedWaits);
            return flight.wait();
        }
        self.lead_flight(key, &flight)
    }

    /// Compute and serve a guaranteed-ε degraded tile inline — no
    /// flight, no queue. Commits to the cache (and enqueues the
    /// background refinement) only if the layer generation is
    /// unchanged since the snapshot; the caller receives the tile
    /// either way.
    fn serve_degraded(&self, key: TileKey, policy: &QualityPolicy) -> Result<Arc<Tile>> {
        let snap = self.snapshot(key.layer)?;
        let kdv = snap
            .compute
            .as_kdv()
            .expect("degraded tiers are kdv-only; admission checked the kind");
        let tile = {
            let _span = obs::span("serve.degraded_tile");
            let spec = tile_spec(&kdv.window, self.cfg.tile_px, key.coord);
            let n = kdv.segments().total_len();
            let (grid, tier) = match policy.mode() {
                ApproxMode::Sampling { eps, delta, seed } => (
                    sampling_kdv_segmented(
                        kdv.segments(),
                        spec,
                        kdv.kernel,
                        policy.sample_size(),
                        seed,
                    ),
                    TileTier::Sampled {
                        eps,
                        delta,
                        seed,
                        sample_size: policy.sample_size().min(n),
                        n,
                    },
                ),
                ApproxMode::Bounds { eps } => (
                    kdv.bounds_index().compute(spec, kdv.kernel, eps),
                    TileTier::Bounds { eps },
                ),
            };
            obs::incr(Counter::ServeDegradedTiles);
            Arc::new(Tile { key, grid, tier })
        };
        // Commit under the layers lock (read mode suffices — the only
        // writer to exclude is the insert swap, same as exact commits).
        let (stale, enqueue) = {
            let layers = self.layers.read().expect("layers poisoned");
            if layers[key.layer].generation == snap.generation {
                // Refused = an exact tile is already resident (a
                // foreground leader beat us): nothing to refine.
                (false, self.cache.insert_degraded(key, Arc::clone(&tile)))
            } else {
                (true, false)
            }
        };
        if stale {
            // A racing insert landed mid-compute: these bits are still
            // linearizable for this caller but must not be published.
            obs::incr(Counter::ServeStaleDiscards);
        } else if enqueue && !self.refine.push(key, snap.generation) {
            obs::incr(Counter::ServeRefineDiscards);
        }
        Ok(tile)
    }

    /// One dequeued refinement task: recompute `key` exactly against
    /// the current snapshot and upgrade the cache entry, unless a
    /// generation move, an eviction, or an already-exact entry makes
    /// the task moot (every such exit counts `serve.refine_discards`).
    fn process_refinement(&self, key: TileKey, enqueue_generation: u64) {
        let hook = self
            .refine_hook
            .lock()
            .expect("hook poisoned")
            .as_ref()
            .map(Arc::clone);
        if let Some(hook) = hook {
            hook(key);
        }
        let Ok(snap) = self.snapshot(key.layer) else {
            obs::incr(Counter::ServeRefineDiscards);
            return;
        };
        // Raced by an insert since the degraded serve: discarded like
        // a stale flight. The entry stays degraded until the next
        // degraded cache hit re-enqueues at the current generation.
        if snap.generation != enqueue_generation {
            obs::incr(Counter::ServeRefineDiscards);
            return;
        }
        // Upgraded or evicted already: nothing to do.
        match self.cache.peek(&key) {
            Some(t) if !t.tier.is_exact() => {}
            _ => {
                obs::incr(Counter::ServeRefineDiscards);
                return;
            }
        }
        let tile = {
            let _span = obs::span("serve.refine_tile");
            obs::incr(Counter::ServeTilesComputed);
            obs::incr(snap.compute.kind().computed_counter());
            let window = snap.compute.window();
            let spec = tile_spec(&window, self.cfg.tile_px, key.coord);
            Arc::new(Tile {
                key,
                grid: snap.compute.compute(spec, key.bin),
                tier: TileTier::Exact,
            })
        };
        let layers = self.layers.read().expect("layers poisoned");
        if layers[key.layer].generation == snap.generation {
            // May race a foreground exact leader on the same key: both
            // passed the same generation check, so both hold identical
            // bits and either commit order serves the same tile.
            self.cache.insert(key, tile);
            obs::incr(Counter::ServeRefinedTiles);
        } else {
            obs::incr(Counter::ServeRefineDiscards);
        }
    }

    /// Fold one foreground exact compute's duration into the EWMA
    /// (`new = old·7/8 + sample/8`; the first sample seeds it). Relaxed
    /// RMW — a lost update under contention only delays convergence.
    fn observe_exact_cost(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let _ = self
            .ewma_tile_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                Some(if old == 0 {
                    sample
                } else {
                    old - old / 8 + sample / 8
                })
            });
    }

    /// Leader side of a flight: compute, commit, publish. Guaranteed
    /// to deposit a terminal outcome on the flight on **every** exit —
    /// success, error return, or panic — so waiters are never left
    /// parked and the key never wedges (see module docs).
    fn lead_flight(&self, key: TileKey, flight: &Flight) -> Result<Arc<Tile>> {
        /// On unwind (or any exit before `disarm`), retire the flight
        /// and fail it so current waiters wake with an error and
        /// future requests lead a fresh flight.
        struct AbortGuard<'a> {
            flights: &'a FlightTable,
            flight: &'a Flight,
            key: TileKey,
            armed: bool,
        }
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.flights.complete(&self.key);
                    self.flight.fail(LsgaError::Panicked("tile computation"));
                }
            }
        }
        let mut guard = AbortGuard {
            flights: &self.flights,
            flight,
            key,
            armed: true,
        };

        // Depth accounting for admission control: this thread is now a
        // foreground exact leader; decremented on every exit path.
        struct DepthGuard<'a>(&'a AtomicUsize);
        impl Drop for DepthGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.inflight_exact.fetch_add(1, Ordering::Relaxed);
        let _depth = DepthGuard(&self.inflight_exact);

        let tile = loop {
            // Snapshot the layer; compute runs with no locks held.
            let snap = match self.snapshot(key.layer) {
                Ok(s) => s,
                Err(e) => {
                    // Retire first so racing requests lead fresh
                    // flights, then wake parked waiters with the real
                    // error (`fail` before the guard's generic one).
                    guard.armed = false;
                    self.flights.complete(&key);
                    flight.fail(e.clone());
                    return Err(e);
                }
            };
            // A bin past the layer's time axis can never be cached, so
            // the request always lands here; fail the flight like an
            // unknown layer. Spatial-only layers serve exactly bin 0.
            if key.bin >= snap.compute.time_bins() {
                let e = LsgaError::InvalidParameter {
                    name: "bin",
                    message: format!(
                        "time bin {} out of range ({} bins)",
                        key.bin,
                        snap.compute.time_bins()
                    ),
                };
                guard.armed = false;
                self.flights.complete(&key);
                flight.fail(e.clone());
                return Err(e);
            }
            let hook = self
                .compute_hook
                .lock()
                .expect("hook poisoned")
                .as_ref()
                .map(Arc::clone);
            if let Some(hook) = hook {
                hook(key);
            }
            let started = Instant::now();
            let tile = {
                let _span = obs::span("serve.compute_tile");
                obs::incr(Counter::ServeTilesComputed);
                obs::incr(snap.compute.kind().computed_counter());
                let window = snap.compute.window();
                let spec = tile_spec(&window, self.cfg.tile_px, key.coord);
                Arc::new(Tile {
                    key,
                    grid: snap.compute.compute(spec, key.bin),
                    tier: TileTier::Exact,
                })
            };
            self.observe_exact_cost(started.elapsed());
            // Commit: generation re-check, cache insert, and flight
            // retirement form one atomic step against `insert_points`'
            // swap+invalidate, which holds the lock exclusively. Shared
            // mode suffices here: the only writer this must not
            // interleave with is the exclusive swap, and same-key
            // commits cannot coexist (single-flight — this thread is
            // the key's only leader). A request arriving after this
            // point finds the tile in the cache or leads a fresh
            // flight — it can no longer join this one, so no insert
            // completing after the commit can make these bits stale
            // for anyone who receives them.
            {
                let layers = self.layers.read().expect("layers poisoned");
                if layers[key.layer].generation == snap.generation {
                    self.cache.insert(key, Arc::clone(&tile));
                    self.flights.complete(&key);
                    break tile;
                }
            }
            // An insert completed between snapshot and commit: a
            // waiter may have joined *after* that insert, so these
            // bits must not be published. Recompute against the fresh
            // snapshot and try to commit again.
            obs::incr(Counter::ServeStaleDiscards);
        };
        guard.armed = false;
        flight.publish(Arc::clone(&tile));
        Ok(tile)
    }

    /// Serve a batch of tiles for one layer: deduplicates, schedules
    /// the unique tiles across the pool, and returns tiles aligned
    /// with `coords` (duplicates share one `Arc`). With a policy, each
    /// unique tile takes the deadline-checked path independently.
    fn get_tiles(
        &self,
        layer: LayerId,
        coords: &[TileCoord],
        policy: Option<&QualityPolicy>,
    ) -> Result<Vec<Arc<Tile>>> {
        for &c in coords {
            self.validate_coord(c)?;
        }
        let _span = obs::span("serve.batch");
        let mut unique: Vec<TileCoord> = Vec::new();
        let mut slot: HashMap<TileCoord, usize> = HashMap::new();
        for &c in coords {
            slot.entry(c).or_insert_with(|| {
                unique.push(c);
                unique.len() - 1
            });
        }
        obs::record(Hist::ServeBatchUniqueTiles, unique.len() as u64);
        let fetched: Vec<Result<Arc<Tile>>> = par_map(unique.len(), 1, self.cfg.threads, |i| {
            let c = unique[i];
            match policy {
                Some(p) => self.get_tile_with_policy(layer, c.z, c.x, c.y, p),
                None => self.get_tile(layer, c.z, c.x, c.y, 0),
            }
        });
        let mut tiles: Vec<Option<Arc<Tile>>> = vec![None; unique.len()];
        for (i, r) in fetched.into_iter().enumerate() {
            tiles[i] = Some(r?);
        }
        Ok(coords
            .iter()
            .map(|c| Arc::clone(tiles[slot[c]].as_ref().expect("slot filled")))
            .collect())
    }

    /// Append a batch to a layer, dirtying exactly the cached tiles
    /// the layer's [`DirtyRegion`] covers.
    ///
    /// The expensive batch work runs **once**, in the layer's
    /// [`TileCompute::prepare_append`] (for KDV: an O(batch) counting
    /// sort into its own immutable segment; for NKDV: snapping the
    /// points onto the network). The successor snapshot is assembled
    /// outside the layers lock, so concurrent snapshots (every cold
    /// get) and leader commits are never blocked behind ingest work.
    /// The exclusive critical section is only the generation check,
    /// the snapshot swap, and the invalidation sweep. If another
    /// insert won the race in the meantime, the retry re-applies the
    /// *same* prepared batch onto the winner's state — successor
    /// assembly against the stale state is discarded, the prepared
    /// batch is not.
    pub fn insert(&self, layer: LayerId, batch: AppendBatch<'_>) -> Result<()> {
        if batch.is_empty() {
            return Err(LsgaError::EmptyDataset("insert_points batch"));
        }
        let _span = obs::span("ingest.append");
        let mut old = self.snapshot(layer)?;
        let prepared = old.compute.prepare_append(batch)?;
        obs::add(Counter::IngestPointsAppended, batch.len() as u64);

        let hook = self
            .insert_hook
            .lock()
            .expect("hook poisoned")
            .as_ref()
            .map(Arc::clone);
        if let Some(hook) = hook {
            hook(layer, batch.len());
        }

        loop {
            let applied = old.compute.apply_append(&prepared, self.cfg.threads);
            let kind = old.compute.kind();
            let next_compute = Arc::clone(&applied.next);
            let window = next_compute.window();
            let next = LayerSnapshot {
                compute: applied.next,
                generation: old.generation + 1,
            };

            let mut layers = self.layers.write().expect("layers poisoned");
            if layers[layer].generation != old.generation {
                drop(layers);
                old = self.snapshot(layer)?;
                continue;
            }
            layers[layer] = Arc::new(next);

            // Still under the exclusive layers lock (order: layers →
            // shard): dirty exactly the tiles the batch can have
            // touched, atomically with the swap (see module docs).
            let dropped = match applied.dirty {
                DirtyRegion::All => self.cache.invalidate(layer, |_, _| true),
                DirtyRegion::Planar(dirty) => self.cache.invalidate(layer, |coord, _| {
                    dirty.intersects(&tile_bbox(&window, coord))
                }),
                DirtyRegion::SpaceTime { bbox, t_lo, t_hi } => {
                    self.cache.invalidate(layer, |coord, bin| {
                        let t = next_compute.bin_time(bin);
                        t >= t_lo && t <= t_hi && bbox.intersects(&tile_bbox(&window, coord))
                    })
                }
            };
            if dropped > 0 {
                obs::add(Counter::ServeTilesInvalidated, dropped);
                obs::add(kind.invalidated_counter(), dropped);
            }
            // Merge accounting is recorded only for the committed
            // attempt, so the ingest tables are a deterministic
            // function of the committed batch sequence.
            if applied.merged_segments > 0 {
                obs::add(Counter::IngestSegmentsMerged, applied.merged_segments);
                obs::add(Counter::IngestMergeBytes, applied.merged_bytes);
            }
            if let Some(depth) = applied.segment_depth {
                obs::record(Hist::IngestSegmentCount, depth);
            }
            return Ok(());
        }
    }

    /// Resident segment count of a KDV layer's index stack — bounded
    /// by `log_3 n + O(1)` under the tier policy (see
    /// [`crate::segment`]). Other kinds have no segment stack.
    fn segment_count(&self, layer: LayerId) -> Result<usize> {
        let snap = self.snapshot(layer)?;
        match snap.compute.as_kdv() {
            Some(kdv) => Ok(kdv.segments().depth()),
            None => Err(LsgaError::InvalidParameter {
                name: "layer",
                message: format!(
                    "segment_count applies to kdv layers, not {}",
                    snap.compute.kind().name()
                ),
            }),
        }
    }

    /// Drop every cached tile (counts as eviction).
    fn clear_cache(&self) {
        let dropped = self.cache.clear();
        if dropped > 0 {
            obs::add(Counter::ServeTilesEvicted, dropped);
        }
    }
}

/// The oracle the test suites compare against: compute the tile's
/// region from scratch — fresh index over the same fixed window, same
/// pruned sweep — with no server, cache, or flight in the loop.
/// A served tile must match this bit for bit.
#[must_use]
pub fn compute_tile_direct(
    points: &[Point],
    window: &BBox,
    kernel: AnyKernel,
    tail_eps: f64,
    tile_px: usize,
    coord: TileCoord,
) -> DensityGrid {
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::with_bbox(points, radius.max(1e-12), *window);
    grid_pruned_kdv_with_index(&index, tile_spec(window, tile_px, coord), kernel, tail_eps)
}

/// Convenience for callers that want a one-off spec without a server
/// (e.g. to rasterize the direct answer at tile geometry).
#[must_use]
pub fn tile_grid_spec(window: &BBox, tile_px: usize, coord: TileCoord) -> GridSpec {
    tile_spec(window, tile_px, coord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::KernelKind;

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 45.0,
                    50.0 + (f * 0.557).cos() * 45.0,
                )
            })
            .collect()
    }

    fn server(budget: usize) -> TileServer {
        TileServer::new(TileServerConfig {
            tile_px: 16,
            max_zoom: 5,
            shards: 4,
            byte_budget: budget,
            threads: Threads::exact(2),
            ..TileServerConfig::default()
        })
    }

    #[test]
    fn served_tile_matches_direct_computation() {
        let pts = scatter(200);
        let s = server(1 << 20);
        let kernel = KernelKind::Quartic.with_bandwidth(12.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        for (z, x, y) in [(0, 0, 0), (1, 1, 0), (3, 5, 2), (5, 31, 31)] {
            let tile = s.get_tile(layer, z, x, y).unwrap();
            let direct =
                compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(z, x, y));
            assert_eq!(
                tile.grid
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                direct
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "tile ({z},{x},{y}) diverged from direct computation"
            );
        }
    }

    #[test]
    fn warm_request_returns_cached_arc() {
        let s = server(1 << 20);
        let layer = s
            .add_layer(
                scatter(50),
                window(),
                KernelKind::Epanechnikov.with_bandwidth(8.0),
                1e-9,
            )
            .unwrap();
        let a = s.get_tile(layer, 2, 1, 1).unwrap();
        let b = s.get_tile(layer, 2, 1, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm hit must share the cached tile");
    }

    #[test]
    fn insert_only_invalidates_tiles_within_kernel_reach() {
        let s = server(1 << 24);
        let kernel = KernelKind::Quartic.with_bandwidth(5.0);
        let layer = s.add_layer(scatter(100), window(), kernel, 1e-9).unwrap();
        // Warm all 16 tiles at zoom 2 (tile side 25 > radius 5).
        for x in 0..4 {
            for y in 0..4 {
                let _ = s.get_tile(layer, 2, x, y).unwrap();
            }
        }
        assert_eq!(s.cached_tiles(), 16);
        // A point in the middle of tile (0,0) reaches only the 25-unit
        // tiles adjacent to its 5-unit radius — i.e. tile (0,0) alone
        // here, since 12.5 ± 5 stays inside [0, 25).
        s.insert_points(layer, &[Point::new(12.5, 12.5)]).unwrap();
        assert_eq!(s.cached_tiles(), 15, "exactly one tile dirtied");
        assert!(s.get_tile(layer, 2, 3, 3).is_ok());
    }

    #[test]
    fn post_insert_tiles_reflect_new_points() {
        let mut pts = scatter(80);
        let s = server(1 << 22);
        let kernel = KernelKind::Gaussian.with_bandwidth(6.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        let _ = s.get_tile(layer, 1, 0, 0).unwrap();
        let extra = vec![Point::new(20.0, 20.0), Point::new(21.0, 19.0)];
        s.insert_points(layer, &extra).unwrap();
        pts.extend_from_slice(&extra);
        let tile = s.get_tile(layer, 1, 0, 0).unwrap();
        let direct =
            compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(1, 0, 0));
        for (a, b) in tile.grid.values().iter().zip(direct.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_dedupes_and_aligns_output() {
        let s = server(1 << 22);
        let layer = s
            .add_layer(
                scatter(60),
                window(),
                KernelKind::Triangular.with_bandwidth(10.0),
                1e-9,
            )
            .unwrap();
        let coords = vec![
            TileCoord::new(1, 0, 0),
            TileCoord::new(1, 1, 1),
            TileCoord::new(1, 0, 0), // duplicate
            TileCoord::new(1, 1, 0),
        ];
        let tiles = s.get_tiles(layer, &coords).unwrap();
        assert_eq!(tiles.len(), 4);
        assert!(Arc::ptr_eq(&tiles[0], &tiles[2]), "duplicate shares Arc");
        for (t, c) in tiles.iter().zip(&coords) {
            assert_eq!(t.key.coord, *c);
        }
    }

    #[test]
    fn rejects_bad_requests() {
        let s = server(1 << 20);
        let layer = s
            .add_layer(
                scatter(10),
                window(),
                KernelKind::Uniform.with_bandwidth(5.0),
                1e-9,
            )
            .unwrap();
        assert!(s.get_tile(layer, 6, 0, 0).is_err(), "zoom beyond max");
        assert!(s.get_tile(layer, 2, 4, 0).is_err(), "column out of range");
        assert!(s.get_tile(layer + 1, 0, 0, 0).is_err(), "unknown layer");
        assert!(
            s.insert_points(layer, &[Point::new(-1.0, 0.0)]).is_err(),
            "outside window"
        );
        assert!(s.insert_points(layer, &[]).is_err(), "empty batch");
        assert!(
            s.add_layer(
                vec![],
                BBox::empty(),
                KernelKind::Uniform.with_bandwidth(1.0),
                1e-9
            )
            .is_err(),
            "empty window"
        );
    }

    #[test]
    fn sustained_appends_tier_the_stack_and_keep_identity() {
        let mut pts = scatter(64);
        let s = server(1 << 22);
        let kernel = KernelKind::Quartic.with_bandwidth(10.0);
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        assert_eq!(s.segment_count(layer).unwrap(), 1);
        for batch_no in 0..40 {
            let batch: Vec<Point> = (0..3)
                .map(|i| {
                    let f = (batch_no * 3 + i) as f64;
                    Point::new(
                        50.0 + (f * 0.413).sin() * 40.0,
                        50.0 + (f * 0.739).cos() * 40.0,
                    )
                })
                .collect();
            s.insert_points(layer, &batch).unwrap();
            pts.extend_from_slice(&batch);
            let n = pts.len() as f64;
            assert!(
                s.segment_count(layer).unwrap() <= n.log2() as usize + 2,
                "stack depth {} after batch {batch_no} exceeds log bound",
                s.segment_count(layer).unwrap()
            );
        }
        // Compaction has provably run (40 batches, depth stayed ≤ 9)
        // and the served bits still match the monolithic oracle.
        for (z, x, y) in [(0, 0, 0), (2, 1, 2), (4, 9, 7)] {
            let tile = s.get_tile(layer, z, x, y).unwrap();
            let direct =
                compute_tile_direct(&pts, &window(), kernel, 1e-9, 16, TileCoord::new(z, x, y));
            for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile ({z},{x},{y})");
            }
        }
    }

    #[test]
    fn eviction_pressure_never_breaks_identity() {
        let pts = scatter(120);
        let kernel = KernelKind::Epanechnikov.with_bandwidth(9.0);
        // Budget fits ~2 tiles: nearly every request recomputes.
        let s = server(2 * (16 * 16 * 8 + 128));
        let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
        for pass in 0..3 {
            for x in 0..4 {
                for y in 0..4 {
                    let tile = s.get_tile(layer, 2, x, y).unwrap();
                    let direct = compute_tile_direct(
                        &pts,
                        &window(),
                        kernel,
                        1e-9,
                        16,
                        TileCoord::new(2, x, y),
                    );
                    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "pass {pass} tile ({x},{y})");
                    }
                }
            }
        }
    }
}
