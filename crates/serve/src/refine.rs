//! The background refinement queue: degraded cache entries are
//! upgraded to exact, bit-identical tiles off the request path.
//!
//! The queue is a bounded FIFO of [`TileKey`]s with a pending map that
//! dedups re-enqueues in place: pushing a key that is already queued
//! just re-stamps its enqueue generation (the request path re-enqueues
//! on every degraded cache hit, so popular degraded tiles would
//! otherwise flood the queue). A push that would grow the queue past
//! its cap is refused — the caller charges `serve.refine_discards` —
//! so a storm of degraded serves can delay refinement but never grow
//! memory without bound.
//!
//! `drain` blocks until the queue is empty **and** every popped task
//! has finished processing; tests use it to make the asynchronous
//! upgrade deterministic, and it is the shutdown-safe way to observe
//! "all refinements settled".

use crate::tile::TileKey;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

struct State {
    queue: VecDeque<TileKey>,
    /// Latest enqueue generation per queued key; re-pushes overwrite.
    pending: HashMap<TileKey, u64>,
    /// Tasks popped but not yet reported done.
    active: usize,
    shutdown: bool,
}

pub(crate) struct RefineQueue {
    state: Mutex<State>,
    cv: Condvar,
    cap: usize,
}

impl RefineQueue {
    pub fn new(cap: usize) -> Self {
        RefineQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: HashMap::new(),
                active: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue `key` observed at `generation`. Returns `false` iff the
    /// push was refused because the queue is full (the key was not
    /// already pending). Re-pushing a pending key updates its
    /// generation in place and always succeeds.
    pub fn push(&self, key: TileKey, generation: u64) -> bool {
        let mut s = self.state.lock().expect("refine queue poisoned");
        if s.shutdown {
            return false;
        }
        if let Some(g) = s.pending.get_mut(&key) {
            *g = generation;
            return true;
        }
        if s.queue.len() >= self.cap {
            return false;
        }
        s.queue.push_back(key);
        s.pending.insert(key, generation);
        self.cv.notify_all();
        true
    }

    /// Worker side: block for the next task; `None` means shutdown.
    pub fn pop(&self) -> Option<(TileKey, u64)> {
        let mut s = self.state.lock().expect("refine queue poisoned");
        loop {
            if let Some(key) = s.queue.pop_front() {
                let generation = s
                    .pending
                    .remove(&key)
                    .expect("pending entry for queued key");
                s.active += 1;
                return Some((key, generation));
            }
            if s.shutdown {
                return None;
            }
            s = self.cv.wait(s).expect("refine queue poisoned");
        }
    }

    /// Worker side: the task returned by the matching `pop` has
    /// finished (committed or discarded).
    pub fn task_done(&self) {
        let mut s = self.state.lock().expect("refine queue poisoned");
        s.active -= 1;
        self.cv.notify_all();
    }

    /// Block until no task is queued or in flight.
    pub fn drain(&self) {
        let mut s = self.state.lock().expect("refine queue poisoned");
        while !(s.queue.is_empty() && s.active == 0) {
            s = self.cv.wait(s).expect("refine queue poisoned");
        }
    }

    /// Wake every worker with `None`; subsequent pushes are refused.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().expect("refine queue poisoned");
        s.shutdown = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileCoord;
    use std::sync::Arc;
    use std::thread;

    fn key(x: u32) -> TileKey {
        TileKey::new(0, TileCoord::new(3, x, 0))
    }

    #[test]
    fn repush_restamps_generation_without_duplicating() {
        let q = RefineQueue::new(4);
        assert!(q.push(key(1), 5));
        assert!(q.push(key(1), 9), "re-push of a pending key succeeds");
        let (k, g) = q.pop().unwrap();
        assert_eq!((k, g), (key(1), 9), "latest generation wins");
        q.task_done();
        q.shutdown();
        assert!(q.pop().is_none());
    }

    #[test]
    fn full_queue_refuses_new_keys_but_accepts_repush() {
        let q = RefineQueue::new(2);
        assert!(q.push(key(1), 0));
        assert!(q.push(key(2), 0));
        assert!(!q.push(key(3), 0), "cap exceeded");
        assert!(q.push(key(2), 1), "pending key still re-stamps");
    }

    #[test]
    fn drain_waits_for_active_tasks() {
        let q = Arc::new(RefineQueue::new(8));
        q.push(key(1), 0);
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let (k, _) = q.pop().unwrap();
                thread::sleep(std::time::Duration::from_millis(20));
                q.task_done();
                k
            })
        };
        q.drain();
        // drain returned: the task must have completed.
        assert_eq!(worker.join().unwrap(), key(1));
        q.shutdown();
    }
}
