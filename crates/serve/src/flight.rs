//! Single-flight request coalescing.
//!
//! When N requests miss the cache on the same key simultaneously, only
//! the first (the *leader*) computes; the rest block on the flight's
//! condvar and receive the leader's `Arc<Tile>`. The flight table maps
//! in-progress keys to flights; its mutex is only ever held for the
//! map operation itself — never while computing, waiting, or touching
//! any other lock — so it cannot participate in a deadlock cycle.
//!
//! Lifecycle: the leader computes, [`Flight::publish`]es the result
//! (waking all waiters), and then removes the key from the table.
//! A request that arrives between publish and removal still joins the
//! finished flight and returns immediately with the published tile;
//! one that arrives after removal starts a fresh flight, by which time
//! the tile is normally already in the cache.

use crate::tile::{Tile, TileKey};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-progress tile computation that any number of requests can
/// wait on.
pub(crate) struct Flight {
    result: Mutex<Option<Arc<Tile>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Leader side: deposit the computed tile and wake every waiter.
    pub fn publish(&self, tile: Arc<Tile>) {
        let mut slot = self.result.lock().expect("flight poisoned");
        *slot = Some(tile);
        self.cv.notify_all();
    }

    /// Waiter side: block until the leader publishes.
    pub fn wait(&self) -> Arc<Tile> {
        let mut slot = self.result.lock().expect("flight poisoned");
        loop {
            if let Some(tile) = slot.as_ref() {
                return Arc::clone(tile);
            }
            slot = self.cv.wait(slot).expect("flight poisoned");
        }
    }
}

/// Map of keys currently being computed.
pub(crate) struct FlightTable {
    flights: Mutex<HashMap<TileKey, Arc<Flight>>>,
}

impl FlightTable {
    pub fn new() -> Self {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`, creating it if absent. Returns the
    /// flight and whether this caller is the leader (and therefore
    /// responsible for computing, publishing, and completing).
    pub fn join(&self, key: TileKey) -> (Arc<Flight>, bool) {
        let mut map = self.flights.lock().expect("flight table poisoned");
        match map.entry(key) {
            MapEntry::Occupied(e) => (Arc::clone(e.get()), false),
            MapEntry::Vacant(v) => {
                let f = Arc::new(Flight::new());
                v.insert(Arc::clone(&f));
                (f, true)
            }
        }
    }

    /// Leader side: retire the flight after publishing.
    pub fn complete(&self, key: &TileKey) {
        self.flights
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{tile_spec, TileCoord};
    use lsga_core::{BBox, DensityGrid};
    use std::thread;

    fn key() -> TileKey {
        TileKey {
            layer: 0,
            coord: TileCoord::new(1, 0, 1),
        }
    }

    fn tile() -> Arc<Tile> {
        let w = BBox::new(0.0, 0.0, 10.0, 10.0);
        Arc::new(Tile {
            key: key(),
            grid: DensityGrid::zeros(tile_spec(&w, 4, key().coord)),
        })
    }

    #[test]
    fn first_join_leads_rest_follow() {
        let t = FlightTable::new();
        let (_f, leader) = t.join(key());
        assert!(leader);
        let (_f, follower) = t.join(key());
        assert!(!follower);
        t.complete(&key());
        let (_f, again) = t.join(key());
        assert!(again, "completed key starts a fresh flight");
    }

    #[test]
    fn waiters_receive_published_tile() {
        let table = Arc::new(FlightTable::new());
        let (flight, leader) = table.join(key());
        assert!(leader);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (f, lead) = table.join(key());
                assert!(!lead);
                thread::spawn(move || f.wait().key)
            })
            .collect();
        flight.publish(tile());
        table.complete(&key());
        for w in waiters {
            assert_eq!(w.join().expect("waiter panicked"), key());
        }
    }

    #[test]
    fn late_join_on_published_flight_returns_immediately() {
        let t = FlightTable::new();
        let (f, _) = t.join(key());
        f.publish(tile());
        // Key not yet completed: a late request joins as follower and
        // wait() must not block.
        let (f2, leader) = t.join(key());
        assert!(!leader);
        assert_eq!(f2.wait().key, key());
    }
}
