//! Single-flight request coalescing.
//!
//! When N requests miss the cache on the same key simultaneously, only
//! the first (the *leader*) computes; the rest block on the flight's
//! condvar and receive the leader's outcome. The flight table maps
//! in-progress keys to flights; its mutex is only ever held for the
//! map operation itself — never while computing, waiting, or touching
//! any other lock — so it cannot participate in a deadlock cycle.
//!
//! Lifecycle: the leader computes and deposits exactly one terminal
//! outcome — [`Flight::publish`] (the tile) or [`Flight::fail`] (an
//! error) — waking all waiters, and removes the key from the table.
//! Every leader exit path must reach one of the two: an unpublished
//! flight would park its waiters forever, so the server wraps the
//! leader section in a guard that fails the flight on error returns
//! *and* on unwind (see `TileServer::lead_flight`). A request that
//! arrives between the deposit and removal still joins the finished
//! flight and returns immediately with the published outcome; one that
//! arrives after removal starts a fresh flight, by which time a
//! successful tile is normally already in the cache.

use crate::tile::{Tile, TileKey};
use lsga_core::error::{LsgaError, Result};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-progress tile computation that any number of requests can
/// wait on.
pub(crate) struct Flight {
    result: Mutex<Option<Result<Arc<Tile>>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Deposit the terminal outcome and wake every waiter. The first
    /// deposit wins; later ones are ignored — so a panic guard that
    /// fires after an explicit `fail` cannot overwrite the real error.
    fn deposit(&self, outcome: Result<Arc<Tile>>) {
        let mut slot = self.result.lock().expect("flight poisoned");
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }

    /// Leader side: deposit the computed tile and wake every waiter.
    pub fn publish(&self, tile: Arc<Tile>) {
        self.deposit(Ok(tile));
    }

    /// Leader side: the computation failed (error return or panic);
    /// wake every waiter with the error instead of leaving them parked
    /// on the condvar forever.
    pub fn fail(&self, err: LsgaError) {
        self.deposit(Err(err));
    }

    /// Waiter side: block until the leader publishes or fails.
    pub fn wait(&self) -> Result<Arc<Tile>> {
        let mut slot = self.result.lock().expect("flight poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.cv.wait(slot).expect("flight poisoned");
        }
    }
}

/// Map of keys currently being computed.
pub(crate) struct FlightTable {
    flights: Mutex<HashMap<TileKey, Arc<Flight>>>,
}

impl FlightTable {
    pub fn new() -> Self {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`, creating it if absent. Returns the
    /// flight and whether this caller is the leader (and therefore
    /// responsible for computing, depositing an outcome, and
    /// completing).
    pub fn join(&self, key: TileKey) -> (Arc<Flight>, bool) {
        let mut map = self.flights.lock().expect("flight table poisoned");
        match map.entry(key) {
            MapEntry::Occupied(e) => (Arc::clone(e.get()), false),
            MapEntry::Vacant(v) => {
                let f = Arc::new(Flight::new());
                v.insert(Arc::clone(&f));
                (f, true)
            }
        }
    }

    /// Leader side: retire the flight. Callers must have deposited an
    /// outcome (or do so immediately after, for flights retired early
    /// so racing requests restart fresh).
    pub fn complete(&self, key: &TileKey) {
        self.flights
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{tile_spec, TileCoord};
    use lsga_core::{BBox, DensityGrid};
    use std::thread;

    fn key() -> TileKey {
        TileKey::new(0, TileCoord::new(1, 0, 1))
    }

    fn tile() -> Arc<Tile> {
        let w = BBox::new(0.0, 0.0, 10.0, 10.0);
        Arc::new(Tile {
            key: key(),
            grid: DensityGrid::zeros(tile_spec(&w, 4, key().coord)),
            tier: crate::policy::TileTier::Exact,
        })
    }

    #[test]
    fn first_join_leads_rest_follow() {
        let t = FlightTable::new();
        let (_f, leader) = t.join(key());
        assert!(leader);
        let (_f, follower) = t.join(key());
        assert!(!follower);
        t.complete(&key());
        let (_f, again) = t.join(key());
        assert!(again, "completed key starts a fresh flight");
    }

    #[test]
    fn waiters_receive_published_tile() {
        let table = Arc::new(FlightTable::new());
        let (flight, leader) = table.join(key());
        assert!(leader);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (f, lead) = table.join(key());
                assert!(!lead);
                thread::spawn(move || f.wait().expect("published tile").key)
            })
            .collect();
        flight.publish(tile());
        table.complete(&key());
        for w in waiters {
            assert_eq!(w.join().expect("waiter panicked"), key());
        }
    }

    #[test]
    fn failed_flight_wakes_waiters_with_the_error() {
        let table = Arc::new(FlightTable::new());
        let (flight, leader) = table.join(key());
        assert!(leader);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (f, lead) = table.join(key());
                assert!(!lead);
                thread::spawn(move || f.wait())
            })
            .collect();
        flight.fail(LsgaError::Panicked("test leader"));
        table.complete(&key());
        for w in waiters {
            let got = w.join().expect("waiter panicked");
            assert_eq!(got.unwrap_err(), LsgaError::Panicked("test leader"));
        }
    }

    #[test]
    fn first_deposit_wins() {
        let t = FlightTable::new();
        let (f, _) = t.join(key());
        f.fail(LsgaError::Panicked("real error"));
        f.publish(tile());
        assert_eq!(
            f.wait().unwrap_err(),
            LsgaError::Panicked("real error"),
            "a later deposit must not overwrite the first"
        );
    }

    #[test]
    fn late_join_on_published_flight_returns_immediately() {
        let t = FlightTable::new();
        let (f, _) = t.join(key());
        f.publish(tile());
        // Key not yet completed: a late request joins as follower and
        // wait() must not block.
        let (f2, leader) = t.join(key());
        assert!(!leader);
        assert_eq!(f2.wait().expect("published tile").key, key());
    }
}
