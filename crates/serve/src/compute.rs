//! The analytic behind a layer: the [`TileCompute`] trait and its four
//! implementations (KDV, STKDV, NKDV, Gi*/LISA hotspots).
//!
//! PRs 5–9 built the serving machinery — sharded cache, single-flight,
//! LSM ingest with support-inflated invalidation, quality tiers, HTTP,
//! cluster re-homing — for exactly one analytic. The paper's product
//! surface (Table 1) is a *suite*: animated STKDV heatmaps, network
//! NKDV, and Gi*/LISA hot-spot maps sit beside plain KDV. This module
//! generalizes the server over an object-safe trait so every one of
//! those analytics flows through the *unchanged* cache / flight /
//! invalidation / tier code paths.
//!
//! # The trait contract
//!
//! A [`TileCompute`] is an **immutable snapshot** of one layer's state.
//! Three obligations make the serving invariants carry over:
//!
//! 1. **Pure, bit-stable compute.** [`TileCompute::compute`] must be a
//!    pure function of `(layer state, spec, bin)` — same bits on every
//!    call, for every thread count. Each implementation below
//!    discharges this with a fixed fold order (see the per-kind notes).
//! 2. **Sound dirty regions.** [`TileCompute::apply_append`] returns a
//!    [`DirtyRegion`] that *over-approximates* every tile whose bits
//!    the batch can change. A cached tile outside the region is
//!    provably still exact, so the server's sweep-on-append coherence
//!    argument (see [`crate::server`]) holds verbatim per kind.
//! 3. **Append = successor snapshot.** Appends never mutate; they
//!    build a successor compute. The expensive part runs once in
//!    [`TileCompute::prepare_append`]; the cheap
//!    [`TileCompute::apply_append`] may be retried by the server's CAS
//!    loop against a newer snapshot, re-stamping the same prepared
//!    batch (the KDV segment accounting depends on this split).
//!
//! # Per-kind bit-identity
//!
//! * **KDV** ([`KdvCompute`]) — byte-for-byte the pre-trait path:
//!   `grid_pruned_kdv_segmented` over the same [`SegmentedGrid`] stack,
//!   same fixed window decomposition. Refactoring onto the trait moves
//!   fields, not floats; the pinned golden digests prove it.
//! * **STKDV** ([`StkdvCompute`]) — [`lsga_kdv::stkdv_sweep_threads`]
//!   over the layer's point sequence; the function is documented (and
//!   property-tested) bit-identical across thread counts, and the tile
//!   is one time slice of that cube. The tile key's `bin` selects the
//!   slice.
//! * **NKDV** ([`NkdvCompute`]) — [`lsga_kdv::nkdv_forward`] once per
//!   snapshot (events in insertion order), then a deterministic
//!   lixel-order rasterization ([`rasterize_lixel_values`]).
//! * **Hotspots** ([`HotspotCompute`]) — quadrat counts on a fixed
//!   cell grid, `distance_band` weights over the cell centres, then
//!   Gi* or LISA per cell (both thread-invariant); tiles resample the
//!   per-cell overlay ([`resample_overlay`]).
//!
//! The oracle helpers ([`rasterize_lixel_values`], [`hotspot_overlay`],
//! [`resample_overlay`], [`nkdv_snap_index`], [`snap_batch`]) are `pub`
//! on purpose: the coherence tests call the *same* functions the server
//! does, so "bit-identical to the direct compute" is checked against
//! shared code, not a reimplementation that could drift.

use lsga_core::error::{LsgaError, Result};
use lsga_core::par::Threads;
use lsga_core::{AnyKernel, BBox, DensityGrid, GridSpec, Kernel, Point, PolyKernel, TimedPoint};
use lsga_index::{GridIndex, SegmentedGrid};
use lsga_kdv::{
    grid_pruned_kdv_segmented, nkdv_forward, stkdv_sweep_threads, BoundsKdv, NetworkDensity,
};
use lsga_network::{EdgePosition, Lixels, RoadNetwork, SegmentIndex};
use lsga_obs::{self as obs, Counter};
use lsga_stats::{local_gi_star_threads, local_morans_i_threads, SpatialWeights};
use std::sync::{Arc, OnceLock};

use crate::segment::compact_tiers;

/// Stable discriminant of a layer's analytic. Part of the cache key
/// (via the layer id → kind binding), the HTTP URL path, and the
/// per-kind `serve.*{kind=…}` counter labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Planar kernel density (the original pyramid).
    Kdv,
    /// Spatiotemporal KDV; tile keys carry a time-bin dimension.
    Stkdv,
    /// Network-constrained KDV rasterized from lixels.
    Nkdv,
    /// Gi* / LISA hot-spot overlay over grid-aggregated counts.
    Hotspot,
}

impl LayerKind {
    /// Every kind, in registration/display order.
    pub const ALL: [LayerKind; 4] = [
        LayerKind::Kdv,
        LayerKind::Stkdv,
        LayerKind::Nkdv,
        LayerKind::Hotspot,
    ];

    /// Stable lowercase name — the HTTP path segment and the obs label.
    /// Deliberately non-numeric, so a URL that puts a number where the
    /// kind belongs can never parse as a kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::Kdv => "kdv",
            LayerKind::Stkdv => "stkdv",
            LayerKind::Nkdv => "nkdv",
            LayerKind::Hotspot => "hotspot",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<LayerKind> {
        LayerKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// `serve.tiles_computed{kind=…}` counter for this kind.
    #[must_use]
    pub fn computed_counter(self) -> Counter {
        match self {
            LayerKind::Kdv => Counter::ServeKdvTilesComputed,
            LayerKind::Stkdv => Counter::ServeStkdvTilesComputed,
            LayerKind::Nkdv => Counter::ServeNkdvTilesComputed,
            LayerKind::Hotspot => Counter::ServeHotspotTilesComputed,
        }
    }

    /// `serve.tiles_invalidated{kind=…}` counter for this kind.
    #[must_use]
    pub fn invalidated_counter(self) -> Counter {
        match self {
            LayerKind::Kdv => Counter::ServeKdvTilesInvalidated,
            LayerKind::Stkdv => Counter::ServeStkdvTilesInvalidated,
            LayerKind::Nkdv => Counter::ServeNkdvTilesInvalidated,
            LayerKind::Hotspot => Counter::ServeHotspotTilesInvalidated,
        }
    }
}

/// One append batch, as handed to the server's insert entry points.
/// Spatial-only layers take `Planar`; STKDV layers take `Timed`.
#[derive(Clone, Copy)]
pub enum AppendBatch<'a> {
    /// `(x, y)` points (KDV, NKDV — snapped to the network — and
    /// hotspot layers).
    Planar(&'a [Point]),
    /// `(x, y, t)` points (STKDV layers).
    Timed(&'a [TimedPoint]),
}

impl AppendBatch<'_> {
    /// Number of points in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AppendBatch::Planar(p) => p.len(),
            AppendBatch::Timed(p) => p.len(),
        }
    }

    /// True for a zero-point batch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The set of tile keys an append may have dirtied — always an
/// over-approximation, never an under-approximation (soundness is what
/// the coherence proptests check).
#[derive(Debug, Clone, Copy)]
pub enum DirtyRegion {
    /// Every tile of the layer (hotspot appends shift the global mean
    /// and variance, so no tile's bits are safe).
    All,
    /// Tiles whose bbox intersects this support-inflated box. For NKDV
    /// the box is inflated around the *snapped* event positions; the
    /// network distance dominates the Euclidean one, so the planar
    /// inflation covers every lixel within kernel reach.
    Planar(BBox),
    /// STKDV: tiles whose bbox intersects `bbox` **and** whose bin
    /// centre lies in `[t_lo, t_hi]` (batch time range inflated by the
    /// temporal bandwidth).
    SpaceTime { bbox: BBox, t_lo: f64, t_hi: f64 },
}

/// Batch state produced once per append by
/// [`TileCompute::prepare_append`] — the expensive, validated part
/// (segment index, snapped events). The server's CAS loop may apply it
/// several times, but never rebuilds it.
pub enum PreparedAppend {
    /// KDV: the batch's immutable index segment plus the raw points
    /// (for the dirty box).
    Kdv {
        /// The one and only index build for this batch.
        segment: Arc<GridIndex>,
        /// Batch points, for the support-inflated dirty box.
        points: Vec<Point>,
    },
    /// STKDV: the validated timed batch.
    Stkdv(Vec<TimedPoint>),
    /// NKDV: events snapped onto the network, plus their world
    /// coordinates (for the dirty box).
    Nkdv {
        /// Snapped on-network positions, in batch order.
        events: Vec<EdgePosition>,
        /// World coordinates of the snapped positions.
        world: Vec<Point>,
    },
    /// Hotspot: the validated planar batch.
    Hotspot(Vec<Point>),
}

/// Result of applying a prepared batch to a snapshot: the successor
/// compute, the dirty region, and the ingest accounting the server
/// publishes only for the committed attempt.
pub struct AppliedAppend {
    /// The successor snapshot state.
    pub next: Arc<dyn TileCompute>,
    /// Over-approximation of the dirtied tile keys.
    pub dirty: DirtyRegion,
    /// Segments consumed by tier compaction (KDV only; 0 otherwise).
    pub merged_segments: u64,
    /// Bytes rewritten by tier compaction (KDV only).
    pub merged_bytes: u64,
    /// Post-append segment-stack depth (KDV only).
    pub segment_depth: Option<u64>,
}

/// An immutable snapshot of one layer's analytic state. See the module
/// docs for the three obligations (pure compute, sound dirty regions,
/// append-as-successor) that let the serving machinery stay unchanged.
pub trait TileCompute: Send + Sync {
    /// The stable analytic discriminant.
    fn kind(&self) -> LayerKind;

    /// The fixed pyramid window (also the index frame appends reuse).
    fn window(&self) -> BBox;

    /// Number of time bins; spatial-only analytics have exactly 1.
    fn time_bins(&self) -> u32 {
        1
    }

    /// Centre time of `bin` (meaningful only when `time_bins() > 1`).
    fn bin_time(&self, _bin: u32) -> f64 {
        0.0
    }

    /// Rasterize the tile at `spec` for time bin `bin`. Must be a pure
    /// function of the snapshot — same bits for every call, cache
    /// state, and thread count.
    fn compute(&self, spec: GridSpec, bin: u32) -> DensityGrid;

    /// Validate and preprocess a batch once. Errors reject the whole
    /// append before any state changes.
    fn prepare_append(&self, batch: AppendBatch<'_>) -> Result<PreparedAppend>;

    /// Apply a prepared batch to *this* snapshot (which may be newer
    /// than the one that prepared it), producing the successor.
    fn apply_append(&self, prepared: &PreparedAppend, threads: Threads) -> AppliedAppend;

    /// Downcast for the KDV-only degraded/refine tiers. Non-KDV layers
    /// return `None` and deadline requests fall through to the exact
    /// path.
    fn as_kdv(&self) -> Option<&KdvCompute> {
        None
    }
}

fn validate_finite_in_window(points: &[Point], window: &BBox) -> Result<()> {
    for (i, p) in points.iter().enumerate() {
        if !(p.x.is_finite() && p.y.is_finite()) {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} is non-finite: ({}, {})", p.x, p.y),
            });
        }
        if !window.contains(p) {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} ({}, {}) lies outside the layer window", p.x, p.y),
            });
        }
    }
    Ok(())
}

fn expect_kind<T>(prepared: Option<T>, kind: LayerKind) -> T {
    prepared.unwrap_or_else(|| {
        panic!(
            "prepared batch of the wrong kind applied to a {} layer",
            kind.name()
        )
    })
}

// ---------------------------------------------------------------------
// KDV
// ---------------------------------------------------------------------

/// The original planar-KDV layer state, moved field-for-field out of
/// the pre-trait `LayerSnapshot`. Compute, ingest, and the degraded
/// tiers all run the exact code they ran before the trait existed.
pub struct KdvCompute {
    pub(crate) window: BBox,
    pub(crate) kernel: AnyKernel,
    pub(crate) tail_eps: f64,
    /// Kernel effective radius at `tail_eps` — the invalidation
    /// inflation margin and the index cell size.
    pub(crate) radius: f64,
    pub(crate) segments: SegmentedGrid,
    /// Lazily built Eq. 6 kd-tree for `ApproxMode::Bounds` degraded
    /// serves; per-snapshot, so an append naturally invalidates it.
    pub(crate) bounds: OnceLock<Arc<BoundsKdv>>,
}

impl KdvCompute {
    /// Generation-zero state: the registration points become the
    /// stack's base segment.
    pub fn new(points: &[Point], window: BBox, kernel: AnyKernel, tail_eps: f64) -> Result<Self> {
        if window.is_empty() {
            return Err(LsgaError::InvalidParameter {
                name: "window",
                message: "layer window must be non-empty".into(),
            });
        }
        if !(tail_eps.is_finite() && tail_eps > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "tail_eps",
                message: format!("tail_eps must be finite and positive, got {tail_eps}"),
            });
        }
        validate_finite_in_window(points, &window)?;
        let radius = kernel.effective_radius(tail_eps);
        let index = GridIndex::with_bbox(points, radius.max(1e-12), window);
        Ok(KdvCompute {
            window,
            kernel,
            tail_eps,
            radius,
            segments: SegmentedGrid::single(index),
            bounds: OnceLock::new(),
        })
    }

    /// The Eq. 6 index over this snapshot's logical point sequence.
    pub(crate) fn bounds_index(&self) -> &Arc<BoundsKdv> {
        self.bounds
            .get_or_init(|| Arc::new(BoundsKdv::new(&self.segments.collect_points())))
    }

    /// The layer's segment stack (for degraded computes and depth
    /// reporting).
    pub(crate) fn segments(&self) -> &SegmentedGrid {
        &self.segments
    }
}

impl TileCompute for KdvCompute {
    fn kind(&self) -> LayerKind {
        LayerKind::Kdv
    }

    fn window(&self) -> BBox {
        self.window
    }

    fn compute(&self, spec: GridSpec, _bin: u32) -> DensityGrid {
        grid_pruned_kdv_segmented(&self.segments, spec, self.kernel, self.tail_eps)
    }

    fn prepare_append(&self, batch: AppendBatch<'_>) -> Result<PreparedAppend> {
        let AppendBatch::Planar(points) = batch else {
            return Err(LsgaError::InvalidParameter {
                name: "batch",
                message: "kdv layers take planar points, not timed points".into(),
            });
        };
        validate_finite_in_window(points, &self.window)?;
        // The one and only index build for this batch. Window, kernel,
        // and tail_eps are fixed at registration, so the segment's
        // geometry is valid for every future generation too.
        let segment = Arc::new(GridIndex::with_bbox(
            points,
            self.radius.max(1e-12),
            self.window,
        ));
        obs::incr(Counter::IngestSegmentsCreated);
        Ok(PreparedAppend::Kdv {
            segment,
            points: points.to_vec(),
        })
    }

    fn apply_append(&self, prepared: &PreparedAppend, threads: Threads) -> AppliedAppend {
        let (segment, points) = expect_kind(
            match prepared {
                PreparedAppend::Kdv { segment, points } => Some((segment, points)),
                _ => None,
            },
            self.kind(),
        );
        let mut segs: Vec<Arc<GridIndex>> = self.segments.segments().to_vec();
        segs.push(Arc::clone(segment));
        let stats = compact_tiers(&mut segs, threads);
        let segments = SegmentedGrid::from_segments(segs);
        let depth = segments.depth() as u64;
        AppliedAppend {
            next: Arc::new(KdvCompute {
                window: self.window,
                kernel: self.kernel,
                tail_eps: self.tail_eps,
                radius: self.radius,
                segments,
                bounds: OnceLock::new(),
            }),
            dirty: DirtyRegion::Planar(BBox::of_points(points).inflate(self.radius)),
            merged_segments: stats.merged_segments as u64,
            merged_bytes: stats.merged_bytes() as u64,
            segment_depth: Some(depth),
        }
    }

    fn as_kdv(&self) -> Option<&KdvCompute> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// STKDV
// ---------------------------------------------------------------------

/// Spatiotemporal KDV layer: a fixed `[t_min, t_max]` range split into
/// `nt` bins; each tile key's `bin` selects one slice of the
/// [`lsga_kdv::stkdv_sweep_threads`] cube evaluated at the tile's spec.
pub struct StkdvCompute {
    window: BBox,
    spatial: AnyKernel,
    temporal: PolyKernel,
    tail_eps: f64,
    /// Spatial kernel support — the planar half of the dirty region.
    radius: f64,
    t_min: f64,
    t_max: f64,
    nt: usize,
    /// The layer's point sequence, registration order then append
    /// order — the fold order `stkdv_sweep_threads` consumes.
    points: Vec<TimedPoint>,
}

impl StkdvCompute {
    /// Register an STKDV layer over a fixed window and time range.
    #[allow(clippy::too_many_arguments)] // mirrors the analytic's parameters
    pub fn new(
        points: &[TimedPoint],
        window: BBox,
        spatial: AnyKernel,
        temporal: PolyKernel,
        t_min: f64,
        t_max: f64,
        nt: usize,
        tail_eps: f64,
    ) -> Result<Self> {
        if window.is_empty() {
            return Err(LsgaError::InvalidParameter {
                name: "window",
                message: "layer window must be non-empty".into(),
            });
        }
        if !(tail_eps.is_finite() && tail_eps > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "tail_eps",
                message: format!("tail_eps must be finite and positive, got {tail_eps}"),
            });
        }
        if !(t_min.is_finite() && t_max.is_finite() && t_max >= t_min) {
            return Err(LsgaError::InvalidParameter {
                name: "t_range",
                message: format!("invalid time range [{t_min}, {t_max}]"),
            });
        }
        if nt == 0 || nt > u32::MAX as usize {
            return Err(LsgaError::InvalidParameter {
                name: "nt",
                message: format!("need 1..=u32::MAX time bins, got {nt}"),
            });
        }
        let me = StkdvCompute {
            window,
            spatial,
            temporal,
            tail_eps,
            radius: spatial.effective_radius(tail_eps),
            t_min,
            t_max,
            nt,
            points: Vec::new(),
        };
        me.validate_timed(points)?;
        Ok(StkdvCompute {
            points: points.to_vec(),
            ..me
        })
    }

    fn validate_timed(&self, points: &[TimedPoint]) -> Result<()> {
        for (i, p) in points.iter().enumerate() {
            if !(p.point.x.is_finite() && p.point.y.is_finite() && p.t.is_finite()) {
                return Err(LsgaError::InvalidParameter {
                    name: "points",
                    message: format!("timed point {i} is non-finite"),
                });
            }
            if !self.window.contains(&p.point) {
                return Err(LsgaError::InvalidParameter {
                    name: "points",
                    message: format!("timed point {i} lies outside the layer window"),
                });
            }
            if p.t < self.t_min || p.t > self.t_max {
                return Err(LsgaError::InvalidParameter {
                    name: "points",
                    message: format!(
                        "timed point {i} at t={} outside the layer range [{}, {}]",
                        p.t, self.t_min, self.t_max
                    ),
                });
            }
        }
        Ok(())
    }
}

impl TileCompute for StkdvCompute {
    fn kind(&self) -> LayerKind {
        LayerKind::Stkdv
    }

    fn window(&self) -> BBox {
        self.window
    }

    fn time_bins(&self) -> u32 {
        self.nt as u32
    }

    fn bin_time(&self, bin: u32) -> f64 {
        // Same arithmetic as `SpaceTimeGrid::zeros`, so the dirty-range
        // check sees exactly the slice centres the cube evaluates at.
        let dt = (self.t_max - self.t_min) / self.nt as f64;
        self.t_min + (f64::from(bin) + 0.5) * dt
    }

    fn compute(&self, spec: GridSpec, bin: u32) -> DensityGrid {
        // The full sweep is thread-invariant (row slabs written back in
        // row order), so the oracle may call it with any `Threads`;
        // inside a tile compute we stay single-threaded because the
        // batch path already parallelizes across tiles.
        let cube = stkdv_sweep_threads(
            &self.points,
            spec,
            self.t_min,
            self.t_max,
            self.nt,
            self.spatial,
            self.temporal,
            self.tail_eps,
            Threads::exact(1),
        );
        cube.slice(bin as usize)
    }

    fn prepare_append(&self, batch: AppendBatch<'_>) -> Result<PreparedAppend> {
        let AppendBatch::Timed(points) = batch else {
            return Err(LsgaError::InvalidParameter {
                name: "batch",
                message: "stkdv layers take timed points; use insert_timed_points".into(),
            });
        };
        self.validate_timed(points)?;
        Ok(PreparedAppend::Stkdv(points.to_vec()))
    }

    fn apply_append(&self, prepared: &PreparedAppend, _threads: Threads) -> AppliedAppend {
        let batch = expect_kind(
            match prepared {
                PreparedAppend::Stkdv(points) => Some(points),
                _ => None,
            },
            self.kind(),
        );
        let mut points = self.points.clone();
        points.extend_from_slice(batch);
        let spatial: Vec<Point> = batch.iter().map(|p| p.point).collect();
        let (mut t_lo, mut t_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in batch {
            t_lo = t_lo.min(p.t);
            t_hi = t_hi.max(p.t);
        }
        let bt = self.temporal.bandwidth();
        AppliedAppend {
            next: Arc::new(StkdvCompute {
                window: self.window,
                spatial: self.spatial,
                temporal: self.temporal,
                tail_eps: self.tail_eps,
                radius: self.radius,
                t_min: self.t_min,
                t_max: self.t_max,
                nt: self.nt,
                points,
            }),
            dirty: DirtyRegion::SpaceTime {
                bbox: BBox::of_points(&spatial).inflate(self.radius),
                t_lo: t_lo - bt,
                t_hi: t_hi + bt,
            },
            merged_segments: 0,
            merged_bytes: 0,
            segment_depth: None,
        }
    }
}

// ---------------------------------------------------------------------
// NKDV
// ---------------------------------------------------------------------

/// The snap index every NKDV layer (and its test oracle) uses: cell
/// size tied to the lixel resolution so server and oracle snap
/// identically.
#[must_use]
pub fn nkdv_snap_index(net: &RoadNetwork, lixels: &Lixels) -> SegmentIndex {
    SegmentIndex::build(net, lixels.target_len().max(1e-9) * 4.0)
}

/// Snap a planar batch onto the network, in batch order. Errors on
/// non-finite points; a network with edges always snaps.
pub fn snap_batch(
    net: &RoadNetwork,
    index: &SegmentIndex,
    points: &[Point],
) -> Result<Vec<EdgePosition>> {
    let mut events = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if !(p.x.is_finite() && p.y.is_finite()) {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} is non-finite: ({}, {})", p.x, p.y),
            });
        }
        let (pos, _) = index.snap(net, p).ok_or(LsgaError::InvalidParameter {
            name: "points",
            message: format!("point {i} cannot snap onto an edge-less network"),
        })?;
        events.push(pos);
    }
    Ok(events)
}

/// Rasterize per-lixel values onto a tile spec: each lixel's midpoint
/// deposits its value into the pixel containing it, folding in lixel
/// index order — a pure function of `(network, lixels, values, spec)`,
/// hence bit-stable. Midpoints outside the spec's bbox contribute
/// nothing.
#[must_use]
pub fn rasterize_lixel_values(
    net: &RoadNetwork,
    lixels: &Lixels,
    values: &[f64],
    spec: GridSpec,
) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    for (lx, &v) in lixels.all().iter().zip(values) {
        let mid = net.point_on_edge(lx.edge, lx.center_offset());
        if spec.bbox.contains(&mid) {
            let (ix, iy) = spec.pixel_of(&mid);
            grid.add(ix, iy, v);
        }
    }
    grid
}

/// Network-KDV layer: a fixed road network and lixelization, an event
/// sequence in insertion order, and a per-snapshot
/// [`lsga_kdv::nkdv_forward`] density rasterized per tile.
pub struct NkdvCompute {
    net: Arc<RoadNetwork>,
    lixels: Arc<Lixels>,
    snap: Arc<SegmentIndex>,
    kernel: AnyKernel,
    /// Kernel support at [`lsga_kdv::DEFAULT_TAIL_EPS`] (what
    /// `nkdv_forward` truncates at) — the dirty-box inflation margin.
    /// Network distance ≥ Euclidean distance, so the planar inflation
    /// over-approximates the set of affected lixels.
    radius: f64,
    window: BBox,
    events: Vec<EdgePosition>,
    /// Per-lixel density, computed once per snapshot on first use.
    density: OnceLock<Arc<NetworkDensity>>,
}

impl NkdvCompute {
    /// Register an NKDV layer. The pyramid window is the network bbox
    /// inflated by the kernel support, so every lixel midpoint —
    /// boundary edges included — rasterizes strictly inside it.
    pub fn new(
        net: Arc<RoadNetwork>,
        lixels: Arc<Lixels>,
        events: &[EdgePosition],
        kernel: AnyKernel,
    ) -> Result<Self> {
        if lixels.is_empty() {
            return Err(LsgaError::InvalidParameter {
                name: "lixels",
                message: "nkdv layer needs a non-empty lixelization".into(),
            });
        }
        let radius = kernel.effective_radius(lsga_kdv::DEFAULT_TAIL_EPS);
        if !(radius.is_finite() && radius > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "bandwidth",
                message: format!("kernel support must be finite and positive, got {radius}"),
            });
        }
        let window = net.bbox().inflate(radius.max(1e-9));
        if window.is_empty() || window.width() <= 0.0 || window.height() <= 0.0 {
            return Err(LsgaError::InvalidParameter {
                name: "network",
                message: "network bbox is degenerate; cannot frame a tile pyramid".into(),
            });
        }
        for (i, ev) in events.iter().enumerate() {
            if ev.edge.0 as usize >= net.edge_count() || !ev.offset.is_finite() {
                return Err(LsgaError::InvalidParameter {
                    name: "events",
                    message: format!("event {i} references an invalid edge position"),
                });
            }
        }
        let snap = Arc::new(nkdv_snap_index(&net, &lixels));
        Ok(NkdvCompute {
            net,
            lixels,
            snap,
            kernel,
            radius,
            window,
            events: events.to_vec(),
            density: OnceLock::new(),
        })
    }

    fn density(&self) -> &Arc<NetworkDensity> {
        self.density.get_or_init(|| {
            Arc::new(
                nkdv_forward(&self.net, &self.lixels, &self.events, self.kernel)
                    .expect("nkdv inputs validated at registration"),
            )
        })
    }
}

impl TileCompute for NkdvCompute {
    fn kind(&self) -> LayerKind {
        LayerKind::Nkdv
    }

    fn window(&self) -> BBox {
        self.window
    }

    fn compute(&self, spec: GridSpec, _bin: u32) -> DensityGrid {
        rasterize_lixel_values(&self.net, &self.lixels, self.density().values(), spec)
    }

    fn prepare_append(&self, batch: AppendBatch<'_>) -> Result<PreparedAppend> {
        let AppendBatch::Planar(points) = batch else {
            return Err(LsgaError::InvalidParameter {
                name: "batch",
                message: "nkdv layers take planar points (snapped to the network)".into(),
            });
        };
        let events = snap_batch(&self.net, &self.snap, points)?;
        let world = events.iter().map(|ev| ev.point(&self.net)).collect();
        Ok(PreparedAppend::Nkdv { events, world })
    }

    fn apply_append(&self, prepared: &PreparedAppend, _threads: Threads) -> AppliedAppend {
        let (batch, world) = expect_kind(
            match prepared {
                PreparedAppend::Nkdv { events, world } => Some((events, world)),
                _ => None,
            },
            self.kind(),
        );
        let mut events = self.events.clone();
        events.extend_from_slice(batch);
        AppliedAppend {
            next: Arc::new(NkdvCompute {
                net: Arc::clone(&self.net),
                lixels: Arc::clone(&self.lixels),
                snap: Arc::clone(&self.snap),
                kernel: self.kernel,
                radius: self.radius,
                window: self.window,
                events,
                density: OnceLock::new(),
            }),
            dirty: DirtyRegion::Planar(BBox::of_points(world).inflate(self.radius)),
            merged_segments: 0,
            merged_bytes: 0,
            segment_depth: None,
        }
    }
}

// ---------------------------------------------------------------------
// Gi* / LISA hotspots
// ---------------------------------------------------------------------

/// Which local statistic a hotspot layer overlays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotspotStat {
    /// Getis-Ord Gi* z-scores (analytic inference).
    GiStar,
    /// Local Moran's I with a seeded conditional permutation test.
    Lisa {
        /// Permutation replicates (0 skips inference).
        permutations: usize,
        /// Base seed of the replicate RNG streams.
        seed: u64,
    },
}

/// The distance-band weight matrix over the quadrat-cell centres —
/// shared between [`hotspot_overlay`] and the eager registration check
/// in [`HotspotCompute::new`], so "degenerate at serve time" and
/// "degenerate at registration" are decided by the same bits.
fn hotspot_cell_weights(window: BBox, cells: usize, band: f64) -> (GridSpec, SpatialWeights) {
    let spec = GridSpec::new(window, cells, cells);
    let centres: Vec<Point> = (0..cells * cells)
        .map(|i| spec.pixel_center(i % cells, i / cells))
        .collect();
    (spec, SpatialWeights::distance_band(&centres, band))
}

fn reject_degenerate_band(w: &SpatialWeights, band: f64) -> Result<()> {
    let s0 = w.s0();
    if !(s0.is_finite() && s0 > 0.0) {
        return Err(LsgaError::InvalidParameter {
            name: "band",
            message: format!("distance band {band} connects no pair of quadrat cells (S0 = {s0})"),
        });
    }
    Ok(())
}

/// The per-cell hotspot overlay the server resamples tiles from:
/// quadrat counts on a `cells × cells` grid over `window`, binary
/// distance-band weights (radius `band`) over the cell centres, then
/// the chosen local statistic per cell. Both statistics are
/// thread-invariant, and the quadrat fold is in point order — so the
/// overlay is a pure function of `(points, window, cells, band, stat)`.
pub fn hotspot_overlay(
    points: &[Point],
    window: BBox,
    cells: usize,
    band: f64,
    stat: HotspotStat,
) -> Result<DensityGrid> {
    if cells < 2 {
        return Err(LsgaError::InvalidParameter {
            name: "cells",
            message: format!("need at least a 2×2 quadrat grid, got {cells}"),
        });
    }
    let (spec, w) = hotspot_cell_weights(window, cells, band);
    reject_degenerate_band(&w, band)?;
    let mut counts = DensityGrid::zeros(spec);
    for p in points {
        let (ix, iy) = spec.pixel_of(p);
        counts.add(ix, iy, 1.0);
    }
    let values: Vec<f64> = match stat {
        HotspotStat::GiStar => local_gi_star_threads(counts.values(), &w, Threads::exact(1))
            .into_iter()
            .map(|r| r.value)
            .collect(),
        HotspotStat::Lisa { permutations, seed } => {
            local_morans_i_threads(counts.values(), &w, permutations, seed, Threads::exact(1))?
                .into_iter()
                .map(|r| r.value)
                .collect()
        }
    };
    Ok(DensityGrid::from_values(spec, values))
}

/// Resample a per-cell overlay at a tile spec: every tile pixel takes
/// the value of the overlay cell containing its centre.
#[must_use]
pub fn resample_overlay(overlay: &DensityGrid, spec: GridSpec) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    for iy in 0..spec.ny {
        for ix in 0..spec.nx {
            let q = spec.pixel_center(ix, iy);
            let (cx, cy) = overlay.spec().pixel_of(&q);
            grid.set(ix, iy, overlay.at(cx, cy));
        }
    }
    grid
}

/// Hot-spot overlay layer: Gi* or LISA per quadrat cell, resampled to
/// tiles. Appends dirty **every** tile — the statistics normalize by
/// the global mean and variance, so one new point can move every
/// cell's z-score.
pub struct HotspotCompute {
    window: BBox,
    cells: usize,
    band: f64,
    stat: HotspotStat,
    points: Vec<Point>,
    /// Per-snapshot overlay, computed once on first use.
    overlay: OnceLock<Arc<DensityGrid>>,
}

impl HotspotCompute {
    /// Register a hotspot layer over a fixed window.
    pub fn new(
        points: &[Point],
        window: BBox,
        cells: usize,
        band: f64,
        stat: HotspotStat,
    ) -> Result<Self> {
        if window.is_empty() {
            return Err(LsgaError::InvalidParameter {
                name: "window",
                message: "layer window must be non-empty".into(),
            });
        }
        if cells < 2 {
            return Err(LsgaError::InvalidParameter {
                name: "cells",
                message: format!("need at least a 2×2 quadrat grid, got {cells}"),
            });
        }
        if !(band.is_finite() && band > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "band",
                message: format!("distance band must be finite and positive, got {band}"),
            });
        }
        if let HotspotStat::Lisa { permutations, .. } = stat {
            if permutations > 100_000 {
                return Err(LsgaError::InvalidParameter {
                    name: "permutations",
                    message: format!("{permutations} permutation replicates is unreasonable"),
                });
            }
        }
        validate_finite_in_window(points, &window)?;
        // Eager: the overlay is computed lazily with an `expect`, so
        // every input it can reject must be rejected here. Points are
        // validated above; the weight matrix depends only on the
        // registration-fixed (window, cells, band).
        let (_, w) = hotspot_cell_weights(window, cells, band);
        reject_degenerate_band(&w, band)?;
        Ok(HotspotCompute {
            window,
            cells,
            band,
            stat,
            points: points.to_vec(),
            overlay: OnceLock::new(),
        })
    }

    fn overlay(&self) -> &Arc<DensityGrid> {
        self.overlay.get_or_init(|| {
            Arc::new(
                hotspot_overlay(&self.points, self.window, self.cells, self.band, self.stat)
                    .expect("hotspot inputs validated at registration"),
            )
        })
    }
}

impl TileCompute for HotspotCompute {
    fn kind(&self) -> LayerKind {
        LayerKind::Hotspot
    }

    fn window(&self) -> BBox {
        self.window
    }

    fn compute(&self, spec: GridSpec, _bin: u32) -> DensityGrid {
        resample_overlay(self.overlay(), spec)
    }

    fn prepare_append(&self, batch: AppendBatch<'_>) -> Result<PreparedAppend> {
        let AppendBatch::Planar(points) = batch else {
            return Err(LsgaError::InvalidParameter {
                name: "batch",
                message: "hotspot layers take planar points, not timed points".into(),
            });
        };
        validate_finite_in_window(points, &self.window)?;
        Ok(PreparedAppend::Hotspot(points.to_vec()))
    }

    fn apply_append(&self, prepared: &PreparedAppend, _threads: Threads) -> AppliedAppend {
        let batch = expect_kind(
            match prepared {
                PreparedAppend::Hotspot(points) => Some(points),
                _ => None,
            },
            self.kind(),
        );
        let mut points = self.points.clone();
        points.extend_from_slice(batch);
        AppliedAppend {
            next: Arc::new(HotspotCompute {
                window: self.window,
                cells: self.cells,
                band: self.band,
                stat: self.stat,
                points,
                overlay: OnceLock::new(),
            }),
            dirty: DirtyRegion::All,
            merged_segments: 0,
            merged_bytes: 0,
            segment_depth: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_reject_numbers() {
        for k in LayerKind::ALL {
            assert_eq!(LayerKind::parse(k.name()), Some(k));
        }
        for bad in ["0", "3", "KDV", "kdv2", "", "tiles"] {
            assert_eq!(LayerKind::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn stkdv_bin_times_match_the_cube() {
        let window = BBox::new(0.0, 0.0, 10.0, 10.0);
        let c = StkdvCompute::new(
            &[],
            window,
            lsga_core::KernelKind::Quartic.with_bandwidth(2.0),
            PolyKernel::new(lsga_core::KernelKind::Epanechnikov, 1.5).unwrap(),
            -3.0,
            9.0,
            5,
            1e-9,
        )
        .unwrap();
        let cube = lsga_core::SpaceTimeGrid::zeros(GridSpec::new(window, 2, 2), -3.0, 9.0, 5);
        for bin in 0..5u32 {
            assert_eq!(
                c.bin_time(bin).to_bits(),
                cube.time(bin as usize).to_bits(),
                "bin {bin}"
            );
        }
    }

    #[test]
    fn hotspot_overlay_rejects_degenerate_parameters() {
        let w = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(hotspot_overlay(&[], w, 1, 2.0, HotspotStat::GiStar).is_err());
        assert!(HotspotCompute::new(&[], w, 4, f64::NAN, HotspotStat::GiStar).is_err());
        assert!(HotspotCompute::new(&[], w, 4, -1.0, HotspotStat::GiStar).is_err());
        assert!(HotspotCompute::new(&[], BBox::empty(), 4, 1.0, HotspotStat::GiStar).is_err());
        // Band narrower than the cell pitch: the weight matrix is all
        // zeros, and both entry points must refuse it up front.
        assert!(hotspot_overlay(&[], w, 4, 0.1, HotspotStat::GiStar).is_err());
        assert!(HotspotCompute::new(&[], w, 4, 0.1, HotspotStat::GiStar).is_err());
    }
}
