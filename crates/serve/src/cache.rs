//! Sharded, byte-budgeted LRU tile cache.
//!
//! The key space is split across a fixed power-of-two number of shards
//! by an FNV-1a hash of the [`TileKey`]; each shard is an independent
//! `Mutex`-guarded LRU so concurrent requests for different tiles only
//! contend when they hash to the same shard. Inside a shard the entries
//! live in a slab (`Vec<Option<Entry>>` plus a free list) threaded with
//! an intrusive doubly-linked recency list — no per-operation
//! allocation once the slab has grown, and every operation is O(1)
//! except predicate invalidation, which scans the shard's live entries.
//!
//! The eviction budget is bytes, not entry counts: tiles at different
//! `tile_px` have very different footprints, and the total budget is
//! divided evenly across shards (a deliberately simple static split —
//! a hot shard cannot steal headroom from a cold one, which bounds
//! worst-case memory exactly at `budget` regardless of skew). Inserting
//! a tile larger than its shard's slice simply evicts everything else
//! and then the tile itself is dropped; the cache never over-commits.

use crate::tile::{Tile, TileCoord, TileKey};
use lsga_obs::{self as obs, Counter};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

struct Entry {
    key: TileKey,
    tile: Arc<Tile>,
    bytes: usize,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<TileKey, usize>,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Most-recently-used entry, or NIL when empty.
    head: usize,
    /// Least-recently-used entry, or NIL when empty.
    tail: usize,
    bytes: usize,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slab[idx].as_ref().expect("unlink of free slot");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p].as_mut().expect("broken lru link").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].as_mut().expect("broken lru link").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.slab[idx].as_mut().expect("push of free slot");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head].as_mut().expect("broken lru link").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Remove `idx` from the list, map and slab; returns its key.
    fn remove(&mut self, idx: usize) -> TileKey {
        self.unlink(idx);
        let e = self.slab[idx].take().expect("remove of free slot");
        self.map.remove(&e.key);
        self.bytes -= e.bytes;
        self.free.push(idx);
        e.key
    }

    /// Evict from the LRU tail until the shard fits its budget.
    fn evict_to_budget(&mut self) -> u64 {
        let mut evicted = 0;
        while self.bytes > self.budget && self.tail != NIL {
            self.remove(self.tail);
            evicted += 1;
        }
        evicted
    }
}

/// The sharded cache. All methods take `&self`; interior mutability is
/// one `Mutex` per shard and no operation ever holds two shard locks,
/// so the cache cannot deadlock against itself.
pub struct ShardedTileCache {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
}

/// FNV-1a over the key's fields; cheap, deterministic across runs, and
/// good enough dispersion for shard selection.
fn shard_hash(key: &TileKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(key.layer as u64);
    eat(u64::from(key.coord.z));
    eat(u64::from(key.coord.x));
    eat(u64::from(key.coord.y));
    eat(u64::from(key.bin));
    h
}

impl ShardedTileCache {
    /// Create a cache with `shards` shards (rounded up to a power of
    /// two, min 1) splitting `byte_budget` evenly.
    #[must_use]
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = byte_budget / n;
        ShardedTileCache {
            shards: (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &TileKey) -> &Mutex<Shard> {
        &self.shards[(shard_hash(key) as usize) & self.mask]
    }

    /// Look up `key`, promoting a hit to most-recently-used. Returns
    /// whatever tier is resident — callers that demand exact bits use
    /// [`get_exact`](Self::get_exact).
    pub fn get(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        let idx = *s.map.get(key)?;
        s.unlink(idx);
        s.push_front(idx);
        Some(Arc::clone(
            &s.slab[idx].as_ref().expect("mapped free slot").tile,
        ))
    }

    /// Look up `key` but treat a degraded-tier entry as a miss (left
    /// in place, not promoted): an exact request must never receive
    /// approximate bits, however fresh.
    pub fn get_exact(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        let idx = *s.map.get(key)?;
        if !s.slab[idx]
            .as_ref()
            .expect("mapped free slot")
            .tile
            .tier
            .is_exact()
        {
            return None;
        }
        s.unlink(idx);
        s.push_front(idx);
        Some(Arc::clone(
            &s.slab[idx].as_ref().expect("mapped free slot").tile,
        ))
    }

    /// Look up `key` without touching recency — for background workers
    /// and tests that must not perturb eviction order.
    pub fn peek(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let s = self.shard(key).lock().expect("cache shard poisoned");
        let idx = *s.map.get(key)?;
        Some(Arc::clone(
            &s.slab[idx].as_ref().expect("mapped free slot").tile,
        ))
    }

    /// Insert (or replace) `key`, then evict LRU entries until the
    /// shard fits its budget again. Evictions bump
    /// `serve.tiles_evicted`.
    pub fn insert(&self, key: TileKey, tile: Arc<Tile>) {
        self.insert_inner(key, tile, false);
    }

    /// Insert a **degraded** tile — refused (returning `false`) when an
    /// exact tile is already resident, so approximate bits can never
    /// shadow exact ones. A resident degraded entry is replaced (the
    /// newcomer was computed at a generation no older than it).
    pub fn insert_degraded(&self, key: TileKey, tile: Arc<Tile>) -> bool {
        debug_assert!(!tile.tier.is_exact(), "use insert for exact tiles");
        self.insert_inner(key, tile, true)
    }

    fn insert_inner(&self, key: TileKey, tile: Arc<Tile>, keep_exact: bool) -> bool {
        let bytes = tile.bytes();
        let mut s = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(&idx) = s.map.get(&key) {
            if keep_exact
                && s.slab[idx]
                    .as_ref()
                    .expect("mapped free slot")
                    .tile
                    .tier
                    .is_exact()
            {
                return false;
            }
            s.remove(idx);
        }
        let idx = match s.free.pop() {
            Some(i) => {
                s.slab[i] = Some(Entry {
                    key,
                    tile,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
            None => {
                s.slab.push(Some(Entry {
                    key,
                    tile,
                    bytes,
                    prev: NIL,
                    next: NIL,
                }));
                s.slab.len() - 1
            }
        };
        s.map.insert(key, idx);
        s.bytes += bytes;
        s.push_front(idx);
        let evicted = s.evict_to_budget();
        if evicted > 0 {
            obs::add(Counter::ServeTilesEvicted, evicted);
        }
        true
    }

    /// Drop every cached tile of `layer` whose `(coordinate, bin)`
    /// satisfies `dirty`; returns how many were dropped. The caller
    /// charges the count to the appropriate counter (invalidation vs
    /// clear).
    pub fn invalidate<F>(&self, layer: usize, dirty: F) -> u64
    where
        F: Fn(TileCoord, u32) -> bool,
    {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let victims: Vec<usize> = s
                .map
                .iter()
                .filter(|(k, _)| k.layer == layer && dirty(k.coord, k.bin))
                .map(|(_, &idx)| idx)
                .collect();
            for idx in victims {
                s.remove(idx);
                dropped += 1;
            }
        }
        dropped
    }

    /// Drop everything; returns how many tiles were held.
    pub fn clear(&self) -> u64 {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            while s.tail != NIL {
                let tail = s.tail;
                s.remove(tail);
                dropped += 1;
            }
        }
        dropped
    }

    /// Total resident bytes across shards (racy snapshot; for tests
    /// and reporting).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Total cached tiles across shards (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no tile is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::tile_spec;
    use lsga_core::{BBox, DensityGrid};

    fn key(layer: usize, z: u8, x: u32, y: u32) -> TileKey {
        TileKey::new(layer, TileCoord::new(z, x, y))
    }

    fn tile(k: TileKey, px: usize) -> Arc<Tile> {
        tiered(k, px, crate::policy::TileTier::Exact)
    }

    fn tiered(k: TileKey, px: usize, tier: crate::policy::TileTier) -> Arc<Tile> {
        let w = BBox::new(0.0, 0.0, 100.0, 100.0);
        Arc::new(Tile {
            key: k,
            grid: DensityGrid::zeros(tile_spec(&w, px, k.coord)),
            tier,
        })
    }

    #[test]
    fn get_returns_inserted_tile() {
        let c = ShardedTileCache::new(4, 1 << 20);
        let k = key(0, 2, 1, 3);
        assert!(c.get(&k).is_none());
        c.insert(k, tile(k, 8));
        let got = c.get(&k).expect("hit");
        assert_eq!(got.key, k);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_coldest_first() {
        // One shard so recency order is global; budget fits 2 tiles.
        let per_tile = tile(key(0, 0, 0, 0), 8).bytes();
        let c = ShardedTileCache::new(1, 2 * per_tile);
        let (a, b, d) = (key(0, 3, 0, 0), key(0, 3, 1, 0), key(0, 3, 2, 0));
        c.insert(a, tile(a, 8));
        c.insert(b, tile(b, 8));
        let _ = c.get(&a); // a is now MRU, b is LRU
        c.insert(d, tile(d, 8));
        assert!(c.get(&a).is_some(), "recently used survives");
        assert!(c.get(&b).is_none(), "LRU evicted");
        assert!(c.get(&d).is_some());
    }

    #[test]
    fn oversized_tile_never_resides() {
        let c = ShardedTileCache::new(1, 64); // smaller than any tile
        let k = key(0, 1, 0, 1);
        c.insert(k, tile(k, 8));
        assert!(c.get(&k).is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn invalidate_is_layer_scoped_and_predicate_driven() {
        let c = ShardedTileCache::new(4, 1 << 20);
        for layer in 0..2 {
            for x in 0..4 {
                let k = key(layer, 2, x, 0);
                c.insert(k, tile(k, 4));
            }
        }
        let dropped = c.invalidate(0, |coord, _bin| coord.x < 2);
        assert_eq!(dropped, 2);
        assert!(c.get(&key(0, 2, 0, 0)).is_none());
        assert!(c.get(&key(0, 2, 3, 0)).is_some());
        assert!(c.get(&key(1, 2, 1, 0)).is_some(), "other layer untouched");
    }

    #[test]
    fn time_bins_are_distinct_entries() {
        let c = ShardedTileCache::new(4, 1 << 20);
        let spatial = key(0, 1, 0, 0); // bin 0: the spatial-only key
        let binned = TileKey::binned(0, TileCoord::new(1, 0, 0), 3);
        c.insert(spatial, tile(spatial, 4));
        c.insert(binned, tile(binned, 4));
        assert_eq!(c.len(), 2, "bins must not collide");
        assert_eq!(c.get(&spatial).unwrap().key, spatial);
        assert_eq!(c.get(&binned).unwrap().key, binned);
        // Bin-aware invalidation drops only the matching bin.
        assert_eq!(c.invalidate(0, |_, bin| bin == 3), 1);
        assert!(c.get(&spatial).is_some());
        assert!(c.get(&binned).is_none());
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = ShardedTileCache::new(8, 1 << 20);
        for x in 0..16 {
            let k = key(0, 4, x, x);
            c.insert(k, tile(k, 4));
        }
        assert_eq!(c.clear(), 16);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn tier_rules_guard_exact_entries() {
        use crate::policy::TileTier;
        let degraded = TileTier::Bounds { eps: 0.1 };
        let c = ShardedTileCache::new(1, 1 << 20);
        let k = key(0, 2, 2, 2);
        // Degraded fills an empty slot and is visible to get/peek but
        // not to get_exact.
        assert!(c.insert_degraded(k, tiered(k, 8, degraded)));
        assert!(c.get(&k).is_some());
        assert!(c.peek(&k).is_some());
        assert!(c.get_exact(&k).is_none(), "exact lookup must miss");
        // A fresher degraded tile replaces a degraded one...
        assert!(c.insert_degraded(k, tiered(k, 8, degraded)));
        assert_eq!(c.len(), 1);
        // ...an exact insert upgrades it...
        c.insert(k, tile(k, 8));
        assert!(c.get_exact(&k).unwrap().tier.is_exact());
        // ...and once exact, degraded inserts are refused.
        assert!(!c.insert_degraded(k, tiered(k, 8, degraded)));
        assert!(c.peek(&k).unwrap().tier.is_exact());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let c = ShardedTileCache::new(1, 1 << 20);
        let k = key(0, 2, 1, 1);
        c.insert(k, tile(k, 8));
        let once = c.bytes();
        c.insert(k, tile(k, 8));
        assert_eq!(c.bytes(), once, "replacement must not double-count");
        assert_eq!(c.len(), 1);
    }
}
