//! Size-tiered compaction for a layer's segment stack.
//!
//! Every `insert_points` batch becomes one immutable [`GridIndex`]
//! segment pushed on the layer's stack. Left alone, a sustained ingest
//! of small batches would grow an unbounded stack and every read would
//! pay a per-segment fold overhead per candidate cell. Compaction keeps
//! the stack logarithmic: after each push, the newest run absorbs every
//! older neighbour that is no longer at least [`TIER_GROWTH`]× larger
//! than everything newer than it, and the absorbed suffix is rewritten
//! as one CSR merge ([`GridIndex::merged_threads`] — a pure
//! integer/memcpy pass that never recomputes a float, so compaction
//! cannot move a served bit).
//!
//! # Tier policy and amortized cost
//!
//! Scanning from the top of the stack with `total` = points newer than
//! the candidate, a segment of length `L` is absorbed iff
//! `L <= TIER_GROWTH · total`. The surviving stack therefore always
//! satisfies `len(seg[i]) > TIER_GROWTH · Σ len(seg[i+1..])`, which
//! bounds the depth by `log_{1+TIER_GROWTH}(n) + O(1)` — with
//! `TIER_GROWTH = 2`, under 12 segments at a hundred million points.
//! Whenever a run is rewritten, the merge that produced it grew it by
//! at least a `(1 + 1/TIER_GROWTH)` factor over its largest input, so
//! each point is copied O(log n) times over its lifetime: amortized
//! O(log n) per appended point, versus the O(n) full rebuild the
//! monolithic snapshot paid on *every* batch.

use lsga_core::par::Threads;
use lsga_index::GridIndex;
use lsga_obs as obs;
use std::sync::Arc;

/// A resident segment must be more than `TIER_GROWTH`× the total size
/// of everything newer, or it is absorbed by the next compaction. A
/// const rather than a config knob: the geometric invariant is what the
/// depth bound and the amortized-cost argument are proved against.
pub(crate) const TIER_GROWTH: usize = 2;

/// Bytes rewritten per merged point: the `Point` itself (16 B) plus the
/// CSR entry it becomes — two coordinate columns (16 B) and a `u32`
/// id (4 B).
const MERGE_BYTES_PER_POINT: usize = 36;

/// What one [`compact_tiers`] call rewrote (all zeros when the tier
/// invariant already held and no merge ran).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct MergeStats {
    /// Segments absorbed into the merged run (0 or ≥ 2).
    pub merged_segments: usize,
    /// Points living in those segments.
    pub merged_points: usize,
}

impl MergeStats {
    /// Bytes the merge rewrote, for the `ingest.merge_bytes` counter.
    pub fn merged_bytes(&self) -> usize {
        self.merged_points * MERGE_BYTES_PER_POINT
    }
}

/// Restore the tier invariant after a push: find the longest suffix
/// whose older members each fail the `TIER_GROWTH`× rule against the
/// accumulated newer total, and replace it with its CSR merge. At most
/// one merge per call — the merged run is at least `1 + 1/TIER_GROWTH`
/// times its largest input, so the invariant holds below it too.
///
/// Pure stack transformation: the concatenated point sequence (and so
/// every served bit) is unchanged. Runs on the caller's `par` pool.
pub(crate) fn compact_tiers(segments: &mut Vec<Arc<GridIndex>>, threads: Threads) -> MergeStats {
    let k = segments.len();
    if k < 2 {
        return MergeStats::default();
    }
    let mut j = k - 1;
    let mut total = segments[j].len();
    while j > 0 && segments[j - 1].len() <= TIER_GROWTH * total {
        total += segments[j - 1].len();
        j -= 1;
    }
    if j == k - 1 {
        return MergeStats::default();
    }
    let _span = obs::span("ingest.compact");
    let refs: Vec<&GridIndex> = segments[j..].iter().map(|s| s.as_ref()).collect();
    let merged = GridIndex::merged_threads(&refs, threads);
    let stats = MergeStats {
        merged_segments: k - j,
        merged_points: total,
    };
    segments.truncate(j);
    segments.push(Arc::new(merged));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Point};

    fn bbox() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn seg(n: usize, salt: u64) -> Arc<GridIndex> {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let f = i as f64 + salt as f64 * 0.77;
                Point::new(
                    50.0 + (f * 0.831).sin() * 45.0,
                    50.0 + (f * 0.557).cos() * 45.0,
                )
            })
            .collect();
        Arc::new(GridIndex::with_bbox(&pts, 8.0, bbox()))
    }

    fn lens(segments: &[Arc<GridIndex>]) -> Vec<usize> {
        segments.iter().map(|s| s.len()).collect()
    }

    #[test]
    fn no_merge_when_tier_invariant_holds() {
        let mut stack = vec![seg(64, 0), seg(20, 1), seg(6, 2)];
        let stats = compact_tiers(&mut stack, Threads::exact(1));
        assert_eq!(stats.merged_segments, 0);
        assert_eq!(lens(&stack), vec![64, 20, 6]);
    }

    #[test]
    fn small_suffix_is_absorbed_in_one_merge() {
        // 6 <= 2·5 and 20 <= 2·(6+5): both absorbed; 64 > 2·31 survives.
        let mut stack = vec![seg(64, 0), seg(20, 1), seg(6, 2), seg(5, 3)];
        let stats = compact_tiers(&mut stack, Threads::exact(2));
        assert_eq!(stats.merged_segments, 3);
        assert_eq!(stats.merged_points, 31);
        assert_eq!(stats.merged_bytes(), 31 * 36);
        assert_eq!(lens(&stack), vec![64, 31]);
    }

    #[test]
    fn equal_sizes_collapse_fully() {
        let mut stack = vec![seg(8, 0), seg(8, 1)];
        let stats = compact_tiers(&mut stack, Threads::exact(1));
        assert_eq!(stats.merged_segments, 2);
        assert_eq!(lens(&stack), vec![16]);
    }

    #[test]
    fn merge_preserves_concatenated_point_order() {
        let mut stack = vec![seg(16, 4), seg(9, 5), seg(7, 6)];
        let mut want: Vec<Point> = Vec::new();
        for s in &stack {
            want.extend_from_slice(s.points());
        }
        compact_tiers(&mut stack, Threads::exact(2));
        let mut got: Vec<Point> = Vec::new();
        for s in &stack {
            got.extend_from_slice(s.points());
        }
        assert_eq!(got.len(), want.len());
        for (p, q) in got.iter().zip(&want) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
    }

    #[test]
    fn sustained_unit_batches_stay_logarithmic() {
        let mut stack: Vec<Arc<GridIndex>> = Vec::new();
        for i in 0..256 {
            stack.push(seg(1, 100 + i));
            compact_tiers(&mut stack, Threads::exact(1));
            let n: usize = stack.iter().map(|s| s.len()).sum();
            assert!(
                stack.len() <= (n as f64).log2() as usize + 2,
                "depth {} too deep for {} points",
                stack.len(),
                n
            );
        }
        // Tier invariant: every segment outweighs everything newer 2×.
        for j in 1..stack.len() {
            let newer: usize = stack[j..].iter().map(|s| s.len()).sum();
            assert!(stack[j - 1].len() > TIER_GROWTH * newer);
        }
    }
}
