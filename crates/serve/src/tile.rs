//! Tile pyramid geometry.
//!
//! A layer's fixed window is subdivided per zoom level `z` into
//! `2^z × 2^z` tiles, each rasterized at `tile_px × tile_px` pixels, so
//! every zoom level covers the whole window at a resolution that doubles
//! per level — the standard slippy-map pyramid, minus the Mercator
//! projection (lsga works in planar coordinates throughout).
//!
//! The geometry here is the single source of truth for both the server
//! and the test oracles: a tile's [`GridSpec`] is a pure function of
//! `(window, tile_px, coord)`, so "the same region computed directly"
//! means calling the same KDV path on the spec returned by
//! [`tile_spec`]. Pixel centres then agree bit-for-bit by construction.

use crate::policy::TileTier;
use lsga_core::{BBox, DensityGrid, GridSpec};

/// Index of a layer registered with a
/// [`TileServer`](crate::TileServer), assigned by `add_layer` in
/// registration order.
pub type LayerId = usize;

/// Position of a tile in the pyramid: zoom level and column/row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Zoom level; the window splits into `2^z × 2^z` tiles.
    pub z: u8,
    /// Tile column, `0 ≤ x < 2^z`, west to east.
    pub x: u32,
    /// Tile row, `0 ≤ y < 2^z`, south to north (min-y origin, matching
    /// the row order of [`GridSpec`]).
    pub y: u32,
}

impl TileCoord {
    /// Construct a coordinate. Validity against a zoom bound is checked
    /// at request time by the server, not here.
    #[must_use]
    pub fn new(z: u8, x: u32, y: u32) -> Self {
        TileCoord { z, x, y }
    }

    /// Tiles per axis at this zoom level.
    #[must_use]
    pub fn tiles_per_axis(self) -> u32 {
        1u32 << self.z
    }
}

/// Cache key: a tile coordinate qualified by its layer and, for
/// time-binned analytics (STKDV), its time bin. Spatial-only layers
/// always use `bin == 0`, so a binned key can never collide with a
/// spatial key of another layer kind: the layer id pins the kind, and
/// within an STKDV layer the bin is part of equality and the hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileKey {
    pub layer: LayerId,
    pub coord: TileCoord,
    /// Time-bin index; 0 for every spatial-only analytic.
    pub bin: u32,
}

impl TileKey {
    /// Key of a spatial-only tile (`bin == 0`).
    #[must_use]
    pub fn new(layer: LayerId, coord: TileCoord) -> Self {
        TileKey {
            layer,
            coord,
            bin: 0,
        }
    }

    /// Key of a time-binned tile.
    #[must_use]
    pub fn binned(layer: LayerId, coord: TileCoord, bin: u32) -> Self {
        TileKey { layer, coord, bin }
    }
}

/// Bounding box of `coord` inside `window`.
///
/// Edges are computed as `min + extent · i / n` (not by accumulating
/// widths), so adjacent tiles share bit-identical boundary ordinates and
/// the level-0 tile reproduces `window` exactly.
#[must_use]
pub fn tile_bbox(window: &BBox, coord: TileCoord) -> BBox {
    let n = f64::from(coord.tiles_per_axis());
    let w = window.width();
    let h = window.height();
    let x = f64::from(coord.x);
    let y = f64::from(coord.y);
    BBox::new(
        window.min_x + w * x / n,
        window.min_y + h * y / n,
        window.min_x + w * (x + 1.0) / n,
        window.min_y + h * (y + 1.0) / n,
    )
}

/// Raster spec of `coord` inside `window` at `tile_px²` pixels.
#[must_use]
pub fn tile_spec(window: &BBox, tile_px: usize, coord: TileCoord) -> GridSpec {
    GridSpec::new(tile_bbox(window, coord), tile_px, tile_px)
}

/// A computed raster tile, the unit the cache stores and the server
/// hands out (behind an `Arc` — tiles are immutable once computed).
#[derive(Debug)]
pub struct Tile {
    pub key: TileKey,
    pub grid: DensityGrid,
    /// Which quality tier produced `grid` — `Exact` for bit-identical
    /// tiles, or a degraded tier carrying its ε guarantee (see
    /// [`TileTier`]). Stamped at compute time, immutable afterwards: a
    /// refinement replaces the whole tile, it never mutates one.
    pub tier: TileTier,
}

impl Tile {
    /// Resident size charged against the cache byte budget: the pixel
    /// payload plus the fixed per-tile bookkeeping.
    #[must_use]
    pub fn bytes(&self) -> usize {
        std::mem::size_of_val(self.grid.values()) + std::mem::size_of::<Tile>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> BBox {
        BBox::new(-10.0, 20.0, 70.0, 100.0)
    }

    #[test]
    fn level_zero_tile_is_the_window() {
        let b = tile_bbox(&window(), TileCoord::new(0, 0, 0));
        let w = window();
        assert_eq!(b.min_x.to_bits(), w.min_x.to_bits());
        assert_eq!(b.min_y.to_bits(), w.min_y.to_bits());
        assert_eq!(b.max_x.to_bits(), w.max_x.to_bits());
        assert_eq!(b.max_y.to_bits(), w.max_y.to_bits());
    }

    #[test]
    fn adjacent_tiles_share_exact_edges() {
        for z in [1u8, 3, 6] {
            let n = 1u32 << z;
            for x in 0..n - 1 {
                let a = tile_bbox(&window(), TileCoord::new(z, x, 0));
                let b = tile_bbox(&window(), TileCoord::new(z, x + 1, 0));
                assert_eq!(a.max_x.to_bits(), b.min_x.to_bits());
            }
            let lo = tile_bbox(&window(), TileCoord::new(z, 0, 0));
            let hi = tile_bbox(&window(), TileCoord::new(z, n - 1, n - 1));
            assert_eq!(lo.min_x.to_bits(), window().min_x.to_bits());
            assert_eq!(hi.max_y.to_bits(), window().max_y.to_bits());
        }
    }

    #[test]
    fn spec_has_requested_resolution() {
        let s = tile_spec(&window(), 64, TileCoord::new(2, 1, 3));
        assert_eq!((s.nx, s.ny), (64, 64));
        assert_eq!(s.len(), 64 * 64);
    }

    #[test]
    fn tile_bytes_covers_payload() {
        let spec = tile_spec(&window(), 8, TileCoord::new(0, 0, 0));
        let t = Tile {
            key: TileKey::new(0, TileCoord::new(0, 0, 0)),
            grid: DensityGrid::zeros(spec),
            tier: TileTier::Exact,
        };
        assert!(t.bytes() >= 8 * 8 * 8);
    }
}
