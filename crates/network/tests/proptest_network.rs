//! Property tests: shortest-path metric laws and snapping optimality on
//! randomized networks.

use lsga_core::{BBox, Point};
use lsga_network::position::{network_distance, project_to_edge};
use lsga_network::{
    random_geometric_network, sample_on_network, DijkstraEngine, EdgeId, SegmentIndex, VertexId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    #[allow(clippy::needless_range_loop)] // distance-matrix indexing
    fn dijkstra_metric_laws(seed in 0u64..500, n in 10usize..40) {
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let net = random_geometric_network(n, 3, bbox, seed);
        let mut eng = DijkstraEngine::new(&net);
        // All-pairs via per-source runs on a few sources.
        let sources = [0usize, n / 2, n - 1];
        let mut dist = vec![vec![f64::INFINITY; n]; 3];
        for (row, &s) in sources.iter().enumerate() {
            eng.run_from(VertexId(s as u32));
            for v in 0..n {
                if let Some(d) = eng.dist(VertexId(v as u32)) {
                    dist[row][v] = d;
                }
            }
        }
        // Connected by construction: every distance finite.
        for row in &dist {
            for d in row {
                prop_assert!(d.is_finite());
            }
        }
        // d(s, s) = 0 and symmetry between the chosen sources.
        for (row, &s) in sources.iter().enumerate() {
            prop_assert_eq!(dist[row][s], 0.0);
        }
        prop_assert!((dist[0][sources[1]] - dist[1][sources[0]]).abs() < 1e-9);
        // Triangle inequality through the second source.
        for v in 0..n {
            prop_assert!(dist[0][v] <= dist[0][sources[1]] + dist[1][v] + 1e-9);
        }
    }

    #[test]
    fn position_distance_symmetric_and_nonnegative(seed in 0u64..200) {
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let net = random_geometric_network(25, 3, bbox, seed);
        let pos = sample_on_network(&net, 6, seed ^ 0xabc);
        let mut eng = DijkstraEngine::new(&net);
        for a in &pos {
            for b in &pos {
                let ab = network_distance(&net, &mut eng, a, b, f64::INFINITY).unwrap();
                let ba = network_distance(&net, &mut eng, b, a, f64::INFINITY).unwrap();
                prop_assert!(ab >= 0.0);
                prop_assert!((ab - ba).abs() < 1e-9);
            }
        }
        // Identity: distance to self is zero.
        let d = network_distance(&net, &mut eng, &pos[0], &pos[0], f64::INFINITY).unwrap();
        prop_assert!(d.abs() < 1e-12);
    }

    #[test]
    fn snap_is_globally_optimal(
        seed in 0u64..200,
        qx in -20.0f64..120.0,
        qy in -20.0f64..120.0,
    ) {
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let net = random_geometric_network(20, 3, bbox, seed);
        let idx = SegmentIndex::build(&net, 10.0);
        let q = Point::new(qx, qy);
        let (_, d) = idx.snap(&net, &q).unwrap();
        let brute = (0..net.edge_count() as u32)
            .map(|e| project_to_edge(&net, EdgeId(e), &q).1)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() < 1e-9, "{} vs {}", d, brute);
    }
}
