//! Locations *on* the network: [`EdgePosition`], point→network snapping
//! via [`SegmentIndex`], and position-to-position network distances.

use crate::dijkstra::DijkstraEngine;
use crate::graph::{EdgeId, RoadNetwork};
use lsga_core::Point;

/// A position on an edge: `offset ∈ [0, edge.length]` measured from the
/// edge's `u` endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgePosition {
    pub edge: EdgeId,
    pub offset: f64,
}

impl EdgePosition {
    /// Construct, clamping the offset into `[0, length]`.
    pub fn new(net: &RoadNetwork, edge: EdgeId, offset: f64) -> Self {
        let len = net.edge(edge).length;
        EdgePosition {
            edge,
            offset: offset.clamp(0.0, len),
        }
    }

    /// World coordinates of this position.
    pub fn point(&self, net: &RoadNetwork) -> Point {
        net.point_on_edge(self.edge, self.offset)
    }

    /// Distance along the edge to its `u` endpoint.
    #[inline]
    pub fn to_u(&self) -> f64 {
        self.offset
    }

    /// Distance along the edge to its `v` endpoint.
    #[inline]
    pub fn to_v(&self, net: &RoadNetwork) -> f64 {
        net.edge(self.edge).length - self.offset
    }
}

/// Shortest network distance between two edge positions, bounded by
/// `max_dist` (returns `None` when farther).
///
/// Runs one bounded Dijkstra seeded from `a`'s endpoints; the distance to
/// `b` combines the endpoint distances with `b`'s offsets. When both
/// positions share an edge, the direct along-edge path is also considered
/// (it can lose to a detour through the endpoints only in multigraph-like
/// shortcut cases, which the `min` handles naturally).
pub fn network_distance(
    net: &RoadNetwork,
    engine: &mut DijkstraEngine<'_>,
    a: &EdgePosition,
    b: &EdgePosition,
    max_dist: f64,
) -> Option<f64> {
    let ea = net.edge(a.edge);
    engine.run(&[(ea.u, a.to_u()), (ea.v, a.to_v(net))], max_dist);
    let eb = net.edge(b.edge);
    let mut best = f64::INFINITY;
    if let Some(du) = engine.dist(eb.u) {
        best = best.min(du + b.to_u());
    }
    if let Some(dv) = engine.dist(eb.v) {
        best = best.min(dv + b.to_v(net));
    }
    if a.edge == b.edge {
        best = best.min((a.offset - b.offset).abs());
    }
    if best <= max_dist {
        Some(best)
    } else {
        None
    }
}

/// A bucket grid over edge segments for snapping points onto the network.
///
/// Edges are assumed straight (segment between endpoint coordinates); an
/// edge is registered in every cell its bounding box overlaps, and a snap
/// expands square rings of cells until the best projection can no longer
/// be beaten.
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
}

impl SegmentIndex {
    /// Build over all edges of `net` with the given cell size.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let bbox = net.bbox();
        let nx = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let ny = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        for (eid, e) in net.edges().iter().enumerate() {
            let a = net.vertex(e.u);
            let b = net.vertex(e.v);
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            let cx0 = (((x0 - bbox.min_x) / cell_size) as usize).min(nx - 1);
            let cx1 = (((x1 - bbox.min_x) / cell_size) as usize).min(nx - 1);
            let cy0 = (((y0 - bbox.min_y) / cell_size) as usize).min(ny - 1);
            let cy1 = (((y1 - bbox.min_y) / cell_size) as usize).min(ny - 1);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    cells[cy * nx + cx].push(eid as u32);
                }
            }
        }
        SegmentIndex {
            cell: cell_size,
            min_x: bbox.min_x,
            min_y: bbox.min_y,
            nx,
            ny,
            cells,
        }
    }

    /// Snap `p` to the nearest edge, returning the position and the
    /// Euclidean snap distance. Returns `None` only for edge-less
    /// networks.
    pub fn snap(&self, net: &RoadNetwork, p: &Point) -> Option<(EdgePosition, f64)> {
        if net.edge_count() == 0 {
            return None;
        }
        let cx = (((p.x - self.min_x) / self.cell).max(0.0) as usize).min(self.nx - 1);
        let cy = (((p.y - self.min_y) / self.cell).max(0.0) as usize).min(self.ny - 1);
        let mut best: Option<(EdgePosition, f64)> = None;
        let max_ring = self.nx.max(self.ny);
        for ring in 0..=max_ring {
            // Any candidate in ring k is at Euclidean distance
            // ≥ (k−1)·cell; once the current best beats that, stop.
            if let Some((_, d)) = best {
                if ring >= 1 && (ring as f64 - 1.0) * self.cell > d {
                    break;
                }
            }
            let mut any_cell = false;
            self.for_ring_cells(cx, cy, ring, |cell_idx| {
                any_cell = true;
                for &eid in &self.cells[cell_idx] {
                    let (pos, d) = project_to_edge(net, EdgeId(eid), p);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((pos, d));
                    }
                }
            });
            if !any_cell && best.is_some() {
                break;
            }
        }
        best
    }

    fn for_ring_cells(&self, cx: usize, cy: usize, ring: usize, mut f: impl FnMut(usize)) {
        let r = ring as isize;
        let (cx, cy) = (cx as isize, cy as isize);
        let visit = |x: isize, y: isize, f: &mut dyn FnMut(usize)| {
            if x >= 0 && y >= 0 && (x as usize) < self.nx && (y as usize) < self.ny {
                f(y as usize * self.nx + x as usize);
            }
        };
        if ring == 0 {
            visit(cx, cy, &mut f);
            return;
        }
        for x in (cx - r)..=(cx + r) {
            visit(x, cy - r, &mut f);
            visit(x, cy + r, &mut f);
        }
        for y in (cy - r + 1)..(cy + r) {
            visit(cx - r, y, &mut f);
            visit(cx + r, y, &mut f);
        }
    }
}

/// Orthogonal projection of `p` onto the straight segment of `edge`,
/// returning the on-edge position (offset scaled to the edge's traversal
/// length, which may differ from the geometric length) and the Euclidean
/// distance from `p` to the projected point.
pub fn project_to_edge(net: &RoadNetwork, edge: EdgeId, p: &Point) -> (EdgePosition, f64) {
    let e = net.edge(edge);
    let a = net.vertex(e.u);
    let b = net.vertex(e.v);
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    let t = if len2 > 0.0 {
        (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let proj = Point::new(a.x + t * abx, a.y + t * aby);
    (
        EdgePosition {
            edge,
            offset: t * e.length,
        },
        p.dist(&proj),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use crate::graph::VertexId;

    /// Two parallel horizontal roads at y = 0 and y = 2, connected only at
    /// x = 0 — the paper's Fig. 3 scenario where Euclidean neighbours are
    /// network-distant.
    fn parallel_roads() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a0 = b.add_vertex(Point::new(0.0, 0.0));
        let a1 = b.add_vertex(Point::new(10.0, 0.0));
        let c0 = b.add_vertex(Point::new(0.0, 2.0));
        let c1 = b.add_vertex(Point::new(10.0, 2.0));
        b.add_edge(a0, a1, None).unwrap(); // edge 0, bottom
        b.add_edge(c0, c1, None).unwrap(); // edge 1, top
        b.add_edge(a0, c0, None).unwrap(); // edge 2, connector at x = 0
        b.build().unwrap()
    }

    #[test]
    fn same_edge_distance_is_offset_difference() {
        let net = parallel_roads();
        let mut eng = DijkstraEngine::new(&net);
        let a = EdgePosition::new(&net, EdgeId(0), 2.0);
        let b = EdgePosition::new(&net, EdgeId(0), 7.5);
        assert_eq!(network_distance(&net, &mut eng, &a, &b, 100.0), Some(5.5));
    }

    #[test]
    fn cross_edge_distance_goes_through_connector() {
        let net = parallel_roads();
        let mut eng = DijkstraEngine::new(&net);
        // Bottom road at x = 9 and top road at x = 9: Euclidean distance
        // 2, but the network path goes 9 (to x=0) + 2 (connector) + 9.
        let a = EdgePosition::new(&net, EdgeId(0), 9.0);
        let b = EdgePosition::new(&net, EdgeId(1), 9.0);
        let d = network_distance(&net, &mut eng, &a, &b, 100.0).unwrap();
        assert!((d - 20.0).abs() < 1e-9, "got {d}");
        // Euclidean would be 2.0 — the Fig. 3 overestimation gap.
        let pa = a.point(&net);
        let pb = b.point(&net);
        assert!((pa.dist(&pb) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distance_bound_respected() {
        let net = parallel_roads();
        let mut eng = DijkstraEngine::new(&net);
        let a = EdgePosition::new(&net, EdgeId(0), 9.0);
        let b = EdgePosition::new(&net, EdgeId(1), 9.0);
        assert_eq!(network_distance(&net, &mut eng, &a, &b, 5.0), None);
        assert_eq!(network_distance(&net, &mut eng, &a, &b, 20.0), Some(20.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let net = parallel_roads();
        let mut eng = DijkstraEngine::new(&net);
        let a = EdgePosition::new(&net, EdgeId(0), 3.0);
        let b = EdgePosition::new(&net, EdgeId(2), 1.0);
        let ab = network_distance(&net, &mut eng, &a, &b, 100.0).unwrap();
        let ba = network_distance(&net, &mut eng, &b, &a, 100.0).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn snapping_picks_nearest_edge() {
        let net = parallel_roads();
        let idx = SegmentIndex::build(&net, 1.0);
        // Just above the bottom road.
        let (pos, d) = idx.snap(&net, &Point::new(4.0, 0.3)).unwrap();
        assert_eq!(pos.edge, EdgeId(0));
        assert!((pos.offset - 4.0).abs() < 1e-9);
        assert!((d - 0.3).abs() < 1e-9);
        // Closer to the top road.
        let (pos, _) = idx.snap(&net, &Point::new(6.0, 1.9)).unwrap();
        assert_eq!(pos.edge, EdgeId(1));
    }

    #[test]
    fn snapping_clamps_to_endpoints() {
        let net = parallel_roads();
        let idx = SegmentIndex::build(&net, 1.0);
        let (pos, d) = idx.snap(&net, &Point::new(-3.0, 0.0)).unwrap();
        // Nearest on-network point is a road end at x = 0.
        assert!((d - 3.0).abs() < 1e-9);
        assert!(pos.offset.abs() < 1e-9 || (pos.offset - net.edge(pos.edge).length).abs() < 1e-9);
    }

    #[test]
    fn snap_far_point_still_finds_network() {
        let net = parallel_roads();
        let idx = SegmentIndex::build(&net, 0.5);
        let (_, d) = idx.snap(&net, &Point::new(100.0, 100.0)).unwrap();
        assert!(d > 0.0 && d.is_finite());
    }

    #[test]
    fn snap_matches_brute_force() {
        let net = parallel_roads();
        let idx = SegmentIndex::build(&net, 0.8);
        for p in [
            Point::new(5.1, 0.9),
            Point::new(0.2, 1.0),
            Point::new(9.7, 2.4),
            Point::new(-1.0, -1.0),
        ] {
            let (_, d) = idx.snap(&net, &p).unwrap();
            let brute = (0..net.edge_count() as u32)
                .map(|e| project_to_edge(&net, EdgeId(e), &p).1)
                .fold(f64::INFINITY, f64::min);
            assert!((d - brute).abs() < 1e-9, "p={p:?}: {d} vs {brute}");
        }
    }

    #[test]
    fn custom_length_scales_offsets() {
        // Geometric length 10, traversal length 20: snapping at the
        // geometric middle must give offset 10.
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(10.0, 0.0));
        b.add_edge(u, v, Some(20.0)).unwrap();
        let net = b.build().unwrap();
        let (pos, _) = project_to_edge(&net, EdgeId(0), &Point::new(5.0, 1.0));
        assert!((pos.offset - 10.0).abs() < 1e-9);
        assert_eq!(net.edge(EdgeId(0)).u, VertexId(0));
    }
}
