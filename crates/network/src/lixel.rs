//! Lixels: the raster cells of network density visualization.
//!
//! NKDV colours small road segments ("lixels", by analogy with pixels —
//! the term used by spNetwork/PyNKDV) instead of planar pixels. This
//! module subdivides every edge into lixels of approximately equal length
//! and provides the lixel↔edge bookkeeping the NKDV algorithms need.

use crate::graph::{EdgeId, RoadNetwork};
use lsga_core::Point;

/// One lixel: a sub-interval of an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lixel {
    pub edge: EdgeId,
    /// Interval `[start, end]` along the edge (in edge-length units).
    pub start: f64,
    pub end: f64,
}

impl Lixel {
    /// Offset of the lixel midpoint along its edge.
    #[inline]
    pub fn center_offset(&self) -> f64 {
        0.5 * (self.start + self.end)
    }

    /// Length of the lixel.
    #[inline]
    pub fn length(&self) -> f64 {
        self.end - self.start
    }
}

/// The lixelization of a network: all lixels plus per-edge ranges.
#[derive(Debug, Clone)]
pub struct Lixels {
    lixels: Vec<Lixel>,
    /// `edge_ranges[e] = (first lixel index, count)` for edge `e`.
    edge_ranges: Vec<(u32, u32)>,
    target_len: f64,
}

impl Lixels {
    /// Subdivide every edge of `net` into lixels of length ≈ `target_len`
    /// (each edge gets `ceil(length / target_len)` equal-length lixels, so
    /// no lixel is longer than `target_len`). Panics if
    /// `target_len ≤ 0`.
    pub fn build(net: &RoadNetwork, target_len: f64) -> Self {
        assert!(
            target_len.is_finite() && target_len > 0.0,
            "lixel length must be positive"
        );
        let mut lixels = Vec::new();
        let mut edge_ranges = Vec::with_capacity(net.edge_count());
        for (eid, e) in net.edges().iter().enumerate() {
            let k = (e.length / target_len).ceil().max(1.0) as u32;
            let step = e.length / k as f64;
            let first = lixels.len() as u32;
            for i in 0..k {
                lixels.push(Lixel {
                    edge: EdgeId(eid as u32),
                    start: i as f64 * step,
                    end: if i + 1 == k {
                        e.length
                    } else {
                        (i + 1) as f64 * step
                    },
                });
            }
            edge_ranges.push((first, k));
        }
        Lixels {
            lixels,
            edge_ranges,
            target_len,
        }
    }

    /// All lixels, grouped edge-by-edge in edge order.
    #[inline]
    pub fn all(&self) -> &[Lixel] {
        &self.lixels
    }

    /// Number of lixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.lixels.len()
    }

    /// True when the network had no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lixels.is_empty()
    }

    /// The requested target lixel length.
    #[inline]
    pub fn target_len(&self) -> f64 {
        self.target_len
    }

    /// The lixels of one edge.
    pub fn of_edge(&self, e: EdgeId) -> &[Lixel] {
        let (first, count) = self.edge_ranges[e.0 as usize];
        &self.lixels[first as usize..(first + count) as usize]
    }

    /// Index range `(first, count)` of the lixels of one edge.
    #[inline]
    pub fn edge_range(&self, e: EdgeId) -> (u32, u32) {
        self.edge_ranges[e.0 as usize]
    }

    /// Index of the lixel of edge `e` containing `offset`.
    pub fn lixel_at(&self, e: EdgeId, offset: f64) -> usize {
        let (first, count) = self.edge_ranges[e.0 as usize];
        let lx = &self.lixels[first as usize];
        let step = lx.end - lx.start; // uniform per edge except last rounding
        let k = if step > 0.0 {
            ((offset / step) as u32).min(count - 1)
        } else {
            0
        };
        (first + k) as usize
    }

    /// World coordinates of every lixel midpoint.
    pub fn midpoints(&self, net: &RoadNetwork) -> Vec<Point> {
        self.lixels
            .iter()
            .map(|lx| net.point_on_edge(lx.edge, lx.center_offset()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    fn one_edge(len: f64) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(len, 0.0));
        b.add_edge(u, v, None).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn subdivision_covers_edge_exactly() {
        let net = one_edge(10.0);
        let lx = Lixels::build(&net, 3.0);
        let edge_lixels = lx.of_edge(EdgeId(0));
        assert_eq!(edge_lixels.len(), 4); // ceil(10/3)
        assert_eq!(edge_lixels[0].start, 0.0);
        assert_eq!(edge_lixels.last().unwrap().end, 10.0);
        // Contiguous, non-overlapping.
        for w in edge_lixels.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        let total: f64 = edge_lixels.iter().map(|l| l.length()).sum();
        assert!((total - 10.0).abs() < 1e-12);
        // No lixel longer than the target.
        assert!(edge_lixels.iter().all(|l| l.length() <= 3.0 + 1e-12));
    }

    #[test]
    fn short_edge_gets_one_lixel() {
        let net = one_edge(0.5);
        let lx = Lixels::build(&net, 3.0);
        assert_eq!(lx.len(), 1);
        assert_eq!(lx.all()[0].length(), 0.5);
    }

    #[test]
    fn lixel_at_finds_containing_lixel() {
        let net = one_edge(10.0);
        let lx = Lixels::build(&net, 2.5);
        for (offset, want) in [(0.0, 0usize), (2.4, 0), (2.6, 1), (9.99, 3), (10.0, 3)] {
            let i = lx.lixel_at(EdgeId(0), offset);
            assert_eq!(i, want, "offset {offset}");
            let l = lx.all()[i];
            assert!(l.start <= offset + 1e-9 && offset <= l.end + 1e-9);
        }
    }

    #[test]
    fn midpoints_lie_on_edges() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(0.0, 6.0));
        let w = b.add_vertex(Point::new(8.0, 6.0));
        b.add_edge(u, v, None).unwrap();
        b.add_edge(v, w, None).unwrap();
        let net = b.build().unwrap();
        let lx = Lixels::build(&net, 2.0);
        assert_eq!(lx.len(), 3 + 4);
        let mids = lx.midpoints(&net);
        assert_eq!(mids[0], Point::new(0.0, 1.0));
        assert_eq!(mids[3], Point::new(1.0, 6.0));
        // Per-edge ranges partition the whole list.
        let (f0, c0) = lx.edge_range(EdgeId(0));
        let (f1, c1) = lx.edge_range(EdgeId(1));
        assert_eq!((f0, c0), (0, 3));
        assert_eq!((f1, c1), (3, 4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_panics() {
        let net = one_edge(1.0);
        let _ = Lixels::build(&net, 0.0);
    }
}
