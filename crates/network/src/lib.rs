//! # lsga-network
//!
//! The road-network substrate behind the paper's network-constrained tools
//! (NKDV, §2.2; network K-function, §2.3). Real deployments use road
//! networks from SANET / spNetwork inputs; this crate provides an
//! equivalent in-memory graph engine plus synthetic network generators
//! (see DESIGN.md §1.5 for the substitution rationale):
//!
//! * [`RoadNetwork`] — an undirected weighted graph with CSR adjacency,
//!   built through [`NetworkBuilder`];
//! * [`DijkstraEngine`] — bounded single/multi-source shortest paths with
//!   a reusable, epoch-stamped workspace (no O(V) reset per source, which
//!   matters when NKDV runs one search per event);
//! * [`EdgePosition`] + [`SegmentIndex`] — locations *on* edges and
//!   snapping of raw points onto the network;
//! * [`Lixels`] — subdivision of edges into "lixels", the raster cells of
//!   network density visualization (the unit PyNKDV colours);
//! * [`generators`] — Manhattan-grid and random geometric networks, and
//!   length-uniform random event sampling (for network K-function
//!   Monte-Carlo envelopes).

pub mod dijkstra;
pub mod generators;
pub mod graph;
pub mod lixel;
pub mod position;

pub use dijkstra::DijkstraEngine;
pub use generators::{grid_network, random_geometric_network, sample_on_network};
pub use graph::{EdgeId, NetworkBuilder, RoadNetwork, VertexId};
pub use lixel::{Lixel, Lixels};
pub use position::{network_distance, project_to_edge, EdgePosition, SegmentIndex};
