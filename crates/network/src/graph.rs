//! The road-network graph: undirected, weighted, CSR adjacency.

use lsga_core::{BBox, LsgaError, Point, Result};

/// Index of a vertex (road intersection / endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Index of an undirected edge (road segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub u: VertexId,
    pub v: VertexId,
    /// Positive traversal length (defaults to the Euclidean distance
    /// between the endpoint coordinates).
    pub length: f64,
}

/// Incremental builder for [`RoadNetwork`].
///
/// ```
/// use lsga_network::NetworkBuilder;
/// use lsga_core::Point;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_vertex(Point::new(0.0, 0.0));
/// let c = b.add_vertex(Point::new(1.0, 0.0));
/// b.add_edge(a, c, None).unwrap();
/// let net = b.build().unwrap();
/// assert_eq!(net.vertex_count(), 2);
/// assert_eq!(net.edge(lsga_network::EdgeId(0)).length, 1.0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    vertices: Vec<Point>,
    edges: Vec<Edge>,
}

impl NetworkBuilder {
    /// Start an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex at `p` and return its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(p);
        id
    }

    /// Add an undirected edge. `length = None` uses the Euclidean
    /// distance between the endpoints. Errors on unknown vertices,
    /// self-loops, or non-positive explicit lengths.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, length: Option<f64>) -> Result<EdgeId> {
        let n = self.vertices.len() as u32;
        if u.0 >= n || v.0 >= n {
            return Err(LsgaError::GraphIndex(format!(
                "edge ({}, {}) references a vertex ≥ {}",
                u.0, v.0, n
            )));
        }
        if u == v {
            return Err(LsgaError::GraphIndex(format!(
                "self-loop at vertex {}",
                u.0
            )));
        }
        let euclid = self.vertices[u.0 as usize].dist(&self.vertices[v.0 as usize]);
        let length = length.unwrap_or(euclid);
        if !(length.is_finite() && length > 0.0) {
            return Err(LsgaError::InvalidParameter {
                name: "length",
                message: format!("edge length must be positive and finite, got {length}"),
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { u, v, length });
        Ok(id)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Finalize into an immutable [`RoadNetwork`]. Errors on an empty
    /// vertex set.
    pub fn build(self) -> Result<RoadNetwork> {
        if self.vertices.is_empty() {
            return Err(LsgaError::EmptyDataset("network vertices"));
        }
        let nv = self.vertices.len();
        // CSR adjacency (each undirected edge appears in both lists).
        let mut degree = vec![0u32; nv + 1];
        for e in &self.edges {
            degree[e.u.0 as usize + 1] += 1;
            degree[e.v.0 as usize + 1] += 1;
        }
        for i in 1..=nv {
            degree[i] += degree[i - 1];
        }
        let starts = degree.clone();
        let mut cursor = degree;
        let mut adj = vec![(0u32, 0u32); self.edges.len() * 2];
        for (eid, e) in self.edges.iter().enumerate() {
            adj[cursor[e.u.0 as usize] as usize] = (e.v.0, eid as u32);
            cursor[e.u.0 as usize] += 1;
            adj[cursor[e.v.0 as usize] as usize] = (e.u.0, eid as u32);
            cursor[e.v.0 as usize] += 1;
        }
        Ok(RoadNetwork {
            vertices: self.vertices,
            edges: self.edges,
            adj_starts: starts,
            adj,
        })
    }
}

/// An immutable road network.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    vertices: Vec<Point>,
    edges: Vec<Edge>,
    adj_starts: Vec<u32>,
    /// `(neighbour vertex, edge id)` pairs.
    adj: Vec<(u32, u32)>,
}

impl RoadNetwork {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Coordinates of a vertex.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> Point {
        self.vertices[v.0 as usize]
    }

    /// All vertex coordinates.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// An edge record.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.0 as usize]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `v` as `(neighbour, connecting edge)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let s = self.adj_starts[v.0 as usize] as usize;
        let e = self.adj_starts[v.0 as usize + 1] as usize;
        self.adj[s..e]
            .iter()
            .map(|(w, eid)| (VertexId(*w), EdgeId(*eid)))
    }

    /// Degree of a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.adj_starts[v.0 as usize + 1] - self.adj_starts[v.0 as usize]) as usize
    }

    /// Total length of all edges (the "area" analogue for network point
    /// processes; network K-function intensities normalize by it).
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// Bounding box of the vertex coordinates.
    pub fn bbox(&self) -> BBox {
        BBox::of_points(&self.vertices)
    }

    /// World coordinates of the position at `offset` along edge `e`
    /// (linear interpolation between the endpoint coordinates).
    pub fn point_on_edge(&self, e: EdgeId, offset: f64) -> Point {
        let edge = self.edge(e);
        let t = (offset / edge.length).clamp(0.0, 1.0);
        let a = self.vertex(edge.u);
        let b = self.vertex(edge.v);
        Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    }

    /// Number of connected components (union–find; used by the generators
    /// to assert connectivity).
    pub fn connected_components(&self) -> usize {
        let mut parent: Vec<u32> = (0..self.vertices.len() as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for e in &self.edges {
            let ru = find(&mut parent, e.u.0);
            let rv = find(&mut parent, e.v.0);
            if ru != rv {
                parent[ru as usize] = rv;
            }
        }
        let mut roots = std::collections::HashSet::new();
        for v in 0..self.vertices.len() as u32 {
            roots.insert(find(&mut parent, v));
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(4.0, 0.0));
        let d = b.add_vertex(Point::new(0.0, 3.0));
        b.add_edge(a, c, None).unwrap();
        b.add_edge(a, d, None).unwrap();
        b.add_edge(c, d, None).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_basic() {
        let net = triangle();
        assert_eq!(net.vertex_count(), 3);
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.edge(EdgeId(0)).length, 4.0);
        assert_eq!(net.edge(EdgeId(1)).length, 3.0);
        assert_eq!(net.edge(EdgeId(2)).length, 5.0);
        assert_eq!(net.total_length(), 12.0);
        assert_eq!(net.degree(VertexId(0)), 2);
        assert_eq!(net.connected_components(), 1);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let net = triangle();
        for v in 0..3u32 {
            for (w, e) in net.neighbors(VertexId(v)) {
                let edge = net.edge(e);
                assert!(
                    (edge.u == VertexId(v) && edge.v == w)
                        || (edge.v == VertexId(v) && edge.u == w)
                );
                // Reverse direction must exist.
                assert!(net.neighbors(w).any(|(x, _)| x == VertexId(v)));
            }
        }
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        assert!(b.add_edge(a, a, None).is_err());
        assert!(b.add_edge(a, VertexId(99), None).is_err());
        assert!(b.add_edge(a, c, Some(0.0)).is_err());
        assert!(b.add_edge(a, c, Some(-1.0)).is_err());
        assert!(b.add_edge(a, c, Some(f64::NAN)).is_err());
        assert!(b.add_edge(a, c, Some(2.5)).is_ok());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(NetworkBuilder::new().build().is_err());
    }

    #[test]
    fn point_on_edge_interpolates() {
        let net = triangle();
        // Edge 0: (0,0) -> (4,0), length 4.
        assert_eq!(net.point_on_edge(EdgeId(0), 0.0), Point::new(0.0, 0.0));
        assert_eq!(net.point_on_edge(EdgeId(0), 2.0), Point::new(2.0, 0.0));
        assert_eq!(net.point_on_edge(EdgeId(0), 4.0), Point::new(4.0, 0.0));
        // Clamped beyond the end.
        assert_eq!(net.point_on_edge(EdgeId(0), 9.0), Point::new(4.0, 0.0));
    }

    #[test]
    fn disconnected_components_counted() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let _lonely = b.add_vertex(Point::new(9.0, 9.0));
        b.add_edge(a, c, None).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.connected_components(), 2);
    }

    #[test]
    fn isolated_vertex_has_no_neighbors() {
        let mut b = NetworkBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        let net = b.build().unwrap();
        assert_eq!(net.neighbors(VertexId(0)).count(), 0);
        assert_eq!(net.degree(VertexId(0)), 0);
    }
}
