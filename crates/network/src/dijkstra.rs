//! Bounded shortest-path searches with a reusable workspace.
//!
//! NKDV runs one bounded Dijkstra per event and the network K-function one
//! per event (naive) or per occupied edge (shared), so the per-search
//! overhead matters. [`DijkstraEngine`] keeps its distance array across
//! searches using epoch stamping: resetting costs O(1), not O(V).

use crate::graph::{RoadNetwork, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable bounded-Dijkstra engine over one network.
#[derive(Debug)]
pub struct DijkstraEngine<'a> {
    net: &'a RoadNetwork,
    dist: Vec<f64>,
    epoch_of: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Vertices reached in the last search (dense reset-free readout).
    reached: Vec<VertexId>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    v: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then(self.v.cmp(&other.v))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> DijkstraEngine<'a> {
    /// Create an engine for `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        DijkstraEngine {
            net,
            dist: vec![f64::INFINITY; net.vertex_count()],
            epoch_of: vec![0; net.vertex_count()],
            epoch: 0,
            heap: BinaryHeap::new(),
            reached: Vec::new(),
        }
    }

    /// Run a bounded multi-source Dijkstra.
    ///
    /// `seeds` are `(vertex, initial distance)` pairs — events located on
    /// an edge seed both endpoints with their offsets. Vertices farther
    /// than `max_dist` are not settled. After the call, distances are
    /// readable through [`DijkstraEngine::dist`] and the settled set
    /// through [`DijkstraEngine::reached`].
    pub fn run(&mut self, seeds: &[(VertexId, f64)], max_dist: f64) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: do the full reset once.
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.reached.clear();
        for &(v, d0) in seeds {
            if d0 > max_dist {
                continue;
            }
            let vi = v.0 as usize;
            if self.epoch_of[vi] != self.epoch || d0 < self.dist[vi] {
                self.epoch_of[vi] = self.epoch;
                self.dist[vi] = d0;
                self.heap.push(Reverse(HeapEntry { dist: d0, v: v.0 }));
            }
        }
        while let Some(Reverse(HeapEntry { dist: d, v })) = self.heap.pop() {
            let vi = v as usize;
            if self.epoch_of[vi] != self.epoch || d > self.dist[vi] {
                continue; // stale entry
            }
            self.reached.push(VertexId(v));
            for (w, e) in self.net.neighbors(VertexId(v)) {
                let nd = d + self.net.edge(e).length;
                if nd > max_dist {
                    continue;
                }
                let wi = w.0 as usize;
                if self.epoch_of[wi] != self.epoch || nd < self.dist[wi] {
                    self.epoch_of[wi] = self.epoch;
                    self.dist[wi] = nd;
                    self.heap.push(Reverse(HeapEntry { dist: nd, v: w.0 }));
                }
            }
        }
    }

    /// Distance to `v` from the last search's seeds, or `None` if `v` was
    /// not reached within the bound.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<f64> {
        let vi = v.0 as usize;
        if self.epoch_of[vi] == self.epoch {
            Some(self.dist[vi])
        } else {
            None
        }
    }

    /// Vertices settled by the last search, in ascending distance order.
    #[inline]
    pub fn reached(&self) -> &[VertexId] {
        &self.reached
    }

    /// Unbounded single-source convenience (bound = ∞).
    pub fn run_from(&mut self, source: VertexId) {
        self.run(&[(source, 0.0)], f64::INFINITY);
    }

    /// The underlying network.
    #[inline]
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use lsga_core::Point;

    /// Path graph 0-1-2-3-4 with unit edges.
    fn path_net() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let vs: Vec<VertexId> = (0..5)
            .map(|i| b.add_vertex(Point::new(i as f64, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], None).unwrap();
        }
        b.build().unwrap()
    }

    /// Weighted diamond where the long direct edge loses to the two-hop
    /// path: 0-1 (1), 1-3 (1), 0-2 (2), 2-3 (5), 0-3 (10).
    fn diamond() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let v: Vec<VertexId> = (0..4)
            .map(|i| b.add_vertex(Point::new(i as f64, i as f64)))
            .collect();
        b.add_edge(v[0], v[1], Some(1.0)).unwrap();
        b.add_edge(v[1], v[3], Some(1.0)).unwrap();
        b.add_edge(v[0], v[2], Some(2.0)).unwrap();
        b.add_edge(v[2], v[3], Some(5.0)).unwrap();
        b.add_edge(v[0], v[3], Some(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_source_distances() {
        let net = path_net();
        let mut eng = DijkstraEngine::new(&net);
        eng.run_from(VertexId(0));
        for i in 0..5u32 {
            assert_eq!(eng.dist(VertexId(i)), Some(i as f64));
        }
    }

    #[test]
    fn takes_shortest_route() {
        let net = diamond();
        let mut eng = DijkstraEngine::new(&net);
        eng.run_from(VertexId(0));
        assert_eq!(eng.dist(VertexId(3)), Some(2.0)); // via vertex 1
        assert_eq!(eng.dist(VertexId(2)), Some(2.0));
    }

    #[test]
    fn bound_respected() {
        let net = path_net();
        let mut eng = DijkstraEngine::new(&net);
        eng.run(&[(VertexId(0), 0.0)], 2.5);
        assert_eq!(eng.dist(VertexId(2)), Some(2.0));
        assert_eq!(eng.dist(VertexId(3)), None);
        assert_eq!(eng.dist(VertexId(4)), None);
        assert_eq!(eng.reached().len(), 3);
    }

    #[test]
    fn multi_source_with_offsets() {
        let net = path_net();
        let mut eng = DijkstraEngine::new(&net);
        // Event 0.3 along edge (1,2): seeds vertex 1 at 0.3 and vertex 2
        // at 0.7.
        eng.run(&[(VertexId(1), 0.3), (VertexId(2), 0.7)], 10.0);
        assert_eq!(eng.dist(VertexId(0)), Some(1.3));
        assert_eq!(eng.dist(VertexId(4)), Some(2.7));
    }

    #[test]
    fn reuse_resets_previous_search() {
        let net = path_net();
        let mut eng = DijkstraEngine::new(&net);
        eng.run(&[(VertexId(0), 0.0)], 1.5);
        assert!(eng.dist(VertexId(4)).is_none());
        eng.run(&[(VertexId(4), 0.0)], 1.5);
        // Old search's results must be gone.
        assert_eq!(eng.dist(VertexId(0)), None);
        assert_eq!(eng.dist(VertexId(4)), Some(0.0));
        assert_eq!(eng.dist(VertexId(3)), Some(1.0));
    }

    #[test]
    fn reached_sorted_by_distance() {
        let net = diamond();
        let mut eng = DijkstraEngine::new(&net);
        eng.run_from(VertexId(0));
        let dists: Vec<f64> = eng
            .reached()
            .iter()
            .map(|v| eng.dist(*v).unwrap())
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(eng.reached().len(), 4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexes a distance matrix
    fn triangle_inequality_holds() {
        // Property check on a deterministic mesh: d(a,c) <= d(a,b)+d(b,c).
        let mut b = NetworkBuilder::new();
        let n = 6;
        let vs: Vec<VertexId> = (0..n * n)
            .map(|i| b.add_vertex(Point::new((i % n) as f64, (i / n) as f64)))
            .collect();
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_edge(vs[i], vs[i + 1], None).unwrap();
                }
                if y + 1 < n {
                    b.add_edge(vs[i], vs[i + n], None).unwrap();
                }
            }
        }
        let net = b.build().unwrap();
        let mut eng = DijkstraEngine::new(&net);
        let mut all = vec![vec![0.0; n * n]; n * n];
        for s in 0..n * n {
            eng.run_from(VertexId(s as u32));
            for t in 0..n * n {
                all[s][t] = eng.dist(VertexId(t as u32)).unwrap();
            }
        }
        for a in 0..n * n {
            for c in 0..n * n {
                for mid in [0, 7, 18, 35] {
                    assert!(all[a][c] <= all[a][mid] + all[mid][c] + 1e-9);
                }
                assert!((all[a][c] - all[c][a]).abs() < 1e-9, "symmetry");
            }
        }
    }
}
