//! Synthetic road-network generators and on-network event sampling.
//!
//! Real road networks (the paper's deployments use Hong Kong's; SANET and
//! spNetwork ship city extracts) are replaced by two parametric families
//! that bracket the structural regimes that matter for NKDV / network
//! K-function behaviour:
//!
//! * [`grid_network`] — a Manhattan grid: high regularity, many short
//!   cycles; network distance ≈ L1 distance, so the Euclidean-vs-network
//!   gap is moderate and analytically predictable.
//! * [`random_geometric_network`] — random vertices wired to near
//!   neighbours plus a connectivity backbone: irregular, with barriers
//!   and detours; produces the large Euclidean-vs-network gaps of the
//!   paper's Fig. 3.
//!
//! [`sample_on_network`] draws events uniformly *by length* — the null
//! model ("complete spatial randomness on a network") that the network
//! K-function envelope simulation (Def. 3 adapted to networks) requires.

use crate::graph::{NetworkBuilder, RoadNetwork, VertexId};
use crate::position::EdgePosition;
use crate::EdgeId;
use lsga_core::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build an `nx × ny` Manhattan grid with the given block `spacing`.
/// Vertices are at `(i·spacing, j·spacing)`; all adjacent pairs are
/// connected. Panics if either dimension is `< 2`.
pub fn grid_network(nx: usize, ny: usize, spacing: f64) -> RoadNetwork {
    assert!(nx >= 2 && ny >= 2, "grid must be at least 2x2");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut b = NetworkBuilder::new();
    let mut ids = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            ids.push(b.add_vertex(Point::new(i as f64 * spacing, j as f64 * spacing)));
        }
    }
    for j in 0..ny {
        for i in 0..nx {
            let v = ids[j * nx + i];
            if i + 1 < nx {
                b.add_edge(v, ids[j * nx + i + 1], None)
                    .expect("valid grid edge");
            }
            if j + 1 < ny {
                b.add_edge(v, ids[(j + 1) * nx + i], None)
                    .expect("valid grid edge");
            }
        }
    }
    b.build().expect("non-empty grid")
}

/// Build a connected random geometric network: `n` vertices uniform in
/// `bbox`, each wired to its `k` nearest neighbours, plus a nearest-
/// unconnected-component backbone that guarantees a single connected
/// component. Deterministic in `seed`.
pub fn random_geometric_network(n: usize, k: usize, bbox: BBox, seed: u64) -> RoadNetwork {
    assert!(n >= 2, "need at least two vertices");
    assert!(k >= 1, "need at least one neighbour link");
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(bbox.min_x..=bbox.max_x),
                rng.gen_range(bbox.min_y..=bbox.max_y),
            )
        })
        .collect();

    let mut b = NetworkBuilder::new();
    let ids: Vec<VertexId> = pts.iter().map(|p| b.add_vertex(*p)).collect();

    // k-NN wiring (brute force: generator-time cost, not query-time).
    let mut seen = std::collections::HashSet::new();
    for (i, p) in pts.iter().enumerate() {
        let mut dists: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, q)| (j, p.dist(q)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        for &(j, d) in dists.iter().take(k) {
            let key = (i.min(j), i.max(j));
            if seen.insert(key) && d > 0.0 {
                b.add_edge(ids[i], ids[j], None).expect("valid knn edge");
            }
        }
    }

    // Connectivity backbone: greedily link components by their nearest
    // vertex pair (O(C·n²) worst case; C is small for reasonable k).
    loop {
        let net = b.clone().build().expect("non-empty");
        if net.connected_components() == 1 {
            return net;
        }
        // Label components.
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = next;
            while let Some(v) = stack.pop() {
                for (w, _) in net.neighbors(VertexId(v as u32)) {
                    let wi = w.0 as usize;
                    if comp[wi] == usize::MAX {
                        comp[wi] = next;
                        stack.push(wi);
                    }
                }
            }
            next += 1;
        }
        // Link component 0 to the closest vertex in any other component.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if comp[i] != 0 {
                continue;
            }
            for j in 0..n {
                if comp[j] == 0 {
                    continue;
                }
                let d = pts[i].dist(&pts[j]);
                if d > 0.0 && best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("distinct components must have a bridge");
        b.add_edge(ids[i], ids[j], None).expect("valid bridge edge");
        if seen.len() > n * (n - 1) / 2 {
            unreachable!("edge budget exceeded while connecting components");
        }
        seen.insert((i.min(j), i.max(j)));
    }
}

/// Sample `count` positions uniformly by length over the network's edges
/// (the network CSR null model). Deterministic in `seed`.
pub fn sample_on_network(net: &RoadNetwork, count: usize, seed: u64) -> Vec<EdgePosition> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative edge lengths for weighted edge choice.
    let mut cum = Vec::with_capacity(net.edge_count());
    let mut acc = 0.0;
    for e in net.edges() {
        acc += e.length;
        cum.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let r = rng.gen_range(0.0..total);
            let ei = cum.partition_point(|c| *c <= r);
            let e = EdgeId(ei as u32);
            let prev = if ei == 0 { 0.0 } else { cum[ei - 1] };
            EdgePosition {
                edge: e,
                offset: r - prev,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_network_shape() {
        let net = grid_network(4, 3, 2.0);
        assert_eq!(net.vertex_count(), 12);
        // Horizontal: 3 per row * 3 rows; vertical: 4 per column * 2.
        assert_eq!(net.edge_count(), 9 + 8);
        assert_eq!(net.connected_components(), 1);
        assert!((net.total_length() - 17.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn random_network_connected_and_deterministic() {
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let a = random_geometric_network(60, 3, bbox, 7);
        assert_eq!(a.connected_components(), 1);
        assert_eq!(a.vertex_count(), 60);
        let b = random_geometric_network(60, 3, bbox, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.vertices(), b.vertices());
        let c = random_geometric_network(60, 3, bbox, 8);
        assert_ne!(a.vertices(), c.vertices());
    }

    #[test]
    fn network_sampling_uniform_by_length() {
        // One long edge (90) and one short (10): expect ~90% of samples
        // on the long edge.
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(90.0, 0.0));
        let w = b.add_vertex(Point::new(90.0, 10.0));
        b.add_edge(u, v, None).unwrap();
        b.add_edge(v, w, None).unwrap();
        let net = b.build().unwrap();
        let samples = sample_on_network(&net, 5000, 42);
        let on_long = samples.iter().filter(|p| p.edge == EdgeId(0)).count();
        let frac = on_long as f64 / 5000.0;
        assert!((frac - 0.9).abs() < 0.03, "got {frac}");
        // All offsets within their edge.
        for s in &samples {
            assert!(s.offset >= 0.0 && s.offset <= net.edge(s.edge).length);
        }
    }

    #[test]
    fn sampling_deterministic_in_seed() {
        let net = grid_network(3, 3, 1.0);
        let a = sample_on_network(&net, 50, 1);
        let b = sample_on_network(&net, 50, 1);
        assert_eq!(a, b);
        let c = sample_on_network(&net, 50, 2);
        assert_ne!(a, c);
    }
}
