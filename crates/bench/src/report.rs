//! Machine-readable benchmark reports for the `experiments` binary.
//!
//! Instrumented experiments record one [`row`] per timed method call;
//! [`finish`] then writes a `BENCH_<ID>.json` file next to the printed
//! markdown table so regressions can be diffed mechanically instead of
//! by eyeballing tables. The writer is hand-rolled: the workspace is
//! offline, so no serde.
//!
//! The JSON shape is flat and stable:
//!
//! ```json
//! {
//!   "id": "e3",
//!   "title": "KDV method scaling (naive vs accelerated)",
//!   "host_parallelism": 8,
//!   "total_ms": 1234.5,
//!   "rows": [
//!     { "method": "grid-pruned", "params": { "n": 10000 }, "ms": 12.3 }
//!   ]
//! }
//! ```

use std::path::PathBuf;
use std::sync::Mutex;

struct Row {
    method: String,
    params: Vec<(String, f64)>,
    ms: f64,
}

struct Report {
    id: String,
    title: String,
    rows: Vec<Row>,
}

static ACTIVE: Mutex<Option<Report>> = Mutex::new(None);

/// Begin recording rows for experiment `id`. Any unfinished previous
/// report is discarded.
pub fn start(id: &str, title: &str) {
    *ACTIVE.lock().unwrap() = Some(Report {
        id: id.to_string(),
        title: title.to_string(),
        rows: Vec::new(),
    });
}

/// Record one timed method invocation with its parameters (e.g.
/// `("n", 10000.0)`, `("threads", 8.0)`). A no-op outside
/// [`start`]/[`finish`].
pub fn row(method: &str, params: &[(&str, f64)], ms: f64) {
    if let Some(r) = ACTIVE.lock().unwrap().as_mut() {
        r.rows.push(Row {
            method: method.to_string(),
            params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            ms,
        });
    }
}

/// Close the active report. Experiments that recorded at least one row
/// get `BENCH_<ID>.json` written to the working directory; the path is
/// returned so the caller can announce it. Uninstrumented experiments
/// produce no file.
pub fn finish(total_ms: f64) -> Option<PathBuf> {
    let report = ACTIVE.lock().unwrap().take()?;
    if report.rows.is_empty() {
        return None;
    }
    let path = PathBuf::from(format!("BENCH_{}.json", report.id.to_uppercase()));
    std::fs::write(&path, render(&report, total_ms)).ok()?;
    Some(path)
}

fn render(r: &Report, total_ms: f64) -> String {
    let host = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"id\": \"{}\",\n", esc(&r.id)));
    out.push_str(&format!("  \"title\": \"{}\",\n", esc(&r.title)));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"total_ms\": {},\n", num(total_ms)));
    out.push_str("  \"rows\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"method\": \"{}\", \"params\": {{ ",
            esc(&row.method)
        ));
        for (j, (k, v)) in row.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", esc(k), num(*v)));
        }
        out.push_str(&format!(" }}, \"ms\": {} }}", num(row.ms)));
        out.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string escaping for the ASCII control set plus quote/backslash.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number; non-finite values (no JSON encoding) become null.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_writes_only_with_rows() {
        start("e99-empty", "no rows");
        assert!(finish(1.0).is_none());

        start("unit-test", "quote \" and backslash \\");
        row("naive", &[("n", 10_000.0), ("threads", 2.0)], 12.5);
        row("weird", &[("eps", f64::INFINITY)], f64::NAN);
        let path = finish(99.0).expect("file written");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(text.contains("\"id\": \"unit-test\""));
        assert!(text.contains("quote \\\" and backslash \\\\"));
        assert!(text.contains("\"n\": 10000"));
        assert!(text.contains("\"eps\": null"));
        assert!(text.contains("\"ms\": null"));
        assert!(text.contains("\"total_ms\": 99"));
        // Rows recorded after finish are dropped.
        row("late", &[], 1.0);
        assert!(finish(0.0).is_none());
    }
}
