//! # lsga-bench
//!
//! Benchmark harness for the `lsga` suite. Two entry points:
//!
//! * the **`experiments` binary** — regenerates every experiment table
//!   of `EXPERIMENTS.md` (`cargo run --release -p lsga-bench --bin
//!   experiments -- all`);
//! * the **Criterion benches** in `benches/` — one target per
//!   experiment, for statistically sound timing comparisons
//!   (`cargo bench -p lsga-bench`).
//!
//! [`workloads`] defines the shared synthetic datasets so that the
//! binary and the benches measure identical inputs.

pub mod load;
pub mod report;
pub mod workloads;
