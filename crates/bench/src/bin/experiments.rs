//! Regenerate every experiment table of `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! cargo run --release -p lsga-bench --bin experiments -- all
//! cargo run --release -p lsga-bench --bin experiments -- e3 e5 e12
//! ```
//!
//! Each experiment prints a self-contained markdown table; EXPERIMENTS.md
//! records one captured run with commentary. Sizes are chosen so the full
//! suite completes in a few minutes in release mode.

use lsga::dist::{self, PartitionStrategy};
use lsga::prelude::*;
use lsga::stats::{self, areal, SpatialWeights};
use lsga::{data, interp, kdv, kfunc, viz};
use lsga_bench::report;
use lsga_bench::workloads::{crime, csr, road_scenario, sensors, taxi, waves, window};
use std::time::{Duration, Instant};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

fn msf(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn hw_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    let experiments: &[(&str, &str, fn())] = &[
        ("e1", "KDV heatmap & hotspot recovery (Fig. 1)", e1),
        ("e2", "kernel functions (Table 2 + extensions)", e2),
        ("e3", "KDV method scaling (naive vs accelerated)", e3),
        ("e4", "K-function plot & regimes (Fig. 2)", e4),
        ("e5", "K-function method scaling (O(n^2) claim)", e5),
        ("e6", "NKDV vs planar KDV (Fig. 3)", e6),
        ("e7", "STKDV waves (Fig. 4)", e7),
        ("e8", "spatiotemporal K surface (Fig. 6)", e8),
        ("e9", "network K-function vs planar (Yamada-Thill)", e9),
        ("e10", "IDW & kriging (O(XYn) claim)", e10),
        ("e11", "Moran's I & General G", e11),
        ("e12", "distributed scaling & communication", e12),
        ("e13", "approximation quality (Eq. 6-7 guarantees)", e13),
        ("e14", "SAFE multi-bandwidth sharing ablation", e14),
        ("e15", "clustering recovery (DBSCAN / K-means)", e15),
        ("e16", "future work: sampled & border-corrected K", e16),
        ("e17", "future work: binned separable Gaussian KDV", e17),
        ("e18", "extension: local Gi* / LISA hot-spot maps", e18),
        ("e19", "fault injection & recovery overhead", e19),
        ("e20", "observability overhead & counter audit", e20),
        (
            "e21",
            "serving layer: tile cache, single-flight, invalidation",
            e21,
        ),
        (
            "e22",
            "incremental ingest: segment stack vs monolithic rebuild",
            e22,
        ),
        (
            "e23",
            "quality tiers: deadline-aware degradation under Zipfian overload",
            e23,
        ),
        (
            "e24",
            "served tiers: HTTP front-end under overload, exact vs tiered",
            e24,
        ),
        (
            "e25",
            "multi-node cluster: shard routing, node-death re-homing, coverage degradation",
            e25,
        ),
        (
            "e26",
            "multi-analytic serving: per-kind cost, coalescing, insert isolation",
            e26,
        ),
    ];

    let mut ran = 0;
    for (id, title, f) in experiments {
        if want(id) {
            println!("\n## {} — {title}\n", id.to_uppercase());
            let t = Instant::now();
            report::start(id, title);
            // Every experiment runs traced; whatever its hot paths
            // account for lands in OBS_<ID>.json next to BENCH_<ID>.json.
            // (E20 toggles the collector itself to measure the overhead.)
            lsga::obs::reset();
            lsga::obs::enable();
            f();
            let elapsed = t.elapsed();
            let snap = lsga::obs::drain();
            lsga::obs::disable();
            if !snap.is_empty() {
                let path = format!("OBS_{}.json", id.to_uppercase());
                if std::fs::write(&path, snap.to_json(id)).is_ok() {
                    println!("\n[wrote {path}]");
                }
            }
            if let Some(path) = report::finish(msf(elapsed)) {
                println!("\n[wrote {}]", path.display());
            }
            println!("\n[{} completed in {:.1?}]", id.to_uppercase(), elapsed);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment id; use e1..e26 or all (e16-e18 are the implemented future-work extensions)");
        std::process::exit(2);
    }
}

// ---------------------------------------------------------------- E1 ----
fn e1() {
    let n = 200_000;
    let points = crime(n);
    let spec = GridSpec::new(window(), 512, 410);
    let kernel = PolyKernel::new(KernelKind::Quartic, 250.0).unwrap();
    let (grid, t) = time(|| kdv::slam_kdv(&points, spec, kernel));
    let truth = Point::new(2_500.0, 2_000.0);
    println!("| quantity | value |");
    println!("|---|---|");
    println!("| points | {n} |");
    println!("| raster | {}x{} px |", spec.nx, spec.ny);
    println!("| method | SLAM sweep-line (exact) |");
    println!("| time | {} ms |", ms(t));
    println!(
        "| hotspot found | ({:.0}, {:.0}) |",
        grid.hotspot().x,
        grid.hotspot().y
    );
    println!(
        "| true heaviest hotspot | ({:.0}, {:.0}) |",
        truth.x, truth.y
    );
    println!(
        "| recovery error | {:.0} m ({}x pixel) |",
        grid.hotspot().dist(&truth),
        (grid.hotspot().dist(&truth) / spec.dx()).round()
    );
    let out = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out).expect("create output dir");
    viz::write_heatmap_png(out.join("e1_heatmap.png"), &grid, Colormap::Heat).expect("write png");
    println!("| image | target/experiments/e1_heatmap.png |");
}

// ---------------------------------------------------------------- E2 ----
fn e2() {
    let points = crime(50_000);
    let spec = GridSpec::new(window(), 256, 205);
    println!("| kernel | K(0) | K(b/2) | K(b) | K(2b) | support | rasterize (ms) | max density |");
    println!("|---|---|---|---|---|---|---|---|");
    let b = 300.0;
    for kind in KernelKind::ALL {
        let k = kind.with_bandwidth(b);
        let (grid, t) = time(|| kdv::grid_pruned_kdv(&points, spec, k, 1e-9));
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} | {:.1} |",
            kind.name(),
            k.eval(0.0),
            k.eval(b / 2.0),
            k.eval(b),
            k.eval(2.0 * b),
            k.support()
                .map_or("infinite".to_string(), |s| format!("{s:.0}")),
            ms(t),
            grid.max()
        );
    }
}

// ---------------------------------------------------------------- E3 ----
fn e3() {
    let spec = GridSpec::new(window(), 256, 205);
    let b = 250.0;
    let quartic = Quartic::new(b);
    let poly = PolyKernel::new(KernelKind::Quartic, b).unwrap();
    let threads = hw_threads();
    println!(
        "### runtime vs n (quartic, b = {b}, {}x{} px)\n",
        spec.nx, spec.ny
    );
    println!("| n | naive O(XYn) | grid-pruned | SLAM | bounds eps=0.1 | sampling m=4096 | parallel x{threads} |");
    println!("|---|---|---|---|---|---|---|");
    for n in [10_000usize, 30_000, 100_000, 300_000] {
        let pts = crime(n);
        let nf = n as f64;
        let res = (spec.nx * spec.ny) as f64;
        let naive_col = if n <= 30_000 {
            let (_, t) = time(|| kdv::naive_kdv(&pts, spec, quartic));
            report::row("naive", &[("n", nf), ("pixels", res)], msf(t));
            format!("{} ms", ms(t))
        } else {
            "— (extrapolates to minutes)".to_string()
        };
        let (_, t_grid) = time(|| kdv::grid_pruned_kdv(&pts, spec, quartic, 1e-9));
        report::row("grid-pruned", &[("n", nf), ("pixels", res)], msf(t_grid));
        let (_, t_slam) = time(|| kdv::slam_kdv(&pts, spec, poly));
        report::row("slam", &[("n", nf), ("pixels", res)], msf(t_slam));
        let engine = kdv::BoundsKdv::new(&pts);
        let (_, t_bounds) = time(|| engine.compute(spec, quartic, 0.1));
        report::row("bounds", &[("n", nf), ("pixels", res)], msf(t_bounds));
        let (_, t_samp) = time(|| kdv::sampling_kdv(&pts, spec, quartic, 4096, 1));
        report::row("sampling", &[("n", nf), ("pixels", res)], msf(t_samp));
        let (_, t_par) = time(|| kdv::parallel_kdv(&pts, spec, quartic, 1e-9, threads));
        report::row(
            "parallel",
            &[("n", nf), ("pixels", res), ("threads", threads as f64)],
            msf(t_par),
        );
        println!(
            "| {n} | {naive_col} | {} ms | {} ms | {} ms | {} ms | {} ms |",
            ms(t_grid),
            ms(t_slam),
            ms(t_bounds),
            ms(t_samp),
            ms(t_par)
        );
    }
    println!("\n### runtime vs resolution (n = 100k)\n");
    println!("| raster | grid-pruned | SLAM | parallel x{threads} |");
    println!("|---|---|---|---|");
    let pts = crime(100_000);
    for nx in [128usize, 256, 512, 1024] {
        let spec = GridSpec::with_width(window(), nx);
        let res = (spec.nx * spec.ny) as f64;
        let (_, t_grid) = time(|| kdv::grid_pruned_kdv(&pts, spec, quartic, 1e-9));
        report::row("grid-pruned", &[("n", 1e5), ("pixels", res)], msf(t_grid));
        let (_, t_slam) = time(|| kdv::slam_kdv(&pts, spec, poly));
        report::row("slam", &[("n", 1e5), ("pixels", res)], msf(t_slam));
        let (_, t_par) = time(|| kdv::parallel_kdv(&pts, spec, quartic, 1e-9, threads));
        report::row(
            "parallel",
            &[("n", 1e5), ("pixels", res), ("threads", threads as f64)],
            msf(t_par),
        );
        println!(
            "| {}x{} | {} ms | {} ms | {} ms |",
            spec.nx,
            spec.ny,
            ms(t_grid),
            ms(t_slam),
            ms(t_par)
        );
    }
}

// ---------------------------------------------------------------- E4 ----
fn e4() {
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
    let cfg = KConfig::default();
    let sims = 40;
    let datasets: [(&str, Vec<Point>); 3] = [
        ("clustered (crime)", crime(2_000)),
        ("CSR", csr(2_000)),
        (
            "dispersed (hard-core 180 m)",
            data::hardcore_points(2_000, 180.0, window(), 5),
        ),
    ];
    for (name, pts) in &datasets {
        let plot = kfunc::k_function_plot(pts, window(), &thresholds, sims, 7, cfg, hw_threads());
        println!("\n**{name}** (n = {}, {sims} CSR simulations)\n", pts.len());
        println!("| s (m) | K_P(s) | L(s) | U(s) | verdict |");
        println!("|---|---|---|---|---|");
        for (i, s) in plot.thresholds.iter().enumerate() {
            println!(
                "| {s:.0} | {} | {} | {} | {:?} |",
                plot.observed[i],
                plot.lower[i],
                plot.upper[i],
                plot.regimes()[i]
            );
        }
    }
}

// ---------------------------------------------------------------- E5 ----
fn e5() {
    let s = 300.0;
    let cfg = KConfig::default();
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 60.0).collect();
    let threads = hw_threads();
    println!("| n | naive O(n^2) | grid | kd-tree | ball-tree | histogram (10 s) | parallel x{threads} |");
    println!("|---|---|---|---|---|---|---|");
    for n in [5_000usize, 20_000, 80_000, 320_000] {
        let pts = taxi(n);
        let nf = n as f64;
        let naive_col = if n <= 20_000 {
            let (k, t) = time(|| kfunc::naive_k(&pts, s, cfg));
            let _ = k;
            report::row("naive", &[("n", nf), ("s", s)], msf(t));
            format!("{} ms", ms(t))
        } else {
            "—".to_string()
        };
        let (k_grid, t_grid) = time(|| kfunc::grid_k(&pts, s, cfg));
        report::row("grid", &[("n", nf), ("s", s)], msf(t_grid));
        let (k_kd, t_kd) = time(|| kfunc::kd_tree_k(&pts, s, cfg));
        report::row("kd-tree", &[("n", nf), ("s", s)], msf(t_kd));
        let (k_ball, t_ball) = time(|| kfunc::ball_tree_k(&pts, s, cfg));
        report::row("ball-tree", &[("n", nf), ("s", s)], msf(t_ball));
        let (_, t_hist) = time(|| kfunc::histogram_k_all(&pts, &thresholds, cfg));
        report::row(
            "histogram",
            &[("n", nf), ("thresholds", thresholds.len() as f64)],
            msf(t_hist),
        );
        let (k_par, t_par) = time(|| kfunc::parallel_k(&pts, s, cfg, threads));
        report::row(
            "parallel",
            &[("n", nf), ("s", s), ("threads", threads as f64)],
            msf(t_par),
        );
        assert!(k_grid == k_kd && k_kd == k_ball && k_ball == k_par);
        println!(
            "| {n} | {naive_col} | {} ms | {} ms | {} ms | {} ms | {} ms |",
            ms(t_grid),
            ms(t_kd),
            ms(t_ball),
            ms(t_hist),
            ms(t_par)
        );
    }
}

// ---------------------------------------------------------------- E6 ----
fn e6() {
    let (net, events) = road_scenario(25, 3_000);
    let lixels = Lixels::build(&net, 25.0);
    let kernel = Quartic::new(500.0);
    println!(
        "network: {} vertices, {} edges, {:.0} km; {} events; {} lixels\n",
        net.vertex_count(),
        net.edge_count(),
        net.total_length() / 1000.0,
        events.len(),
        lixels.len()
    );
    let (fwd, t_fwd) = time(|| kdv::nkdv_forward(&net, &lixels, &events, kernel).unwrap());
    let lix_sub = Lixels::build(&net, 100.0); // coarser for the slow baseline
    let (_, t_naive_sub) = time(|| kdv::nkdv_naive(&net, &lix_sub, &events, kernel).unwrap());
    println!("| method | lixels | time |");
    println!("|---|---|---|");
    println!(
        "| per-lixel Dijkstra (naive) | {} | {} ms |",
        lix_sub.len(),
        ms(t_naive_sub)
    );
    println!(
        "| per-event forward scatter | {} | {} ms |",
        lixels.len(),
        ms(t_fwd)
    );

    // Fig. 3 quantification: planar density at lixel midpoints vs NKDV.
    let planar_events: Vec<Point> = events.iter().map(|e| e.point(&net)).collect();
    let spec = GridSpec::with_width(net.bbox().inflate(100.0), 200);
    let planar = kdv::grid_pruned_kdv(&planar_events, spec, kernel, 1e-9);
    let mids = lixels.midpoints(&net);
    let mut over = 0usize;
    let mut max_ratio: f64 = 1.0;
    for (i, mid) in mids.iter().enumerate() {
        let (ix, iy) = spec.pixel_of(mid);
        let p = planar.at(ix, iy);
        let nv = fwd.values()[i];
        if p > nv + 1e-9 {
            over += 1;
            if nv > 1.0 {
                max_ratio = max_ratio.max(p / nv);
            }
        }
    }
    println!("\n| Fig. 3 quantity | value |");
    println!("|---|---|");
    println!(
        "| lixels where planar density > network density | {over}/{} ({:.0}%) |",
        mids.len(),
        100.0 * over as f64 / mids.len() as f64
    );
    println!("| max planar/network overestimation ratio | {max_ratio:.1}x |");
}

// ---------------------------------------------------------------- E7 ----
fn e7() {
    let points = waves(100_000);
    let spec = GridSpec::new(window(), 125, 100);
    let (t0, t1, nt) = (0.0, 100.0, 10);
    let ks = Epanechnikov::new(400.0);
    let kt = PolyKernel::new(KernelKind::Epanechnikov, 8.0).unwrap();
    let (cube, t_sweep) = time(|| kdv::stkdv_sweep(&points, spec, t0, t1, nt, ks, kt, 1e-9));
    let small = waves(10_000);
    let (_, t_naive_small) = time(|| kdv::stkdv_naive(&small, spec, t0, t1, nt, ks, kt));
    println!("| method | n | cube | time |");
    println!("|---|---|---|---|");
    println!(
        "| naive O(XYTn) | 10000 | {}x{}x{nt} | {} ms |",
        spec.nx,
        spec.ny,
        ms(t_naive_small)
    );
    println!(
        "| temporal sweep (SWS-style) | 100000 | {}x{}x{nt} | {} ms |",
        spec.nx,
        spec.ny,
        ms(t_sweep)
    );
    println!("\n| day | hotspot (x, y) | peak density |");
    println!("|---|---|---|");
    for it in 0..nt {
        let slice = cube.slice(it);
        let hot = slice.hotspot();
        println!(
            "| {:.0} | ({:.0}, {:.0}) | {:.1} |",
            cube.time(it),
            hot.x,
            hot.y,
            slice.max()
        );
    }
    println!("\n(true wave 1 at (2500, 5500) day 20; wave 2 at (7500, 2500) day 75)");
}

// ---------------------------------------------------------------- E8 ----
fn e8() {
    let points = waves(4_000);
    let ss: Vec<f64> = (1..=5).map(|i| i as f64 * 150.0).collect();
    let ts: Vec<f64> = (1..=5).map(|i| i as f64 * 5.0).collect();
    let (plot, t) = time(|| {
        kfunc::st_k_plot(
            &points,
            window(),
            0.0,
            100.0,
            &ss,
            &ts,
            15,
            7,
            KConfig::default(),
        )
    });
    println!(
        "n = {}, {}x{} thresholds, 15 simulations, {} ms\n",
        points.len(),
        ss.len(),
        ts.len(),
        ms(t)
    );
    print!("| s \\ t |");
    for tt in &ts {
        print!(" {tt:.0} d |");
    }
    println!();
    print!("|---|");
    for _ in &ts {
        print!("---|");
    }
    println!();
    for (a, s) in ss.iter().enumerate() {
        print!("| {s:.0} m |");
        for b in 0..ts.len() {
            let obs = plot.at(a, b);
            let hot = obs > plot.upper[a * ts.len() + b];
            print!(" {obs}{} |", if hot { "\\*" } else { "" });
        }
        println!();
    }
    println!("\n(\\* = above the CSR envelope: meaningful space-time clustering)");
    println!(
        "clustered at {}/{} cells",
        plot.clustered_cells().len(),
        ss.len() * ts.len()
    );
}

// ---------------------------------------------------------------- E9 ----
fn e9() {
    let (net, events) = road_scenario(20, 1_600);
    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64 * 200.0).collect();
    let cfg = KConfig::default();
    let (shared, t_shared) = time(|| kfunc::network_k_shared(&net, &events, &thresholds, cfg));
    let (naive, t_naive) = time(|| kfunc::network_k_naive(&net, &events, &thresholds, cfg));
    assert_eq!(shared, naive);
    let planar_events: Vec<Point> = events.iter().map(|e| e.point(&net)).collect();
    let planar = kfunc::histogram_k_all(&planar_events, &thresholds, cfg);
    println!("| method | time |");
    println!("|---|---|");
    println!("| per-event Dijkstra (naive) | {} ms |", ms(t_naive));
    println!("| per-vertex shared Dijkstra | {} ms |", ms(t_shared));
    println!("\n| s (m) | K_network | K_planar | planar/network |");
    println!("|---|---|---|---|");
    for (i, s) in thresholds.iter().enumerate() {
        println!(
            "| {s:.0} | {} | {} | {:.2}x |",
            shared[i],
            planar[i],
            planar[i] as f64 / shared[i].max(1) as f64
        );
    }
}

// --------------------------------------------------------------- E10 ----
fn e10() {
    let readings = sensors(800);
    let spec = GridSpec::new(window(), 200, 160);
    let field = |p: &Point| {
        12.0 + 0.0005 * p.x
            + 60.0 * (-p.dist_sq(&Point::new(3_000.0, 6_000.0)) / 4.0e6).exp()
            + 40.0 * (-p.dist_sq(&Point::new(7_000.0, 2_500.0)) / 9.0e6).exp()
    };
    let rmse = |g: &DensityGrid| {
        let mut acc = 0.0;
        for (_, _, q, v) in g.iter_pixels() {
            let e = v - field(&q);
            acc += e * e;
        }
        (acc / g.spec().len() as f64).sqrt()
    };
    println!("| method | time | RMSE |");
    println!("|---|---|---|");
    let (g, t) = time(|| interp::idw_naive(&readings, spec, 2.0));
    println!("| IDW naive O(XYn) | {} ms | {:.2} |", ms(t), rmse(&g));
    let (g, t) = time(|| interp::idw_knn(&readings, spec, 2.0, 12));
    println!("| IDW kNN (k=12) | {} ms | {:.2} |", ms(t), rmse(&g));
    let (g, t) = time(|| interp::idw_radius(&readings, spec, 2.0, 1_500.0));
    println!("| IDW radius (1.5 km) | {} ms | {:.2} |", ms(t), rmse(&g));
    let ((bins, model), t_fit) = time(|| {
        let bins = interp::empirical_variogram(&readings, 5_000.0, 15);
        let model =
            interp::fit_variogram(&bins, interp::VariogramModelKind::Exponential).expect("fit");
        (bins, model)
    });
    let (kriged, t_k) =
        time(|| interp::ordinary_kriging(&readings, spec, &model, 16).expect("solve"));
    println!(
        "| ordinary kriging (16-NN, {} fit {} bins, {} ms) | {} ms | {:.2} |",
        model.kind.name(),
        bins.len(),
        ms(t_fit),
        ms(t_k),
        rmse(&kriged.prediction)
    );
    println!(
        "\nfitted variogram: nugget {:.1}, sill {:.1}, range {:.0} m",
        model.nugget,
        model.sill(),
        model.range
    );
}

// --------------------------------------------------------------- E11 ----
fn e11() {
    let spec = GridSpec::new(window(), 20, 16);
    let centers = areal::cell_centers(&spec);
    let w = SpatialWeights::distance_band(&centers, 700.0);
    println!("| dataset | Moran I | E[I] | z | p_perm | General G / E[G] | G z | G p_perm |");
    println!("|---|---|---|---|---|---|---|---|");
    for (name, pts) in [("clustered (crime)", crime(30_000)), ("CSR", csr(30_000))] {
        let counts = areal::quadrat_counts(&pts, spec);
        let moran = stats::morans_i(counts.values(), &w, 499, 1).expect("lattice");
        let g = stats::general_g(counts.values(), &w, 499, 2).expect("lattice");
        println!(
            "| {name} | {:.3} | {:.4} | {:.1} | {:.4} | {:.2} | {:.1} | {:.4} |",
            moran.i,
            moran.expected,
            moran.z_norm,
            moran.p_perm.unwrap(),
            g.g / g.expected,
            g.z,
            g.p_perm
        );
    }
}

// --------------------------------------------------------------- E12 ----
fn e12() {
    let points = taxi(1_000_000);
    let spec = GridSpec::new(window(), 256, 205);
    let kernel = Epanechnikov::new(150.0);
    println!("### distributed KDV (n = 1M, {}x{} px)\n", spec.nx, spec.ny);
    println!(
        "| workers | strategy | wall | slowest worker | imbalance | halo points | MB shipped |"
    );
    println!("|---|---|---|---|---|---|---|");
    let mut base_wall = None;
    for workers in [1usize, 2, 4, 8] {
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            let (_, m) = dist::distributed_kdv(&points, spec, kernel, 1e-9, workers, strategy);
            if workers == 1 && base_wall.is_none() {
                base_wall = Some(m.wall);
            }
            println!(
                "| {workers} | {strategy:?} | {} ms | {} ms | {:.2} | {} | {:.1} |",
                ms(m.wall),
                ms(m.compute_max()),
                m.load_imbalance(),
                m.replicated_points(),
                m.total_bytes() as f64 / 1e6
            );
        }
    }
    println!("\n### halo volume vs bandwidth (8 workers, BalancedKd)\n");
    println!("| bandwidth (m) | halo points | MB shipped |");
    println!("|---|---|---|");
    for b in [50.0, 150.0, 450.0] {
        let (_, m) = dist::distributed_kdv(
            &points,
            spec,
            Epanechnikov::new(b),
            1e-9,
            8,
            PartitionStrategy::BalancedKd,
        );
        println!(
            "| {b:.0} | {} | {:.1} |",
            m.replicated_points(),
            m.total_bytes() as f64 / 1e6
        );
    }
    println!("\n### distributed K-function (n = 300k, s = 200 m)\n");
    let kp = taxi(300_000);
    println!("| workers | wall | count |");
    println!("|---|---|---|");
    for workers in [1usize, 2, 4, 8] {
        let (k, m) = dist::distributed_k(
            &kp,
            200.0,
            KConfig::default(),
            workers,
            PartitionStrategy::BalancedKd,
        );
        println!("| {workers} | {} ms | {k} |", ms(m.wall));
    }
}

// --------------------------------------------------------------- E13 ----
fn e13() {
    let points = crime(100_000);
    let spec = GridSpec::new(window(), 128, 102);
    let kernel = Gaussian::new(400.0);
    let exact = kdv::grid_pruned_kdv(&points, spec, kernel, 1e-12);
    println!("### bounds method (Eq. 6): guarantee vs observed\n");
    println!("| eps | time | observed max relative error |");
    println!("|---|---|---|");
    let engine = kdv::BoundsKdv::new(&points);
    for eps in [0.01, 0.05, 0.2, 0.5] {
        let (approx, t) = time(|| engine.compute(spec, kernel, eps));
        let rel = approx.rel_diff(&exact, exact.max() * 1e-6);
        assert!(rel <= eps + 1e-9, "guarantee violated: {rel} > {eps}");
        println!("| {eps} | {} ms | {rel:.4} |", ms(t));
    }
    println!("\n### sampling method (Eq. 7): Hoeffding bound vs observed\n");
    println!("| m | implied (eps, delta=0.01) | time | observed Linf / (n K(0)) |");
    println!("|---|---|---|---|");
    for m in [500usize, 2_000, 8_000, 32_000] {
        // Invert m = ln(2/delta)/(2 eps^2).
        let eps = ((2.0f64 / 0.01).ln() / (2.0 * m as f64)).sqrt();
        let (approx, t) = time(|| kdv::sampling_kdv(&points, spec, kernel, m, 9));
        let obs = approx.linf_diff(&exact) / (points.len() as f64 * kernel.max_value());
        println!("| {m} | eps = {eps:.4} | {} ms | {obs:.5} |", ms(t));
    }
}

// --------------------------------------------------------------- E14 ----
fn e14() {
    let points = crime(100_000);
    let spec = GridSpec::new(window(), 128, 102);
    println!("| bandwidths B | independent passes | SAFE shared | speedup |");
    println!("|---|---|---|---|");
    for nb in [1usize, 2, 4, 8, 16] {
        let bws: Vec<f64> = (1..=nb).map(|i| 60.0 * i as f64).collect();
        let (indep, t_ind) = time(|| {
            kdv::independent_multi_bandwidth(&points, spec, KernelKind::Epanechnikov, &bws)
        });
        let (shared, t_sh) =
            time(|| kdv::safe_multi_bandwidth(&points, spec, KernelKind::Epanechnikov, &bws));
        for (a, b) in indep.iter().zip(&shared) {
            assert!(a.rel_diff(b, a.max().max(1e-9) * 1e-3) < 1e-9);
        }
        println!(
            "| {nb} | {} ms | {} ms | {:.2}x |",
            ms(t_ind),
            ms(t_sh),
            t_ind.as_secs_f64() / t_sh.as_secs_f64()
        );
    }
}

// --------------------------------------------------------------- E15 ----
fn e15() {
    let hotspots = [
        Hotspot {
            center: Point::new(2_000.0, 2_000.0),
            sigma: 250.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(8_000.0, 3_000.0),
            sigma: 250.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(5_000.0, 6_500.0),
            sigma: 250.0,
            weight: 1.0,
        },
    ];
    println!("| n | DBSCAN time | clusters | DBSCAN ARI | K-means time | K-means ARI |");
    println!("|---|---|---|---|---|---|");
    for n in [3_000usize, 30_000, 100_000] {
        let (pts, truth) = data::gaussian_mixture_labeled(n, &hotspots, window(), 5);
        let want: Vec<i64> = truth.iter().map(|l| *l as i64).collect();
        let (db, t_db) = time(|| stats::dbscan(&pts, 220.0, 10));
        let got_db: Vec<i64> = db.labels.iter().map(|l| *l as i64).collect();
        let (km, t_km) = time(|| stats::kmeans(&pts, 3, 100, 1));
        let got_km: Vec<i64> = km.labels.iter().map(|l| *l as i64).collect();
        println!(
            "| {n} | {} ms | {} | {:.3} | {} ms | {:.3} |",
            ms(t_db),
            db.n_clusters,
            stats::adjusted_rand_index(&got_db, &want),
            ms(t_km),
            stats::adjusted_rand_index(&got_km, &want)
        );
    }
}

// --------------------------------------------------------------- E16 ----
fn e16() {
    let points = taxi(200_000);
    let thresholds = [150.0, 300.0];
    let cfg = KConfig::default();
    let (truth, t_exact) = time(|| kfunc::histogram_k_all(&points, &thresholds, cfg));
    println!("### sampling estimator for the K-function (paper §2.4 future work)\n");
    println!(
        "exact histogram K at n = {}: {} ms, K(150) = {}, K(300) = {}\n",
        points.len(),
        ms(t_exact),
        truth[0],
        truth[1]
    );
    println!("| m | time | est. K(150) | rel. err | est. K(300) | rel. err |");
    println!("|---|---|---|---|---|---|");
    for m in [2_000usize, 8_000, 32_000] {
        let (est, t) = time(|| kfunc::sampled_k(&points, &thresholds, m, 7, cfg));
        println!(
            "| {m} | {} ms | {:.3e} | {:.3} | {:.3e} | {:.3} |",
            ms(t),
            est[0],
            (est[0] - truth[0] as f64).abs() / truth[0] as f64,
            est[1],
            (est[1] - truth[1] as f64).abs() / truth[1] as f64
        );
    }
    println!("\n### border edge correction (CSR, theory K(s) = pi s^2)\n");
    let unif = csr(30_000);
    println!("| s | raw Ripley K^ | border-corrected K^ | theory | sources kept |");
    println!("|---|---|---|---|---|");
    for s in [200.0, 500.0, 1_000.0] {
        let raw =
            kfunc::ripley_normalization(kfunc::grid_k(&unif, s, cfg), unif.len(), window().area());
        let corr = kfunc::border_corrected_k(&unif, window(), &[s]);
        let theory = std::f64::consts::PI * s * s;
        println!(
            "| {s:.0} | {raw:.0} | {:.0} | {theory:.0} | {} |",
            corr[0].0, corr[0].1
        );
    }
}

// --------------------------------------------------------------- E17 ----
fn e17() {
    let spec = GridSpec::new(window(), 256, 205);
    let b = 400.0;
    let kernel = Gaussian::new(b);
    println!("| n | exact grid-pruned | binned os=4 | binned os=8 | rel err (os=8) |");
    println!("|---|---|---|---|---|");
    for n in [30_000usize, 100_000, 300_000] {
        let pts = crime(n);
        let (exact, t_exact) = time(|| kdv::grid_pruned_kdv(&pts, spec, kernel, 1e-9));
        let (_, t4) = time(|| kdv::binned_gaussian_kdv(&pts, spec, kernel, 4, 1e-9));
        let (g8, t8) = time(|| kdv::binned_gaussian_kdv(&pts, spec, kernel, 8, 1e-9));
        println!(
            "| {n} | {} ms | {} ms | {} ms | {:.4} |",
            ms(t_exact),
            ms(t4),
            ms(t8),
            g8.rel_diff(&exact, exact.max() * 1e-2)
        );
    }
}

// --------------------------------------------------------------- E18 ----
fn e18() {
    let points = crime(50_000);
    let spec = GridSpec::new(window(), 20, 16);
    let counts = areal::quadrat_counts(&points, spec);
    let centers = areal::cell_centers(&spec);
    let w = SpatialWeights::distance_band(&centers, 700.0);
    let (gi, t_gi) = time(|| stats::local_gi_star(counts.values(), &w));
    let (lisa, t_lisa) = time(|| stats::local_morans_i(counts.values(), &w, 199, 3).unwrap());
    let hot = gi.iter().filter(|r| r.value > 1.96).count();
    let cold = gi.iter().filter(|r| r.value < -1.96).count();
    let sig_lisa = lisa.iter().filter(|r| r.p < 0.05).count();
    println!("| quantity | value |");
    println!("|---|---|");
    println!("| quadrats | {} |", spec.len());
    println!("| Gi* time | {} ms |", ms(t_gi));
    println!("| hot spots (z > 1.96) | {hot} |");
    println!("| cold spots (z < -1.96) | {cold} |");
    println!("| LISA time (199 perms) | {} ms |", ms(t_lisa));
    println!("| significant LISA cells (p < 0.05) | {sig_lisa} |");
    // The generating hotspot cells must be flagged hot.
    let (hx, hy) = spec.pixel_of(&Point::new(2_500.0, 2_000.0));
    let z = gi[hy * spec.nx + hx].value;
    println!("| Gi* z at true hotspot cell | {z:.1} |");
    assert!(z > 1.96, "hotspot not detected");
}

// --------------------------------------------------------------- E19 ----
fn e19() {
    use lsga::dist::{FaultKind, FaultPlan, RetryPolicy};
    let points = taxi(300_000);
    let spec = GridSpec::new(window(), 256, 205);
    let kernel = Epanechnikov::new(150.0);
    let workers = 8usize;
    let strategy = PartitionStrategy::BalancedKd;
    let policy = RetryPolicy::default();

    let (reference, base) = dist::distributed_kdv(&points, spec, kernel, 1e-9, workers, strategy);
    let scenarios: [(&str, FaultPlan); 5] = [
        ("fault-free", FaultPlan::none()),
        (
            "1 worker crash",
            FaultPlan::none().with(0, 0, FaultKind::CrashMidTask),
        ),
        (
            "straggler past deadline",
            FaultPlan::none().with(1, 0, FaultKind::Straggle { ticks: 1_000 }),
        ),
        (
            "dropped halo shipment",
            FaultPlan::none().with(2, 0, FaultKind::DropHaloShipment),
        ),
        (
            "seeded chaos (12 faults)",
            FaultPlan::seeded_recoverable(7, workers, 12),
        ),
    ];

    println!(
        "### supervised distributed KDV (n = {}, {}x{} px, {workers} workers, BalancedKd)\n",
        points.len(),
        spec.nx,
        spec.ny
    );
    println!("| scenario | retries | timeouts | recovered tiles | dead workers | re-shipped MB | total MB | sim ticks | wall | identical |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for (name, plan) in &scenarios {
        let (partial, m) = dist::supervised_kdv(
            &points, spec, kernel, 1e-9, workers, strategy, plan, &policy,
        )
        .expect("finite inputs");
        assert!(partial.coverage.is_complete(), "{name}: not recovered");
        let identical = partial
            .grid
            .values()
            .iter()
            .zip(reference.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "{name}: recovery changed bits");
        report::row(
            name,
            &[
                ("workers", workers as f64),
                ("retries", f64::from(m.total_retries())),
                ("reshipped_mb", m.total_reshipped_bytes() as f64 / 1e6),
                ("total_mb", m.total_bytes() as f64 / 1e6),
                ("sim_ticks", m.sim_ticks as f64),
            ],
            msf(m.wall),
        );
        println!(
            "| {name} | {} | {} | {} | {} | {:.1} | {:.1} | {} | {} ms | yes |",
            m.total_retries(),
            m.total_timeouts(),
            m.recovered_tiles,
            m.dead_workers,
            m.total_reshipped_bytes() as f64 / 1e6,
            m.total_bytes() as f64 / 1e6,
            m.sim_ticks,
            ms(m.wall)
        );
    }
    println!(
        "\nbaseline comms (fault-free): {:.1} MB shipped, wall {} ms",
        base.total_bytes() as f64 / 1e6,
        ms(base.wall)
    );

    // Graceful degradation: exhaust one tile's retry budget.
    let mut doomed = FaultPlan::none();
    for attempt in 0..policy.max_attempts {
        doomed.push(3, attempt, FaultKind::TaskError);
    }
    let (partial, m) = dist::supervised_kdv(
        &points, spec, kernel, 1e-9, workers, strategy, &doomed, &policy,
    )
    .expect("finite inputs");
    report::row(
        "degraded (tile abandoned)",
        &[
            ("workers", workers as f64),
            ("retries", f64::from(m.total_retries())),
            ("covered_fraction", partial.coverage.fraction()),
            ("sim_ticks", m.sim_ticks as f64),
        ],
        msf(m.wall),
    );
    println!(
        "\ndegraded run: {}/{} tiles executed, {:.1}% of pixels covered, abandoned tiles {:?}",
        partial.coverage.executed_tiles,
        partial.coverage.total_tiles,
        100.0 * partial.coverage.fraction(),
        partial.coverage.abandoned
    );
}

// ---------------------------------------------------------------- E20 ----
fn e20() {
    use lsga::obs::{self, Counter};
    let threads = hw_threads();
    let cfg = KConfig::default();

    // Part 1 — overhead: identical hot-path workloads with the collector
    // off, then on. The main loop enabled the collector before calling
    // us, so the untraced leg explicitly disables it.
    let points = crime(150_000);
    let spec = GridSpec::new(window(), 512, 410);
    let kernel = Epanechnikov::new(150.0);
    let kpts = taxi(30_000);
    let thresholds: Vec<f64> = (1..=8).map(|i| f64::from(i) * 60.0).collect();
    let readings = sensors(2_000);
    let ispec = GridSpec::new(window(), 256, 205);

    type Workload<'a> = (&'a str, Box<dyn Fn() + 'a>);
    let workloads: Vec<Workload> = vec![
        (
            "parallel KDV (n=150k, 512x410)",
            Box::new(|| {
                let _ = kdv::parallel_kdv(&points, spec, kernel, 1e-9, threads);
            }),
        ),
        (
            "histogram K (n=30k, 8 thresholds)",
            Box::new(|| {
                let _ = kfunc::histogram_k_all(&kpts, &thresholds, cfg);
            }),
        ),
        (
            "IDW k-NN (2k sensors, 256x205)",
            Box::new(|| {
                let _ = interp::idw_knn(&readings, ispec, 2.0, 12);
            }),
        ),
    ];
    // Interleave the legs (off, on, off, on, ...) so slow clock drift on
    // a shared machine cancels instead of landing entirely on one leg;
    // best-of-reps then discards transient contention.
    let reps = 5;
    println!("### collector overhead ({threads} threads, best of {reps}, interleaved)\n");
    println!("| workload | untraced | traced | overhead |");
    println!("|---|---|---|---|");
    obs::reset();
    for (name, f) in &workloads {
        let mut un = Duration::MAX;
        let mut tr = Duration::MAX;
        for _ in 0..reps {
            obs::disable();
            un = un.min(time(f).1);
            obs::enable();
            tr = tr.min(time(f).1);
        }
        let pct = 100.0 * (tr.as_secs_f64() / un.as_secs_f64() - 1.0);
        println!("| {name} | {} ms | {} ms | {pct:+.1}% |", ms(un), ms(tr));
        report::row(
            name,
            &[("untraced_ms", msf(un)), ("overhead_pct", pct)],
            msf(tr),
        );
    }
    let snap = obs::drain();
    println!("\n### collector summary (traced leg)\n");
    println!("{}", snap.summary());
    if std::fs::write("OBS_E20_trace.json", snap.chrome_trace()).is_ok() {
        println!(
            "[wrote OBS_E20_trace.json — {} events, load in chrome://tracing]",
            snap.events().len()
        );
    }

    // Part 2 — audit: work counters vs the closed-form cost models the
    // paper quotes. Left in the registry so the main loop exports them
    // as OBS_E20.json.
    obs::enable();
    let apts = crime(20_000);
    let n = apts.len() as u64;
    let aspec = GridSpec::new(window(), 64, 51);
    let _ = kdv::naive_kdv(&apts, aspec, kernel);
    let _ = kfunc::naive_k(&apts, 300.0, cfg);
    let kdv_pairs = obs::counter_value(Counter::KdvPairs);
    let k_pairs = obs::counter_value(Counter::KfuncPairs);
    let kdv_expect = 64 * 51 * n;
    let k_expect = n * (n - 1) / 2;
    assert_eq!(kdv_pairs, kdv_expect, "naive KDV must count X·Y·n pairs");
    assert_eq!(k_pairs, k_expect, "naive K must count n(n-1)/2 pairs");
    println!("\n### counter audit (n = {n})\n");
    println!("| counter | measured | analytic model | match |");
    println!("|---|---|---|---|");
    println!("| kdv.pairs_evaluated | {kdv_pairs} | X·Y·n = {kdv_expect} | yes |");
    println!("| kfunc.pairs_evaluated | {k_pairs} | n(n−1)/2 = {k_expect} | yes |");
    report::row(
        "counter audit",
        &[
            ("kdv_pairs", kdv_pairs as f64),
            ("kfunc_pairs", k_pairs as f64),
        ],
        0.0,
    );
}

// ---------------------------------------------------------------- E21 ----
fn e21() {
    use lsga::core::par::Threads;
    use lsga::obs::{self, Counter};
    use lsga::serve::{TileCoord, TileServer, TileServerConfig};
    use std::sync::{Arc, Barrier};

    let n = 150_000;
    let points = crime(n);
    let kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let tile_px = 256;
    let server = Arc::new(TileServer::new(TileServerConfig {
        tile_px,
        max_zoom: 5,
        shards: 16,
        // Generous: the experiment's working set (~81 × 0.5 MB tiles)
        // must fit even in the worst-hashed shard, or eviction would
        // blur the invalidation accounting below.
        byte_budget: 256 << 20,
        threads: Threads::exact(hw_threads()),
        ..TileServerConfig::default()
    }));
    let layer = server
        .add_layer(points, window(), kernel, 1e-9)
        .expect("crime layer");
    let delta = |c: Counter, before: u64| obs::counter_value(c) - before;

    // Part 1 — cold vs warm: a 16-tile zoom-2 viewport, first from an
    // empty cache (every tile computed), then repeated (every tile a
    // cache hit).
    let viewport: Vec<TileCoord> = (0..4)
        .flat_map(|x| (0..4).map(move |y| TileCoord::new(2, x, y)))
        .collect();
    let h0 = obs::counter_value(Counter::ServeCacheHits);
    let m0 = obs::counter_value(Counter::ServeCacheMisses);
    let c0 = obs::counter_value(Counter::ServeTilesComputed);
    let (_, t_cold) = time(|| server.get_tiles(layer, &viewport).expect("cold batch"));
    let cold_computed = delta(Counter::ServeTilesComputed, c0);
    let (_, t_warm) = time(|| server.get_tiles(layer, &viewport).expect("warm batch"));
    let hits = delta(Counter::ServeCacheHits, h0);
    let misses = delta(Counter::ServeCacheMisses, m0);
    let hit_rate = 100.0 * hits as f64 / (hits + misses) as f64;
    let speedup = t_cold.as_secs_f64() / t_warm.as_secs_f64();
    println!("| phase | tiles | time | per tile |");
    println!("|---|---|---|---|");
    println!(
        "| cold viewport (z=2, 16 tiles, {cold_computed} computed) | 16 | {} ms | {:.1} ms |",
        ms(t_cold),
        msf(t_cold) / 16.0
    );
    println!(
        "| warm viewport ({hits} hits / {} requests, {hit_rate:.0}% hit rate) | 16 | {} ms | {:.3} ms |",
        hits + misses,
        ms(t_warm),
        msf(t_warm) / 16.0
    );
    println!("| warm speedup | | {speedup:.0}x | |");
    report::row(
        "cold viewport z2",
        &[("tiles", 16.0), ("computed", cold_computed as f64)],
        msf(t_cold),
    );
    report::row(
        "warm viewport z2",
        &[("hit_rate_pct", hit_rate), ("speedup_x", speedup)],
        msf(t_warm),
    );

    // Part 2 — single-flight: 16 threads storm one cold zoom-4 tile.
    // The compute hook holds the leader until all 15 followers have
    // parked, so the coalescing factor is exact, not racy.
    let w0 = obs::counter_value(Counter::ServeCoalescedWaits);
    let c1 = obs::counter_value(Counter::ServeTilesComputed);
    server.set_compute_hook(Some(Arc::new(move |_| {
        while obs::counter_value(Counter::ServeCoalescedWaits) - w0 < 15 {
            std::thread::yield_now();
        }
    })));
    let barrier = Arc::new(Barrier::new(16));
    let (_, t_storm) = time(|| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    server.get_tile(0, 4, 9, 7).expect("storm tile")
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread");
        }
    });
    server.set_compute_hook(None);
    let storm_computed = delta(Counter::ServeTilesComputed, c1);
    let coalesced = delta(Counter::ServeCoalescedWaits, w0);
    println!("\n| single-flight storm | value |");
    println!("|---|---|");
    println!("| concurrent requests | 16 |");
    println!("| computations | {storm_computed} |");
    println!("| coalesced waits | {coalesced} |");
    println!(
        "| coalescing factor | {:.0}x |",
        16.0 / storm_computed as f64
    );
    assert_eq!(storm_computed, 1, "single-flight must compute once");
    assert_eq!(coalesced, 15, "15 requests must coalesce");
    report::row(
        "single-flight storm",
        &[("requests", 16.0), ("computed", storm_computed as f64)],
        msf(t_storm),
    );

    // Part 3 — append-driven invalidation: warm all of zoom 2 and 3
    // (16 + 64 tiles), then land 1 000 new points in one hotspot.
    // Only tiles within kernel reach of the batch's bbox recompute.
    let z3: Vec<TileCoord> = (0..8)
        .flat_map(|x| (0..8).map(move |y| TileCoord::new(3, x, y)))
        .collect();
    let _ = server.get_tiles(layer, &z3).expect("warm z3");
    let cached_before = server.cached_tiles();
    let fresh = data::gaussian_mixture(
        1_000,
        &[Hotspot {
            center: Point::new(2_500.0, 2_000.0),
            sigma: 200.0,
            weight: 1.0,
        }],
        window(),
        777,
    );
    let i0 = obs::counter_value(Counter::ServeTilesInvalidated);
    let (_, t_insert) = time(|| server.insert_points(layer, &fresh).expect("insert"));
    let invalidated = delta(Counter::ServeTilesInvalidated, i0);
    let c2 = obs::counter_value(Counter::ServeTilesComputed);
    let (_, t_reheat) = time(|| {
        server.get_tiles(layer, &viewport).expect("reheat z2");
        server.get_tiles(layer, &z3).expect("reheat z3");
    });
    let recomputed = delta(Counter::ServeTilesComputed, c2);
    println!("\n| post-insert | value |");
    println!("|---|---|");
    println!("| cached tiles before insert | {cached_before} |");
    println!("| points inserted | 1000 |");
    println!("| tiles invalidated | {invalidated} |");
    println!(
        "| insert (rebuild index + invalidate) | {} ms |",
        ms(t_insert)
    );
    println!(
        "| re-request both viewports | {} ms ({recomputed} recomputed) |",
        ms(t_reheat)
    );
    assert_eq!(
        invalidated, recomputed,
        "exactly the invalidated tiles recompute"
    );
    assert!(
        invalidated < cached_before as u64,
        "localized insert must not dirty the whole pyramid"
    );
    report::row(
        "insert 1k points",
        &[
            ("invalidated", invalidated as f64),
            ("cached_before", cached_before as f64),
        ],
        msf(t_insert),
    );
    report::row(
        "re-request after insert",
        &[("recomputed", recomputed as f64)],
        msf(t_reheat),
    );
    println!(
        "\ncache: {} tiles resident, {:.1} MB",
        server.cached_tiles(),
        server.cache_bytes() as f64 / (1024.0 * 1024.0)
    );
}

// ---------------------------------------------------------------- E22 ----
fn e22() {
    use lsga::core::par::Threads;
    use lsga::index::GridIndex;
    use lsga::obs::{self, Counter};
    use lsga::serve::{compute_tile_direct, TileCoord, TileServer, TileServerConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let n0 = 100_000;
    let batch_len = 1_000;
    let batches = 50usize;
    let mut points = crime(n0);
    let kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let radius = kernel.effective_radius(1e-9);
    let server = Arc::new(TileServer::new(TileServerConfig {
        tile_px: 256,
        max_zoom: 5,
        shards: 16,
        byte_budget: 256 << 20,
        threads: Threads::exact(hw_threads()),
        ..TileServerConfig::default()
    }));
    let layer = server
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("crime layer");
    let fresh: Vec<Vec<Point>> = (0..batches)
        .map(|b| {
            data::gaussian_mixture(
                batch_len,
                &[Hotspot {
                    center: Point::new(2_500.0, 2_000.0),
                    sigma: 300.0,
                    weight: 1.0,
                }],
                window(),
                900 + b as u64,
            )
        })
        .collect();

    // Baseline — what every batch cost before the segment stack: clone
    // the n-point sequence and rebuild the monolithic index over
    // n + batch points. Measured directly (no server) at n = 100k.
    let (_, t_mono) = time(|| {
        let mut all = points.clone();
        all.extend_from_slice(&fresh[0]);
        GridIndex::with_bbox(&all, radius, window())
    });

    // Part 1 — sustained ingest: land the 50 batches, timing each
    // `insert_points` (batch index + tier compaction + swap + sweep).
    let s0 = obs::counter_value(Counter::IngestSegmentsCreated);
    let m0 = obs::counter_value(Counter::IngestSegmentsMerged);
    let b0 = obs::counter_value(Counter::IngestMergeBytes);
    let mut append_ms: Vec<f64> = Vec::with_capacity(batches);
    for batch in &fresh {
        let (_, t) = time(|| server.insert_points(layer, batch).expect("insert"));
        append_ms.push(msf(t));
        points.extend_from_slice(batch);
    }
    let avg_append = append_ms.iter().sum::<f64>() / batches as f64;
    let max_append = append_ms.iter().cloned().fold(0.0, f64::max);
    let speedup = msf(t_mono) / avg_append;
    let depth = server.segment_count(layer).expect("depth");
    let merged = obs::counter_value(Counter::IngestSegmentsMerged) - m0;
    let merge_mb = (obs::counter_value(Counter::IngestMergeBytes) - b0) as f64 / (1024.0 * 1024.0);
    assert_eq!(
        obs::counter_value(Counter::IngestSegmentsCreated) - s0,
        batches as u64,
        "one segment per batch, never a rebuild"
    );
    println!("| append path (batch = {batch_len} pts onto {n0}) | value |");
    println!("|---|---|");
    println!(
        "| monolithic rebuild (seed design, measured) | {} ms |",
        ms(t_mono)
    );
    println!("| segmented append, mean of {batches} | {avg_append:.3} ms |");
    println!("| segmented append, max (compaction batch) | {max_append:.3} ms |");
    println!("| speedup vs rebuild | {speedup:.0}x |");
    println!("| final stack depth | {depth} segments |");
    println!("| segments merged / bytes rewritten | {merged} / {merge_mb:.1} MB |");
    report::row(
        "append 1k batch",
        &[
            ("mono_rebuild_ms", msf(t_mono)),
            ("max_append_ms", max_append),
            ("speedup_x", speedup),
            ("final_depth", depth as f64),
        ],
        avg_append,
    );

    // Part 2 — read cost across the stack: the same cold zoom-3 tile
    // computed against depth-1 (fresh monolithic oracle) vs the final
    // multi-segment stack, plus bit-identity of the served result.
    let c = TileCoord::new(3, 1, 1);
    let (direct, t_direct) = time(|| compute_tile_direct(&points, &window(), kernel, 1e-9, 256, c));
    server.clear_cache();
    let (tile, t_seg) = time(|| server.get_tile(layer, c.z, c.x, c.y).expect("cold tile"));
    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "segmented read diverged from oracle"
        );
    }
    println!("\n| cold read, zoom-3 hotspot tile | value |");
    println!("|---|---|");
    println!(
        "| monolithic rebuild + compute (oracle) | {} ms |",
        ms(t_direct)
    );
    println!("| served from {depth}-segment stack | {} ms |", ms(t_seg));
    println!("| bit-identical | yes ({} px) |", tile.grid.values().len());
    report::row(
        "cold read depth vs mono",
        &[("oracle_ms", msf(t_direct)), ("depth", depth as f64)],
        msf(t_seg),
    );

    // Part 3 — reads during sustained ingest: 4 reader threads hammer a
    // warm far-corner viewport (outside kernel reach of the hotspot
    // batches, so never invalidated) while the writer lands 20 more
    // batches. Warm hits check the cache before any lock and the layer
    // table is an RwLock, so reader latency must not degrade behind
    // the writer — the contention note in EXPERIMENTS.md E22.
    let far: Vec<TileCoord> = (6..8)
        .flat_map(|x| (6..8).map(move |y| TileCoord::new(3, x, y)))
        .collect();
    let _ = server.get_tiles(layer, &far).expect("warm far viewport");
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let h1 = obs::counter_value(Counter::ServeCacheHits);
    let readers: Vec<_> = (0..4)
        .map(|t: usize| {
            let server = Arc::clone(&server);
            let far = far.clone();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let c = far[i % far.len()];
                    let _ = server.get_tile(layer, c.z, c.x, c.y).expect("warm get");
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    let (_, t_ingest) = time(|| {
        for b in 0..20usize {
            let batch = data::gaussian_mixture(
                batch_len,
                &[Hotspot {
                    center: Point::new(2_500.0, 2_000.0),
                    sigma: 300.0,
                    weight: 1.0,
                }],
                window(),
                2_000 + b as u64,
            );
            server
                .insert_points(layer, &batch)
                .expect("insert under read");
        }
    });
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }
    let warm_reads = reads.load(Ordering::Relaxed);
    let warm_hits = obs::counter_value(Counter::ServeCacheHits) - h1;
    let reads_per_s = warm_reads as f64 / t_ingest.as_secs_f64();
    println!("\n| reads during sustained ingest (20 batches) | value |");
    println!("|---|---|");
    println!("| warm reads completed | {warm_reads} ({warm_hits} cache hits) |");
    println!("| read throughput under writer | {reads_per_s:.0} tiles/s |");
    println!("| ingest wall time | {} ms |", ms(t_ingest));
    assert!(
        warm_hits >= warm_reads,
        "far viewport must never be invalidated by hotspot batches"
    );
    report::row(
        "reads under ingest",
        &[
            ("reads_per_s", reads_per_s),
            ("warm_reads", warm_reads as f64),
        ],
        msf(t_ingest),
    );
}

// ---------------------------------------------------------------- E23 ---
fn e23() {
    use lsga::core::par::Threads;
    use lsga::serve::{
        compute_tile_direct, ApproxMode, QualityPolicy, TileCoord, TileServer, TileServerConfig,
        TileTier,
    };
    use lsga_bench::load::{run_load, LoadConfig};

    let n = 100_000;
    let points = crime(n);
    let kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let (eps, delta) = (0.1, 0.01);
    let tile_px = 128u32;
    // ~45 tiles of 128² f64 fit the budget, out of a 341-tile pyramid:
    // the Zipf head stays resident, the tail thrashes, so cold exact
    // computes keep arriving for the whole run instead of only during a
    // fill phase.
    let cfg = || TileServerConfig {
        tile_px: tile_px as usize,
        max_zoom: 4,
        shards: 8,
        byte_budget: 6 << 20,
        threads: Threads::exact(hw_threads()),
        ..TileServerConfig::default()
    };
    let zipf_s = 1.1;
    let workers = 32;
    let seed = 4242;

    // Calibration on a throwaway server: one cold exact tile for the
    // deadline, then a closed-loop run for the sustainable exact-path
    // throughput under this exact trace (cache hits, misses, eviction
    // churn included). 2.5× that rate is the overload point.
    let calib = TileServer::new(cfg());
    let layer = calib
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("calibration layer");
    let (_, t_tile) = time(|| calib.get_tile(layer, 4, 7, 7).expect("cold tile"));
    let closed = LoadConfig {
        workers,
        rate_rps: None,
        warmup: 200,
        requests: 600,
        zipf_s,
        seed,
    };
    let cap = run_load(&calib, layer, &closed, None);
    drop(calib);
    let overload_rps = cap.achieved_rps * 2.5;
    println!("| calibration | value |");
    println!("|---|---|");
    println!(
        "| points / pyramid | {n} pts, zoom ≤ 4 ({} px tiles) |",
        tile_px
    );
    println!("| cold exact tile | {} ms |", ms(t_tile));
    println!(
        "| closed-loop capacity ({workers} workers) | {:.0} req/s |",
        cap.achieved_rps
    );
    println!("| open-loop overload rate (2.5×) | {overload_rps:.0} req/s |");
    report::row(
        "calibration",
        &[
            ("capacity_rps", cap.achieved_rps),
            ("overload_rps", overload_rps),
        ],
        msf(t_tile),
    );

    // The two head-to-head runs replay the *same* seeded trace at the
    // same overload rate against fresh servers; only the policy differs.
    let open = LoadConfig {
        workers,
        rate_rps: Some(overload_rps),
        warmup: 300,
        requests: 2_000,
        zipf_s,
        seed,
    };

    let exact_srv = TileServer::new(cfg());
    let layer_a = exact_srv
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("exact-run layer");
    let exact_rep = run_load(&exact_srv, layer_a, &open, None);
    drop(exact_srv);

    let deadline = t_tile.mul_f64(2.0);
    let policy = QualityPolicy::new(
        deadline,
        ApproxMode::Sampling {
            eps,
            delta,
            seed: 7,
        },
    )
    .expect("tier policy");
    let tiered_srv = TileServer::new(cfg());
    let layer_b = tiered_srv
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("tiered-run layer");
    // Seed the admission EWMA so the controller is armed from the first
    // measured request instead of only after its first exact compute.
    tiered_srv.set_compute_estimate(t_tile);
    let tiered_rep = run_load(&tiered_srv, layer_b, &open, Some(&policy));

    println!(
        "\n| open loop @ {overload_rps:.0} req/s, {} reqs | p50 | p99 | p999 | max | degraded |",
        open.requests
    );
    println!("|---|---|---|---|---|---|");
    println!(
        "| exact only | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | 0% |",
        exact_rep.p50_ms, exact_rep.p99_ms, exact_rep.p999_ms, exact_rep.max_ms
    );
    println!(
        "| tiered (deadline {:.1} ms, ε = {eps}) | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1}% |",
        deadline.as_secs_f64() * 1e3,
        tiered_rep.p50_ms,
        tiered_rep.p99_ms,
        tiered_rep.p999_ms,
        tiered_rep.max_ms,
        tiered_rep.degraded_frac * 100.0
    );
    println!(
        "| p999 ratio (tiered / exact) | {:.3} |  |  |  |  |",
        tiered_rep.p999_ms / exact_rep.p999_ms
    );
    report::row(
        "exact only",
        &[
            ("p50_ms", exact_rep.p50_ms),
            ("p99_ms", exact_rep.p99_ms),
            ("p999_ms", exact_rep.p999_ms),
            ("degraded_frac", 0.0),
            ("achieved_rps", exact_rep.achieved_rps),
        ],
        exact_rep.p999_ms,
    );
    report::row(
        "tiered",
        &[
            ("p50_ms", tiered_rep.p50_ms),
            ("p99_ms", tiered_rep.p99_ms),
            ("p999_ms", tiered_rep.p999_ms),
            ("degraded_frac", tiered_rep.degraded_frac),
            ("achieved_rps", tiered_rep.achieved_rps),
        ],
        tiered_rep.p999_ms,
    );
    assert!(
        tiered_rep.degraded > 0,
        "overload must push some requests onto the degraded tier"
    );
    assert!(
        tiered_rep.p999_ms <= 0.5 * exact_rep.p999_ms,
        "tiered p999 {:.1} ms must be ≤ 0.5× exact-only p999 {:.1} ms",
        tiered_rep.p999_ms,
        exact_rep.p999_ms
    );

    // Guarantee audit on a fresh server: force every miss onto the
    // degraded tier, check each degraded raster against the exact
    // oracle within the Hoeffding bound ε·n·K(0), then drain the
    // refinement queue and require the cache to hold bit-identical
    // exact tiles.
    let verif = TileServer::new(cfg());
    let layer_v = verif
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("verification layer");
    verif.set_compute_estimate(Duration::from_secs(1));
    let force = QualityPolicy::new(
        Duration::ZERO,
        ApproxMode::Sampling {
            eps,
            delta,
            seed: 7,
        },
    )
    .expect("forced-degrade policy");
    let probes = [
        TileCoord::new(0, 0, 0),
        TileCoord::new(2, 1, 1),
        TileCoord::new(4, 8, 7),
    ];
    let bound = eps * n as f64 * kernel.max_value();
    let mut max_linf = 0.0f64;
    for c in probes {
        let tile = verif
            .get_tile_with_policy(layer_v, c.z, c.x, c.y, &force)
            .expect("degraded probe");
        assert!(
            !tile.tier.is_exact(),
            "forced degrade must stamp a degraded tier"
        );
        let oracle = compute_tile_direct(&points, &window(), kernel, 1e-9, tile_px as usize, c);
        let linf = tile
            .grid
            .values()
            .iter()
            .zip(oracle.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        // 2× slack absorbs the δ = 1% failure probability; a broken
        // estimator overshoots by orders of magnitude, not 2×.
        assert!(
            linf <= 2.0 * bound,
            "degraded tile {c:?} L∞ {linf:.3} exceeds Hoeffding bound {bound:.3}"
        );
        max_linf = max_linf.max(linf);
    }
    verif.set_compute_estimate(Duration::ZERO);
    verif.drain_refinements();
    for c in probes {
        assert!(
            matches!(
                verif.cached_tier(layer_v, c.z, c.x, c.y),
                Some(TileTier::Exact)
            ),
            "refinement must upgrade {c:?} to the exact tier"
        );
        let tile = verif
            .get_tile(layer_v, c.z, c.x, c.y)
            .expect("refined tile");
        let oracle = compute_tile_direct(&points, &window(), kernel, 1e-9, tile_px as usize, c);
        for (a, b) in tile.grid.values().iter().zip(oracle.values()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "refined tile diverged from oracle"
            );
        }
    }
    println!(
        "\n| guarantee audit ({} probe tiles) | value |",
        probes.len()
    );
    println!("|---|---|");
    println!("| Hoeffding bound ε·n·K(0) | {bound:.3} |");
    println!("| worst degraded L∞ vs oracle | {max_linf:.3} |");
    println!("| post-refinement tiles | bit-identical to direct compute |");
    report::row(
        "guarantee audit",
        &[("bound", bound), ("max_linf", max_linf)],
        0.0,
    );
}

// ---------------------------------------------------------------- E24 ---
fn e24() {
    use lsga::core::par::Threads;
    use lsga::http::{client, HttpServer, HttpServerConfig};
    use lsga::serve::{compute_tile_direct, TileCoord, TileServer, TileServerConfig};
    use lsga_bench::load::{run_load_http, LoadConfig};
    use std::sync::Arc;

    let n = 50_000;
    let points = crime(n);
    let kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let eps = 0.1;
    let tile_px = 64usize;
    // Same shape as E23 but sized down one notch: every request now
    // pays a TCP connect + parse + encode round trip, so the pyramid
    // uses 64 px tiles and the byte budget keeps only the Zipf head
    // resident (~32 of 341 tiles) to preserve a steady cold-compute mix.
    let cfg = || TileServerConfig {
        tile_px,
        max_zoom: 4,
        shards: 8,
        byte_budget: 1 << 20,
        threads: Threads::exact(hw_threads()),
        ..TileServerConfig::default()
    };
    let http_cfg = || HttpServerConfig {
        workers: 4,
        queue_cap: 64,
        ..HttpServerConfig::default()
    };
    let timeout = Duration::from_secs(30);
    let zipf_s = 1.1;
    let gen_workers = 16;
    let seed = 2424;

    // Calibration through the full stack: one cold served tile for the
    // deadline, then closed-loop capacity over sockets. 2.5× that is
    // the overload point, identical in spirit to E23's but measured
    // with the wire in the loop.
    let calib_tiles = Arc::new(TileServer::new(cfg()));
    let layer = calib_tiles
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("calibration layer");
    let calib = HttpServer::start(Arc::clone(&calib_tiles), http_cfg()).expect("calibration bind");
    let t0 = Instant::now();
    let cold =
        client::get(calib.local_addr(), "/tiles/0/4/7/7", &[], timeout).expect("cold served tile");
    let t_tile = t0.elapsed();
    assert_eq!(cold.status, 200, "calibration GET failed");
    let closed = LoadConfig {
        workers: gen_workers,
        rate_rps: None,
        warmup: 150,
        requests: 450,
        zipf_s,
        seed,
    };
    let cap = run_load_http(calib.local_addr(), layer, 4, &closed, None);
    calib.shutdown();
    let overload_rps = cap.achieved_rps * 2.5;
    println!("| calibration (served) | value |");
    println!("|---|---|");
    println!("| points / pyramid | {n} pts, zoom ≤ 4 ({tile_px} px tiles) |");
    println!(
        "| cold served tile (connect + compute + wire) | {} ms |",
        ms(t_tile)
    );
    println!(
        "| closed-loop capacity ({gen_workers} client workers) | {:.0} req/s |",
        cap.achieved_rps
    );
    println!("| open-loop overload rate (2.5×) | {overload_rps:.0} req/s |");
    report::row(
        "calibration",
        &[
            ("capacity_rps", cap.achieved_rps),
            ("overload_rps", overload_rps),
        ],
        msf(t_tile),
    );

    // Head to head over sockets: identical seeded trace, fresh server
    // each run, only the query string differs.
    let open = LoadConfig {
        workers: gen_workers,
        rate_rps: Some(overload_rps),
        warmup: 200,
        requests: 1_200,
        zipf_s,
        seed,
    };

    let exact_tiles = Arc::new(TileServer::new(cfg()));
    let layer_a = exact_tiles
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("exact-run layer");
    let exact_http = HttpServer::start(exact_tiles, http_cfg()).expect("exact bind");
    let exact_rep = run_load_http(exact_http.local_addr(), layer_a, 4, &open, None);
    exact_http.shutdown();

    let deadline_ms = ((t_tile.as_secs_f64() * 2e3).ceil() as u64).max(1);
    let tier_query = format!("deadline_ms={deadline_ms}&eps={eps}&delta=0.01&seed=7");
    let tiered_tiles = Arc::new(TileServer::new(cfg()));
    let layer_b = tiered_tiles
        .add_layer(points.clone(), window(), kernel, 1e-9)
        .expect("tiered-run layer");
    // Arm the admission EWMA before the first request, as in E23.
    tiered_tiles.set_compute_estimate(t_tile);
    let tiered_http =
        HttpServer::start(Arc::clone(&tiered_tiles), http_cfg()).expect("tiered bind");
    let tiered_rep = run_load_http(
        tiered_http.local_addr(),
        layer_b,
        4,
        &open,
        Some(&tier_query),
    );

    println!(
        "\n| served open loop @ {overload_rps:.0} req/s, {} reqs | p50 | p99 | p999 | max | degraded | rejected |",
        open.requests
    );
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| exact only | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | 0% | {:.1}% |",
        exact_rep.p50_ms,
        exact_rep.p99_ms,
        exact_rep.p999_ms,
        exact_rep.max_ms,
        exact_rep.rejected_frac * 100.0
    );
    println!(
        "| tiered (?deadline_ms={deadline_ms}, ε = {eps}) | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1}% | {:.1}% |",
        tiered_rep.p50_ms,
        tiered_rep.p99_ms,
        tiered_rep.p999_ms,
        tiered_rep.max_ms,
        tiered_rep.degraded_frac * 100.0,
        tiered_rep.rejected_frac * 100.0
    );
    println!(
        "| p999 ratio (tiered / exact) | {:.3} |  |  |  |  |  |",
        tiered_rep.p999_ms / exact_rep.p999_ms
    );
    report::row(
        "exact only",
        &[
            ("p50_ms", exact_rep.p50_ms),
            ("p99_ms", exact_rep.p99_ms),
            ("p999_ms", exact_rep.p999_ms),
            ("degraded_frac", 0.0),
            ("rejected_frac", exact_rep.rejected_frac),
            ("achieved_rps", exact_rep.achieved_rps),
        ],
        exact_rep.p999_ms,
    );
    report::row(
        "tiered",
        &[
            ("p50_ms", tiered_rep.p50_ms),
            ("p99_ms", tiered_rep.p99_ms),
            ("p999_ms", tiered_rep.p999_ms),
            ("degraded_frac", tiered_rep.degraded_frac),
            ("rejected_frac", tiered_rep.rejected_frac),
            ("achieved_rps", tiered_rep.achieved_rps),
        ],
        tiered_rep.p999_ms,
    );
    assert!(
        tiered_rep.degraded > 0,
        "served overload must push some requests onto the degraded tier"
    );
    // The wire adds the same constant cost to both runs, which
    // compresses the ratio relative to E23's in-process 0.5 floor.
    assert!(
        tiered_rep.p999_ms <= 0.6 * exact_rep.p999_ms,
        "served tiered p999 {:.1} ms must be ≤ 0.6× exact-only p999 {:.1} ms",
        tiered_rep.p999_ms,
        exact_rep.p999_ms
    );

    // Wire audit on the still-running tiered server, estimate cleared
    // so the exact path serves: the f64 payload must be bit-identical
    // to the direct computation, and the u8 payload within half a
    // quantization step.
    tiered_tiles.set_compute_estimate(Duration::ZERO);
    tiered_tiles.clear_cache();
    let probes = [
        TileCoord::new(0, 0, 0),
        TileCoord::new(2, 1, 1),
        TileCoord::new(4, 8, 7),
    ];
    let addr = tiered_http.local_addr();
    let mut bits_checked = 0usize;
    let mut u8_max_err_steps = 0.0f64;
    for c in probes {
        let oracle = compute_tile_direct(&points, &window(), kernel, 1e-9, tile_px, c);
        let f64_resp = client::get(
            addr,
            &format!("/tiles/{layer_b}/{}/{}/{}", c.z, c.x, c.y),
            &[],
            timeout,
        )
        .expect("f64 probe");
        assert_eq!(f64_resp.status, 200);
        let served = f64_resp.decode_f64();
        assert_eq!(served.len(), oracle.values().len());
        for (a, b) in served.iter().zip(oracle.values()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "served f64 tile {c:?} diverged from direct compute"
            );
        }
        bits_checked += served.len();

        let u8_resp = client::get(
            addr,
            &format!("/tiles/{layer_b}/{}/{}/{}?fmt=u8", c.z, c.x, c.y),
            &[],
            timeout,
        )
        .expect("u8 probe");
        assert_eq!(u8_resp.status, 200);
        let dec = u8_resp.decode_u8().expect("u8 range headers");
        let min: f64 = u8_resp.header("x-lsga-min").unwrap().parse().unwrap();
        let max: f64 = u8_resp.header("x-lsga-max").unwrap().parse().unwrap();
        let step = ((max - min) / 255.0).max(f64::MIN_POSITIVE);
        for (a, b) in dec.iter().zip(oracle.values()) {
            let err_steps = (a - b).abs() / step;
            assert!(
                err_steps <= 0.5 + 1e-9,
                "u8 tile {c:?} dequantization off by {err_steps:.3} steps"
            );
            u8_max_err_steps = u8_max_err_steps.max(err_steps);
        }
    }
    tiered_http.shutdown();
    println!("\n| wire audit ({} probe tiles) | value |", probes.len());
    println!("|---|---|");
    println!("| f64 pixels bit-compared | {bits_checked} (all identical) |");
    println!(
        "| worst u8 dequantization error | {u8_max_err_steps:.3} quantization steps (bound 0.5) |"
    );
    report::row(
        "wire audit",
        &[
            ("f64_bits_checked", bits_checked as f64),
            ("u8_max_err_steps", u8_max_err_steps),
        ],
        0.0,
    );
}

// ---------------------------------------------------------------- E25 ---
/// Multi-node tile serving over the dist fault machinery: Z-order shard
/// routing, a node death mid-storm with the dead range re-homed to the
/// survivors, an exactly-audited supervised recovery, and a doomed plan
/// degrading to a coverage report. Every served tile in every leg is
/// checked bit-identical against the single-node oracle.
fn e25() {
    use lsga::core::par::Threads;
    use lsga::dist::{FaultKind, FaultPlan, RetryPolicy};
    use lsga::obs::Counter;
    use lsga::serve::{
        compute_tile_direct, home_node, ClusterConfig, ClusterServer, TileCoord, TileServerConfig,
    };

    let n = 30_000;
    let points = crime(n);
    let kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let tail_eps = 1e-9;
    let tile_px = 64usize;
    let max_zoom = 3u8;
    let nodes = 4usize;
    let cfg = ClusterConfig {
        nodes,
        node: TileServerConfig {
            tile_px,
            max_zoom,
            shards: 4,
            byte_budget: 8 << 20,
            threads: Threads::exact(hw_threads()),
            ..TileServerConfig::default()
        },
    };
    let pyramid: Vec<TileCoord> = (0..=max_zoom)
        .flat_map(|z| {
            let side = 1u32 << z;
            (0..side).flat_map(move |y| (0..side).map(move |x| TileCoord::new(z, x, y)))
        })
        .collect();
    let n_tiles = pyramid.len();
    let pct = |lat: &mut Vec<f64>, q: f64| -> f64 {
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 * q).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx]
    };

    // The oracle the whole experiment is audited against; recomputed
    // after the mid-storm append.
    let oracle_for = |pts: &[Point]| -> Vec<Vec<f64>> {
        pyramid
            .iter()
            .map(|&c| {
                compute_tile_direct(pts, &window(), kernel, tail_eps, tile_px, c)
                    .values()
                    .to_vec()
            })
            .collect()
    };
    let assert_oracle = |tile: &lsga::serve::Tile, oracle: &[f64], what: &str| {
        for (a, b) in tile.grid.values().iter().zip(oracle) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: served bits diverged");
        }
    };

    // ---- Leg 1: routed storm, fault-free vs node-death-mid-storm.
    // Identical request trace (16 passes over the pyramid with one
    // broadcast append after pass 2); run B kills a node after pass 4
    // and its whole range re-homes to the survivors.
    let passes = 16usize;
    let kill_after_pass = 4usize;
    let append = crime(2_000)
        .iter()
        .map(|p| Point::new(p.x * 0.5 + 1_000.0, p.y * 0.5 + 800.0))
        .collect::<Vec<_>>();
    let run_storm = |kill: Option<usize>| -> (Vec<f64>, Vec<f64>, ClusterServer) {
        let cluster = ClusterServer::new(cfg).expect("cluster");
        let layer = cluster
            .add_layer(points.clone(), window(), kernel, tail_eps)
            .expect("layer");
        let mut oracle = oracle_for(&points);
        let mut mirror = points.clone();
        let victim = kill.unwrap_or(usize::MAX);
        let mut all_ms = Vec::with_capacity(passes * n_tiles);
        let mut rehomed_ms = Vec::new();
        for pass in 0..passes {
            if pass == 3 {
                cluster.insert_points(layer, &append).expect("broadcast");
                mirror.extend_from_slice(&append);
                oracle = oracle_for(&mirror);
            }
            if kill == Some(victim) && pass == kill_after_pass && cluster.is_alive(victim) {
                cluster.kill_node(victim);
            }
            for (t, &c) in pyramid.iter().enumerate() {
                let t0 = Instant::now();
                let tile = cluster
                    .get_tile(layer, c.z, c.x, c.y)
                    .expect("routed serve");
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                all_ms.push(dt);
                if pass >= kill_after_pass && kill.is_some() && home_node(c, nodes) == victim {
                    rehomed_ms.push(dt);
                }
                assert_oracle(&tile, &oracle[t], "storm");
            }
        }
        (all_ms, rehomed_ms, cluster)
    };

    let routed_before = lsga::obs::counter_value(Counter::ClusterRoutedRequests);
    let (mut ff_all, _, _) = run_storm(None);
    let victim = 2usize;
    let (mut nd_all, mut nd_rehomed, survivors) = run_storm(Some(victim));
    let routed_delta = lsga::obs::counter_value(Counter::ClusterRoutedRequests) - routed_before;
    assert_eq!(
        routed_delta,
        (2 * passes * n_tiles) as u64,
        "routed_requests must count every storm request"
    );
    assert_eq!(survivors.alive_nodes().len(), nodes - 1);

    let ff = (
        pct(&mut ff_all, 0.50),
        pct(&mut ff_all, 0.99),
        pct(&mut ff_all, 0.999),
    );
    let nd = (
        pct(&mut nd_all, 0.50),
        pct(&mut nd_all, 0.99),
        pct(&mut nd_all, 0.999),
    );
    let re = (
        pct(&mut nd_rehomed, 0.50),
        pct(&mut nd_rehomed, 0.99),
        pct(&mut nd_rehomed, 0.999),
    );
    println!(
        "| routed storm ({passes} passes × {n_tiles} tiles, {nodes} nodes) | p50 | p99 | p999 |"
    );
    println!("|---|---|---|---|");
    println!(
        "| fault-free | {:.3} ms | {:.3} ms | {:.3} ms |",
        ff.0, ff.1, ff.2
    );
    println!(
        "| node {victim} killed after pass {kill_after_pass} | {:.3} ms | {:.3} ms | {:.3} ms |",
        nd.0, nd.1, nd.2
    );
    println!(
        "| re-homed range only (post-death) | {:.3} ms | {:.3} ms | {:.3} ms |",
        re.0, re.1, re.2
    );
    println!(
        "| re-homed p999 / fault-free p999 | {:.2}× |  |  |",
        re.2 / ff.2.max(1e-9)
    );
    report::row(
        "faultfree storm",
        &[("p50_ms", ff.0), ("p99_ms", ff.1), ("p999_ms", ff.2)],
        ff.2,
    );
    report::row(
        "node death storm",
        &[
            ("p50_ms", nd.0),
            ("p99_ms", nd.1),
            ("p999_ms", nd.2),
            ("rehomed_p50_ms", re.0),
            ("rehomed_p999_ms", re.2),
            ("rehomed_vs_faultfree_p999", re.2 / ff.2.max(1e-9)),
        ],
        nd.2,
    );

    // ---- Leg 2: supervised recovery with an exact re-home audit. A
    // directed crash plus recoverable noise; the obs counters must
    // equal the schedule's own sums, and coverage must be complete.
    let cluster = ClusterServer::new(cfg).expect("audit cluster");
    let layer = cluster
        .add_layer(points.clone(), window(), kernel, tail_eps)
        .expect("audit layer");
    let oracle = oracle_for(&points);
    let policy = RetryPolicy::default();
    let mut plan = FaultPlan::seeded_recoverable(2525, n_tiles, 6);
    let crash_tile = 7usize;
    let crash_home = home_node(pyramid[crash_tile], nodes);
    plan.push(crash_tile, 0, FaultKind::CrashBeforeTask);
    let before = (
        lsga::obs::counter_value(Counter::ClusterTilesRehomed),
        lsga::obs::counter_value(Counter::ClusterReshippedBytes),
        lsga::obs::counter_value(Counter::ClusterNodeDeaths),
    );
    let t0 = Instant::now();
    let out = cluster
        .get_tiles_supervised(layer, &pyramid, &plan, &policy)
        .expect("supervised");
    let t_sup = t0.elapsed();
    let rehomed: u64 = out
        .schedule
        .tiles
        .iter()
        .filter(|o| o.executed() && o.final_worker != Some(o.initial_worker))
        .count() as u64;
    let reshipped: u64 = out.schedule.tiles.iter().map(|o| o.reshipped_bytes).sum();
    let after = (
        lsga::obs::counter_value(Counter::ClusterTilesRehomed),
        lsga::obs::counter_value(Counter::ClusterReshippedBytes),
        lsga::obs::counter_value(Counter::ClusterNodeDeaths),
    );
    assert_eq!(after.0 - before.0, rehomed, "tiles_rehomed audit");
    assert_eq!(after.1 - before.1, reshipped, "reshipped_bytes audit");
    assert_eq!(after.2 - before.2, 1, "exactly the directed crash dies");
    assert_eq!(out.schedule.dead_workers, vec![crash_home]);
    assert!(out.report.is_complete(), "recoverable plan must cover all");
    assert!(rehomed >= 1 && reshipped > 0);
    let mut bits = 0usize;
    for (t, tile) in out.tiles.iter().enumerate() {
        let tile = tile.as_ref().expect("covered");
        assert_oracle(tile, &oracle[t], "supervised");
        bits += tile.grid.values().len();
    }
    println!("\n| supervised recovery (directed crash + 6 recoverable faults) | value |");
    println!("|---|---|");
    println!(
        "| schedule | {} tiles, node {crash_home} dead, {} sim ticks |",
        n_tiles, out.schedule.sim_ticks
    );
    println!("| tiles re-homed / halo bytes re-shipped | {rehomed} / {reshipped} B |");
    println!("| served pixels bit-checked vs oracle | {bits} |");
    println!("| wall time | {} ms |", ms(t_sup));
    report::row(
        "supervised audit",
        &[
            ("tiles_rehomed", rehomed as f64),
            ("reshipped_bytes", reshipped as f64),
            ("node_deaths", 1.0),
            ("pixels_bit_checked", bits as f64),
            ("coverage_fraction", out.report.fraction()),
        ],
        msf(t_sup),
    );

    // ---- Leg 3: a doomed plan degrades to an exact coverage report.
    let doomed_tiles = [3usize, 11];
    let mut doom = FaultPlan::seeded_recoverable(77, n_tiles, 4);
    for &t in &doomed_tiles {
        for attempt in 0..policy.max_attempts {
            doom.push(t, attempt, FaultKind::TaskError);
        }
    }
    let out = cluster
        .get_tiles_supervised(layer, &pyramid, &doom, &policy)
        .expect("doomed plan still returns");
    assert_eq!(out.report.abandoned, doomed_tiles.to_vec());
    assert!(!out.report.is_complete());
    assert!(out.report.fraction() < 1.0);
    for (t, tile) in out.tiles.iter().enumerate() {
        match tile {
            Some(tile) => assert_oracle(tile, &oracle[t], "doomed-plan survivor"),
            None => assert!(doomed_tiles.contains(&t)),
        }
    }
    println!(
        "\n| doomed plan (retry budget exhausted on {} tiles) | value |",
        doomed_tiles.len()
    );
    println!("|---|---|");
    println!(
        "| coverage | {:.4} ({} of {n_tiles} tiles) |",
        out.report.fraction(),
        out.report.executed_tiles
    );
    println!("| abandoned tile indices | {:?} |", out.report.abandoned);
    report::row(
        "doomed degradation",
        &[
            ("coverage_fraction", out.report.fraction()),
            ("abandoned_tiles", out.report.abandoned.len() as f64),
            ("executed_tiles", out.report.executed_tiles as f64),
        ],
        0.0,
    );
}

// ---------------------------------------------------------------- E26 ----
fn e26() {
    use lsga::core::par::Threads;
    use lsga::obs::{self, Counter};
    use lsga::serve::{
        HotspotCompute, HotspotStat, NkdvCompute, StkdvCompute, TileCoord, TileServer,
        TileServerConfig,
    };
    use std::sync::{Arc, Barrier};

    let tile_px = 64usize;
    let max_zoom = 2u8;
    let tail_eps = 1e-9;
    let nt = 6usize;
    let new_server = || {
        Arc::new(TileServer::new(TileServerConfig {
            tile_px,
            max_zoom,
            shards: 4,
            byte_budget: 64 << 20,
            threads: Threads::exact(hw_threads()),
            ..TileServerConfig::default()
        }))
    };

    // One server, four analytics, one cache. Registration order fixes
    // the layer ids (0..=3) so the twin server below lines up.
    let kdv_pts = crime(20_000);
    // The wave generator's temporal gaussians have tails outside the
    // nominal 100-day span; the layer range is strict, so clip to it.
    let in_range = |p: &TimedPoint| (0.0..=100.0).contains(&p.t);
    let st_pts: Vec<TimedPoint> = waves(8_000).into_iter().filter(in_range).collect();
    let (net, events) = road_scenario(25, 3_000);
    let net = Arc::new(net);
    let lixels = Arc::new(Lixels::build(&net, 25.0));
    let hot_pts = taxi(15_000);
    let kdv_kernel = KernelKind::Quartic.with_bandwidth(250.0);
    let register = |s: &TileServer| -> [lsga::serve::LayerId; 4] {
        let kdv = s
            .add_layer(kdv_pts.clone(), window(), kdv_kernel, tail_eps)
            .expect("kdv layer");
        let st = s
            .add_compute_layer(Arc::new(
                StkdvCompute::new(
                    &st_pts,
                    window(),
                    KernelKind::Epanechnikov.with_bandwidth(400.0),
                    PolyKernel::new(KernelKind::Quartic, 10.0).expect("temporal kernel"),
                    0.0,
                    100.0,
                    nt,
                    tail_eps,
                )
                .expect("stkdv compute"),
            ))
            .expect("stkdv layer");
        let nk = s
            .add_compute_layer(Arc::new(
                NkdvCompute::new(
                    Arc::clone(&net),
                    Arc::clone(&lixels),
                    &events,
                    KernelKind::Quartic.with_bandwidth(500.0),
                )
                .expect("nkdv compute"),
            ))
            .expect("nkdv layer");
        let hot = s
            .add_compute_layer(Arc::new(
                HotspotCompute::new(&hot_pts, window(), 24, 600.0, HotspotStat::GiStar)
                    .expect("hotspot compute"),
            ))
            .expect("hotspot layer");
        [kdv, st, nk, hot]
    };
    let s = new_server();
    let layers = register(&s);
    let computed = [
        Counter::ServeKdvTilesComputed,
        Counter::ServeStkdvTilesComputed,
        Counter::ServeNkdvTilesComputed,
        Counter::ServeHotspotTilesComputed,
    ];
    let invalidated = [
        Counter::ServeKdvTilesInvalidated,
        Counter::ServeStkdvTilesInvalidated,
        Counter::ServeNkdvTilesInvalidated,
        Counter::ServeHotspotTilesInvalidated,
    ];
    let names = ["kdv", "stkdv", "nkdv", "hotspot"];
    // The stkdv sweep serves the middle time bin so the temporal kernel
    // does real discrimination work (bin 0 sits before the first wave).
    let probe_bin = (nt / 2) as u32;
    let serve = move |s: &TileServer, k: usize, c: TileCoord| {
        if k == 1 {
            s.get_tile_binned(layers[k], c.z, c.x, c.y, probe_bin)
        } else {
            s.get_tile(layers[k], c.z, c.x, c.y)
        }
    };

    // ---- Leg 1: cold/warm pyramid sweep per kind through the shared
    // cache. Cold pays one accounted compute per tile; warm is pure
    // cache traffic, so its per-kind computed delta must be zero.
    let pyramid: Vec<TileCoord> = (0..=max_zoom)
        .flat_map(|z| {
            let side = 1u32 << z;
            (0..side).flat_map(move |y| (0..side).map(move |x| TileCoord::new(z, x, y)))
        })
        .collect();
    let n_tiles = pyramid.len();
    println!("| kind | tiles | cold | warm | cold/tile | computed cold/warm |");
    println!("|---|---|---|---|---|---|");
    for k in 0..4 {
        let c0 = obs::counter_value(computed[k]);
        let (_, t_cold) = time(|| {
            for &c in &pyramid {
                serve(&s, k, c).expect("cold serve");
            }
        });
        let cold_computed = obs::counter_value(computed[k]) - c0;
        let (_, t_warm) = time(|| {
            for &c in &pyramid {
                serve(&s, k, c).expect("warm serve");
            }
        });
        let warm_computed = obs::counter_value(computed[k]) - c0 - cold_computed;
        assert_eq!(cold_computed, n_tiles as u64, "{}: cold sweep", names[k]);
        assert_eq!(
            warm_computed, 0,
            "{}: warm sweep must be all hits",
            names[k]
        );
        println!(
            "| {} | {n_tiles} | {} ms | {} ms | {:.2} ms | {cold_computed}/{warm_computed} |",
            names[k],
            ms(t_cold),
            ms(t_warm),
            msf(t_cold) / n_tiles as f64,
        );
        report::row(
            &format!("{} pyramid", names[k]),
            &[
                ("tiles", n_tiles as f64),
                ("cold_ms", msf(t_cold)),
                ("warm_ms", msf(t_warm)),
                ("computed", cold_computed as f64),
            ],
            msf(t_cold),
        );
    }

    // ---- Leg 2: single-flight coalescing holds per kind — 16 threads
    // storm one evicted tile of each kind; exactly one accounted
    // compute each, 15 parked waiters.
    s.clear_cache();
    println!("\n| storm kind | requests | computed | coalesced | time |");
    println!("|---|---|---|---|---|");
    for k in 0..4 {
        let c0 = obs::counter_value(computed[k]);
        let w0 = obs::counter_value(Counter::ServeCoalescedWaits);
        let barrier = Arc::new(Barrier::new(16));
        let (_, t_storm) = time(|| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let s = Arc::clone(&s);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        serve(&s, k, TileCoord::new(1, 1, 0)).expect("storm serve")
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("storm thread");
            }
        });
        let storm_computed = obs::counter_value(computed[k]) - c0;
        let coalesced = obs::counter_value(Counter::ServeCoalescedWaits) - w0;
        assert_eq!(storm_computed, 1, "{}: single-flight", names[k]);
        println!(
            "| {} | 16 | {storm_computed} | {coalesced} | {} ms |",
            names[k],
            ms(t_storm)
        );
        report::row(
            &format!("{} storm", names[k]),
            &[("requests", 16.0), ("computed", storm_computed as f64)],
            msf(t_storm),
        );
    }

    // ---- Leg 3: insert isolation — with every kind's pyramid warm,
    // each kind's append dirties only its own layer's tiles. The 4×4
    // invalidation matrix must be diagonal.
    for k in 0..4 {
        for &c in &pyramid {
            serve(&s, k, c).expect("re-warm");
        }
    }
    let kdv_batch = crime(500);
    let st_batch: Vec<TimedPoint> = waves(500).into_iter().filter(in_range).collect();
    let nk_batch: Vec<Point> = events[..200].iter().map(|e| e.point(&net)).collect();
    let hot_batch = taxi(500);
    let mut matrix = [[0u64; 4]; 4];
    let mut diag_ms = [0f64; 4];
    for k in 0..4 {
        let before: Vec<u64> = invalidated.iter().map(|&c| obs::counter_value(c)).collect();
        let (_, t_ins) = time(|| match k {
            0 => s.insert_points(layers[0], &kdv_batch).expect("kdv insert"),
            1 => s
                .insert_timed_points(layers[1], &st_batch)
                .expect("stkdv insert"),
            2 => s.insert_points(layers[2], &nk_batch).expect("nkdv insert"),
            _ => s.insert_points(layers[3], &hot_batch).expect("hot insert"),
        });
        diag_ms[k] = msf(t_ins);
        for j in 0..4 {
            matrix[k][j] = obs::counter_value(invalidated[j]) - before[j];
        }
    }
    println!(
        "\n| insert into | kdv inval | stkdv inval | nkdv inval | hotspot inval | insert time |"
    );
    println!("|---|---|---|---|---|---|");
    for k in 0..4 {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} ms |",
            names[k], matrix[k][0], matrix[k][1], matrix[k][2], matrix[k][3], diag_ms[k]
        );
        let cross: u64 = (0..4).filter(|&j| j != k).map(|j| matrix[k][j]).sum();
        assert!(matrix[k][k] > 0, "{}: insert never invalidated", names[k]);
        assert_eq!(cross, 0, "{}: insert leaked into other kinds", names[k]);
        report::row(
            &format!("{} insert", names[k]),
            &[
                ("own_invalidated", matrix[k][k] as f64),
                ("cross_invalidated", cross as f64),
            ],
            diag_ms[k],
        );
    }

    // ---- Leg 4: bit-identity audit — a twin server receives the same
    // registrations and appends, then serves the probe tiles *cold*.
    // Warm-after-invalidation bits on the stormed server must equal the
    // twin's cold bits: the cache state never leaks into the pixels.
    let twin = new_server();
    let twin_layers = register(&twin);
    assert_eq!(layers, twin_layers, "registration order fixes layer ids");
    twin.insert_points(layers[0], &kdv_batch).expect("twin kdv");
    twin.insert_timed_points(layers[1], &st_batch)
        .expect("twin stkdv");
    twin.insert_points(layers[2], &nk_batch).expect("twin nkdv");
    twin.insert_points(layers[3], &hot_batch).expect("twin hot");
    let mut bits = 0usize;
    for (k, name) in names.iter().enumerate() {
        for &c in &pyramid {
            let warm = serve(&s, k, c).expect("audited serve");
            let cold = serve(&twin, k, c).expect("twin serve");
            for (a, b) in warm.grid.values().iter().zip(cold.grid.values()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: cache state leaked into tile {c:?}"
                );
            }
            bits += warm.grid.values().len();
        }
    }
    println!("\n| bit-identity audit | value |");
    println!("|---|---|");
    println!("| pixels checked (warm-after-insert vs twin cold) | {bits} |");
    report::row(
        "bit identity audit",
        &[("pixels_checked", bits as f64)],
        0.0,
    );
}
