//! In-process load generator for the tile server: Zipfian tile
//! popularity over the pyramid, open- or closed-loop arrivals, and
//! tail-latency reporting.
//!
//! The open-loop mode is the one that can demonstrate a p999 cliff
//! honestly: requests are scheduled on a fixed arrival timetable
//! (`i / rate` from the run's start), each worker sleeps until its
//! request's scheduled arrival, and **latency is measured from the
//! scheduled arrival, not from when the worker got around to issuing
//! it** — so a server that stalls accumulates queueing delay in the
//! recorded latencies instead of silently thinning the arrival stream
//! (the coordinated-omission trap). Closed-loop mode (`rate_rps:
//! None`) issues back-to-back requests per worker and measures pure
//! service time, which is the right mode for measuring capacity before
//! choosing an overload rate.
//!
//! Tile popularity is Zipfian over the whole pyramid: every coordinate
//! of every zoom level is ranked by a seeded shuffle and drawn with
//! probability ∝ `1 / rank^s` — a few hot tiles absorb most traffic
//! (they stay cached) while a long tail of cold tiles forces real
//! computes, which is exactly the mix that makes admission control
//! earn its keep.
//!
//! Both an **in-process** mode ([`run_load`], calling the
//! [`TileServer`] directly) and a **socket** mode ([`run_load_http`],
//! one TCP connection per request against a bound
//! [`HttpServer`](lsga::http::HttpServer)) replay the same seeded
//! trace, so E23 (in-process tiers) and E24 (served tiers) measure the
//! same workload with and without the wire in the loop. Socket mode
//! uses connection-per-request deliberately: persistent connections
//! would pin generator workers to server workers and turn the
//! open-loop schedule back into a closed loop.

use lsga::http::client;
use lsga::serve::{LayerId, QualityPolicy, TileCoord, TileServer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Zipfian popularity over every tile of a pyramid (zoom `0..=max_zoom`).
pub struct ZipfTiles {
    tiles: Vec<TileCoord>,
    /// Cumulative probability per rank, last entry 1.0.
    cdf: Vec<f64>,
}

impl ZipfTiles {
    /// Enumerate the pyramid, assign ranks by a seeded shuffle, and
    /// weight rank `r` (0-based) by `1 / (r + 1)^s`.
    #[must_use]
    pub fn new(max_zoom: u8, s: f64, seed: u64) -> Self {
        let mut tiles = Vec::new();
        for z in 0..=max_zoom {
            let n = 1u32 << z;
            for x in 0..n {
                for y in 0..n {
                    tiles.push(TileCoord::new(z, x, y));
                }
            }
        }
        tiles.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut cdf = Vec::with_capacity(tiles.len());
        let mut acc = 0.0;
        for r in 0..tiles.len() {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTiles { tiles, cdf }
    }

    /// Number of tiles in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// True when the pyramid is empty (never, for `max_zoom ≥ 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Draw one coordinate.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> TileCoord {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        self.tiles[idx.min(self.tiles.len() - 1)]
    }
}

/// Knobs for one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Concurrent request workers.
    pub workers: usize,
    /// Open-loop target arrival rate; `None` = closed loop.
    pub rate_rps: Option<f64>,
    /// Leading requests excluded from the measurement (cache and EWMA
    /// warmup).
    pub warmup: usize,
    /// Measured requests after warmup.
    pub requests: usize,
    /// Zipf skew `s` for tile popularity.
    pub zipf_s: f64,
    /// Seed for the popularity ranking and the request sequence.
    pub seed: u64,
}

/// Latency percentiles and degraded accounting for one run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Measured requests.
    pub n: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
    pub mean_ms: f64,
    /// Measured requests answered at a degraded tier.
    pub degraded: usize,
    /// `degraded / n`.
    pub degraded_frac: f64,
    /// Measured requests refused with `503` (socket mode only; the
    /// in-process path has no admission queue to overflow). Rejected
    /// requests are **excluded from the latency percentiles** — a fast
    /// refusal is not a served request, and folding it in would make
    /// an overloaded server look faster the more it sheds.
    pub rejected: usize,
    /// `rejected / n`.
    pub rejected_frac: f64,
    /// Measured requests / measured wall time.
    pub achieved_rps: f64,
    /// Wall time of the measurement phase.
    pub wall_ms: f64,
}

/// What one issued request came back as.
pub struct ReqOutcome {
    /// Answered at a non-exact tier.
    pub degraded: bool,
    /// Refused with `503` (queue full).
    pub rejected: bool,
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64) * q).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1] as f64 / 1e6
}

/// Run one load phase against `server`, in process. The request
/// sequence (tile per request index) is pre-generated from `cfg.seed`,
/// so two runs with different policies replay identical traffic.
pub fn run_load(
    server: &TileServer,
    layer: LayerId,
    cfg: &LoadConfig,
    policy: Option<&QualityPolicy>,
) -> LoadReport {
    run_load_core(server.config().max_zoom, cfg, &|c| {
        let tile = match policy {
            Some(p) => server
                .get_tile_with_policy(layer, c.z, c.x, c.y, p)
                .expect("load request failed"),
            None => server
                .get_tile(layer, c.z, c.x, c.y)
                .expect("load request failed"),
        };
        ReqOutcome {
            degraded: !tile.tier.is_exact(),
            rejected: false,
        }
    })
}

/// Run one load phase against a live [`HttpServer`] over TCP, one
/// connection per request. `extra_query` (e.g.
/// `"deadline_ms=12&eps=0.1&seed=7"`) is appended to every tile URL —
/// this is how a whole run opts into the deadline/tier path. The same
/// `cfg.seed` replays the identical trace as [`run_load`].
///
/// `503` responses count as rejected; any other non-`200` status is a
/// harness bug and panics.
///
/// [`HttpServer`]: lsga::http::HttpServer
pub fn run_load_http(
    addr: std::net::SocketAddr,
    layer: LayerId,
    max_zoom: u8,
    cfg: &LoadConfig,
    extra_query: Option<&str>,
) -> LoadReport {
    let timeout = Duration::from_secs(30);
    run_load_core(max_zoom, cfg, &|c| {
        let target = match extra_query {
            Some(q) => format!("/tiles/{layer}/{}/{}/{}?{q}", c.z, c.x, c.y),
            None => format!("/tiles/{layer}/{}/{}/{}", c.z, c.x, c.y),
        };
        let resp = client::get(addr, &target, &[], timeout).expect("http load request failed");
        match resp.status {
            200 => ReqOutcome {
                degraded: resp.header("x-lsga-tier") != Some("exact"),
                rejected: false,
            },
            503 => ReqOutcome {
                degraded: false,
                rejected: true,
            },
            other => panic!(
                "unexpected status {other} for {target}: {}",
                String::from_utf8_lossy(&resp.body)
            ),
        }
    })
}

/// The shared engine: seeded trace generation, open/closed-loop
/// scheduling, and percentile accounting over an `issue` closure.
fn run_load_core(
    max_zoom: u8,
    cfg: &LoadConfig,
    issue: &(dyn Fn(TileCoord) -> ReqOutcome + Sync),
) -> LoadReport {
    let zipf = ZipfTiles::new(max_zoom, cfg.zipf_s, cfg.seed);
    let total = cfg.warmup + cfg.requests;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9);
    let schedule: Vec<TileCoord> = (0..total).map(|_| zipf.draw(&mut rng)).collect();

    let next = AtomicUsize::new(0);
    let interval_ns = cfg.rate_rps.map(|r| 1e9 / r);
    let start = Instant::now();
    // (latency_ns, degraded, rejected, request index) per measured request.
    let mut samples: Vec<(u64, bool, bool, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(u64, bool, bool, usize)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let c = schedule[i];
                        // Open loop: hold until the request's scheduled
                        // arrival, then charge latency from that
                        // arrival. Closed loop: charge from issue time.
                        let measure_from = match interval_ns {
                            Some(gap) => {
                                let arrival = Duration::from_nanos((gap * i as f64) as u64);
                                loop {
                                    let now = start.elapsed();
                                    if now >= arrival {
                                        break;
                                    }
                                    std::thread::sleep(arrival - now);
                                }
                                arrival
                            }
                            None => start.elapsed(),
                        };
                        let outcome = issue(c);
                        let latency = start.elapsed().saturating_sub(measure_from);
                        if i >= cfg.warmup {
                            local.push((
                                latency.as_nanos().min(u128::from(u64::MAX)) as u64,
                                outcome.degraded,
                                outcome.rejected,
                                i,
                            ));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    samples.sort_by_key(|&(_, _, _, i)| i);
    let degraded = samples.iter().filter(|&&(_, d, _, _)| d).count();
    let rejected = samples.iter().filter(|&&(_, _, r, _)| r).count();
    // Latency percentiles cover served requests only (see LoadReport).
    let mut lat: Vec<u64> = samples
        .iter()
        .filter(|&&(_, _, r, _)| !r)
        .map(|&(ns, _, _, _)| ns)
        .collect();
    lat.sort_unstable();
    let n = samples.len();
    let served = lat.len();
    let mean_ms = if served == 0 {
        0.0
    } else {
        lat.iter().map(|&v| v as f64).sum::<f64>() / served as f64 / 1e6
    };
    LoadReport {
        n,
        p50_ms: percentile_ms(&lat, 0.50),
        p99_ms: percentile_ms(&lat, 0.99),
        p999_ms: percentile_ms(&lat, 0.999),
        max_ms: lat.last().map_or(0.0, |&v| v as f64 / 1e6),
        mean_ms,
        degraded,
        degraded_frac: if n == 0 {
            0.0
        } else {
            degraded as f64 / n as f64
        },
        rejected,
        rejected_frac: if n == 0 {
            0.0
        } else {
            rejected as f64 / n as f64
        },
        achieved_rps: if wall_ms > 0.0 {
            n as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_universe_covers_the_pyramid() {
        let z = ZipfTiles::new(3, 1.0, 5);
        assert_eq!(z.len(), 1 + 4 + 16 + 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = z.draw(&mut rng);
            assert!(c.z <= 3 && c.x < (1 << c.z) && c.y < (1 << c.z));
        }
    }

    #[test]
    fn zipf_is_skewed_and_seed_deterministic() {
        let z = ZipfTiles::new(4, 1.1, 42);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts.entry(z.draw(&mut rng)).or_insert(0usize) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        assert!(
            hottest * 10 > draws,
            "rank-1 tile should absorb ≫ uniform share: {hottest}/{draws}"
        );
        // Same seeds -> identical sequence.
        let z2 = ZipfTiles::new(4, 1.1, 42);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(z.draw(&mut a), z2.draw(&mut b));
        }
    }

    #[test]
    fn http_mode_replays_the_trace_over_sockets() {
        use lsga::core::par::Threads;
        use lsga::http::{HttpServer, HttpServerConfig};
        use lsga::prelude::*;
        use lsga::serve::{TileServer, TileServerConfig};
        use std::sync::Arc;

        let tiles = Arc::new(TileServer::new(TileServerConfig {
            tile_px: 8,
            max_zoom: 2,
            shards: 2,
            threads: Threads::exact(2),
            ..TileServerConfig::default()
        }));
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(10.0 + (i % 7) as f64, 20.0 + (i % 5) as f64))
            .collect();
        let layer = tiles
            .add_layer(
                pts,
                BBox::new(0.0, 0.0, 100.0, 100.0),
                KernelKind::Quartic.with_bandwidth(15.0),
                1e-6,
            )
            .expect("layer");
        let server = HttpServer::start(tiles, HttpServerConfig::default()).expect("bind");
        let cfg = LoadConfig {
            workers: 2,
            rate_rps: None,
            warmup: 4,
            requests: 24,
            zipf_s: 1.0,
            seed: 11,
        };
        let rep = run_load_http(server.local_addr(), layer, 2, &cfg, None);
        assert_eq!(rep.n, 24);
        assert_eq!(rep.rejected, 0, "idle server must not shed");
        assert_eq!(rep.degraded, 0, "no deadline, no degradation");
        assert!(rep.p50_ms > 0.0 && rep.p999_ms >= rep.p50_ms);
        // Deadline query drives the tier path end to end.
        let tiered = run_load_http(
            server.local_addr(),
            layer,
            2,
            &cfg,
            Some("deadline_ms=1000&eps=0.1&seed=7"),
        );
        assert_eq!(tiered.n, 24);
        server.shutdown();
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect();
        assert_eq!(percentile_ms(&ns, 0.50), 500.0);
        assert_eq!(percentile_ms(&ns, 0.99), 990.0);
        assert_eq!(percentile_ms(&ns, 0.999), 999.0);
        assert_eq!(percentile_ms(&ns, 1.0), 1000.0);
    }
}
