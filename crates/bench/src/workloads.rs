//! Shared synthetic workloads for the benches and the experiments
//! binary. Every workload is deterministic; sizes are parameters so the
//! same shapes scale from quick benches to the full experiment tables.

use lsga::prelude::*;
use lsga::{data, network};

/// The standard evaluation window (a 10 km × 8 km city, metres).
pub fn window() -> BBox {
    BBox::new(0.0, 0.0, 10_000.0, 8_000.0)
}

/// Crime-like clustered points: two sharp hotspots + diffuse background
/// (the Chicago-crime stand-in; DESIGN.md §1.5).
pub fn crime(n: usize) -> Vec<Point> {
    data::gaussian_mixture(
        n,
        &[
            Hotspot {
                center: Point::new(2_500.0, 2_000.0),
                sigma: 300.0,
                weight: 2.0,
            },
            Hotspot {
                center: Point::new(7_500.0, 5_500.0),
                sigma: 500.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(5_000.0, 4_000.0),
                sigma: 2_500.0,
                weight: 1.0,
            },
        ],
        window(),
        42,
    )
}

/// CSR points in the standard window (the null model).
pub fn csr(n: usize) -> Vec<Point> {
    data::uniform_points(n, window(), 4242)
}

/// Taxi-like heavy multi-hotspot data (the NYC-taxi stand-in).
pub fn taxi(n: usize) -> Vec<Point> {
    data::taxi_like(n, window(), 0.7, 7)
}

/// Epidemic waves over 100 days (the HK-COVID stand-in; Fig. 4 shape).
pub fn waves(n: usize) -> Vec<TimedPoint> {
    data::epidemic_waves(
        n,
        &[
            Wave {
                hotspot: Hotspot {
                    center: Point::new(2_500.0, 5_500.0),
                    sigma: 400.0,
                    weight: 1.0,
                },
                t_peak: 20.0,
                t_sigma: 6.0,
            },
            Wave {
                hotspot: Hotspot {
                    center: Point::new(7_500.0, 2_500.0),
                    sigma: 350.0,
                    weight: 1.4,
                },
                t_peak: 75.0,
                t_sigma: 5.0,
            },
        ],
        window(),
        2020,
    )
}

/// Manhattan-like road network (`blocks × blocks` intersections,
/// 200 m spacing) with clustered accident events.
pub fn road_scenario(blocks: usize, events: usize) -> (RoadNetwork, Vec<EdgePosition>) {
    let net = network::grid_network(blocks, blocks, 200.0);
    let per_cluster = (events / 8).max(1);
    let ev = data::clustered_on_network(&net, 8, per_cluster, 250.0, 3);
    (net, ev)
}

/// Sensor readings of a synthetic pollution field.
pub fn sensors(n: usize) -> Vec<(Point, f64)> {
    let field = |p: &Point| {
        12.0 + 0.0005 * p.x
            + 60.0 * (-p.dist_sq(&Point::new(3_000.0, 6_000.0)) / 4.0e6).exp()
            + 40.0 * (-p.dist_sq(&Point::new(7_000.0, 2_500.0)) / 9.0e6).exp()
    };
    data::uniform_points(n, window(), 99)
        .into_iter()
        .map(|p| {
            let z = field(&p);
            (p, z)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_deterministic_and_sized() {
        assert_eq!(crime(1000).len(), 1000);
        assert_eq!(crime(1000), crime(1000));
        assert_eq!(csr(500).len(), 500);
        assert_eq!(taxi(500).len(), 500);
        assert_eq!(waves(500).len(), 500);
        assert_eq!(sensors(100).len(), 100);
        let (net, ev) = road_scenario(6, 64);
        assert_eq!(net.vertex_count(), 36);
        assert_eq!(ev.len(), 64);
    }

    #[test]
    fn all_points_inside_window() {
        for p in crime(2000) {
            assert!(window().contains(&p));
        }
        for p in waves(1000) {
            assert!(window().contains(&p.point));
        }
    }
}
