//! E5 bench: K-function methods vs the O(n^2) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::kfunc;
use lsga::prelude::*;
use lsga_bench::workloads::taxi;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let s = 300.0;
    let cfg = KConfig::default();
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 60.0).collect();
    let mut g = c.benchmark_group("kfunction_methods");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [5_000usize, 20_000] {
        let pts = taxi(n);
        if n <= 5_000 {
            g.bench_with_input(BenchmarkId::new("naive", n), &pts, |bch, pts| {
                bch.iter(|| black_box(kfunc::naive_k(pts, s, cfg)))
            });
        }
        g.bench_with_input(BenchmarkId::new("grid", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kfunc::grid_k(pts, s, cfg)))
        });
        g.bench_with_input(BenchmarkId::new("kd_tree", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kfunc::kd_tree_k(pts, s, cfg)))
        });
        g.bench_with_input(BenchmarkId::new("ball_tree", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kfunc::ball_tree_k(pts, s, cfg)))
        });
        g.bench_with_input(BenchmarkId::new("histogram_10s", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kfunc::histogram_k_all(pts, &thresholds, cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
