//! E10 bench: IDW variants and ordinary kriging.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::interp;
use lsga::prelude::*;
use lsga_bench::workloads::{sensors, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let readings = sensors(500);
    let spec = GridSpec::new(window(), 80, 64);
    let mut g = c.benchmark_group("interp_500sensors_80px");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("idw_naive", |bch| {
        bch.iter(|| black_box(interp::idw_naive(&readings, spec, 2.0)))
    });
    g.bench_function("idw_knn12", |bch| {
        bch.iter(|| black_box(interp::idw_knn(&readings, spec, 2.0, 12)))
    });
    g.bench_function("idw_radius", |bch| {
        bch.iter(|| black_box(interp::idw_radius(&readings, spec, 2.0, 1_500.0)))
    });
    let bins = interp::empirical_variogram(&readings, 5_000.0, 15);
    let model = interp::fit_variogram(&bins, interp::VariogramModelKind::Exponential).unwrap();
    g.bench_function("ordinary_kriging_16nn", |bch| {
        bch.iter(|| black_box(interp::ordinary_kriging(&readings, spec, &model, 16).unwrap()))
    });
    g.bench_function("variogram_fit", |bch| {
        bch.iter(|| {
            let bins = interp::empirical_variogram(&readings, 5_000.0, 15);
            black_box(interp::fit_variogram(
                &bins,
                interp::VariogramModelKind::Exponential,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
