//! E1 bench: one raster, every KDV method (exact and approximate).

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(30_000);
    let spec = GridSpec::new(window(), 128, 102);
    let b = 250.0;
    let quartic = Quartic::new(b);
    let poly = PolyKernel::new(KernelKind::Quartic, b).unwrap();
    let engine = kdv::BoundsKdv::new(&points);

    let mut g = c.benchmark_group("kdv_methods_n30k_128px");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("grid_pruned", |bch| {
        bch.iter(|| black_box(kdv::grid_pruned_kdv(&points, spec, quartic, 1e-9)))
    });
    g.bench_function("slam", |bch| {
        bch.iter(|| black_box(kdv::slam_kdv(&points, spec, poly)))
    });
    g.bench_function("bounds_eps0.1", |bch| {
        bch.iter(|| black_box(engine.compute(spec, quartic, 0.1)))
    });
    g.bench_function("sampling_m4096", |bch| {
        bch.iter(|| black_box(kdv::sampling_kdv(&points, spec, quartic, 4096, 1)))
    });
    g.bench_function("parallel", |bch| {
        bch.iter(|| black_box(kdv::parallel_kdv(&points, spec, quartic, 1e-9, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
