//! E11 bench: Moran's I and General G with permutation inference.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::prelude::*;
use lsga::stats::{self, areal, SpatialWeights};
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = crime(30_000);
    let spec = GridSpec::new(window(), 20, 16);
    let counts = areal::quadrat_counts(&pts, spec);
    let centers = areal::cell_centers(&spec);
    let w = SpatialWeights::distance_band(&centers, 700.0);
    let mut g = c.benchmark_group("autocorr_320cells");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("morans_i_199perm", |bch| {
        bch.iter(|| black_box(stats::morans_i(counts.values(), &w, 199, 1)))
    });
    g.bench_function("general_g_199perm", |bch| {
        bch.iter(|| black_box(stats::general_g(counts.values(), &w, 199, 2)))
    });
    g.bench_function("weights_distance_band", |bch| {
        bch.iter(|| black_box(SpatialWeights::distance_band(&centers, 700.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
