//! E16–E18 bench: the implemented future-work extensions against their
//! exact/simple counterparts.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::prelude::*;
use lsga::stats::areal;
use lsga::{kdv, kfunc, stats};
use lsga_bench::workloads::{crime, road_scenario, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(50_000);
    let spec = GridSpec::new(window(), 128, 102);
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    // E17: binned separable Gaussian vs exact grid-pruned.
    let gauss = Gaussian::new(400.0);
    g.bench_function("gaussian_exact_grid", |b| {
        b.iter(|| black_box(kdv::grid_pruned_kdv(&points, spec, gauss, 1e-6)))
    });
    g.bench_function("gaussian_binned_os8", |b| {
        b.iter(|| black_box(kdv::binned_gaussian_kdv(&points, spec, gauss, 8, 1e-6)))
    });

    // E16: sampled K vs full histogram.
    let thresholds = [150.0, 300.0];
    g.bench_function("k_histogram_exact", |b| {
        b.iter(|| {
            black_box(kfunc::histogram_k_all(
                &points,
                &thresholds,
                KConfig::default(),
            ))
        })
    });
    g.bench_function("k_sampled_m8000", |b| {
        b.iter(|| {
            black_box(kfunc::sampled_k(
                &points,
                &thresholds,
                8_000,
                7,
                KConfig::default(),
            ))
        })
    });

    // Adaptive vs fixed KDV.
    g.bench_function("kdv_fixed_quartic", |b| {
        b.iter(|| {
            black_box(kdv::grid_pruned_kdv(
                &points,
                spec,
                Quartic::new(250.0),
                1e-9,
            ))
        })
    });
    g.bench_function("kdv_adaptive_alpha05", |b| {
        b.iter(|| {
            black_box(kdv::adaptive_kdv(
                &points,
                spec,
                KernelKind::Quartic,
                250.0,
                0.5,
            ))
        })
    });

    // Pair correlation function.
    let sub = crime(20_000);
    g.bench_function("pair_correlation_20bins", |b| {
        b.iter(|| black_box(kfunc::pair_correlation(&sub, window(), 500.0, 20)))
    });

    // Local statistics over quadrats.
    let qspec = GridSpec::new(window(), 20, 16);
    let counts = areal::quadrat_counts(&points, qspec);
    let centers = areal::cell_centers(&qspec);
    let w = stats::SpatialWeights::distance_band(&centers, 700.0);
    g.bench_function("local_gi_star_320cells", |b| {
        b.iter(|| black_box(stats::local_gi_star(counts.values(), &w)))
    });

    // Equal-split vs simple NKDV.
    let (net, events) = road_scenario(12, 400);
    let lixels = Lixels::build(&net, 50.0);
    let k = Quartic::new(400.0);
    g.bench_function("nkdv_simple", |b| {
        b.iter(|| black_box(kdv::nkdv_forward(&net, &lixels, &events, k)))
    });
    g.bench_function("nkdv_equal_split", |b| {
        b.iter(|| black_box(kdv::nkdv_equal_split(&net, &lixels, &events, k)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
