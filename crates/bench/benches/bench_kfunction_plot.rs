//! E4 bench: full K-function plot (Definition 3) cost.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kfunc;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(2_000);
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
    let mut g = c.benchmark_group("kfunction_plot_n2k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for sims in [10usize, 40] {
        g.bench_function(format!("plot_{sims}sims"), |bch| {
            bch.iter(|| {
                black_box(kfunc::k_function_plot(
                    &points,
                    window(),
                    &thresholds,
                    sims,
                    7,
                    KConfig::default(),
                    4,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
