//! E2 bench: rasterization cost per kernel function (Table 2 + §2.4).

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(20_000);
    let spec = GridSpec::new(window(), 96, 77);
    let mut g = c.benchmark_group("kernels_n20k_96px");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in KernelKind::ALL {
        let k = kind.with_bandwidth(300.0);
        // Infinite-support kernels use a practical 1e-6 tail here.
        let tail = 1e-6;
        g.bench_function(kind.name(), |bch| {
            bch.iter(|| black_box(kdv::grid_pruned_kdv(&points, spec, k, tail)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
