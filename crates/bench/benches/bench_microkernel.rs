//! Microkernel bench: scalar point-at-a-time accumulation (the shape
//! every `O(n·m)` hot loop had before the SoA refactor) vs the
//! cache-blocked row microkernel (DESIGN.md §3.11), across all seven
//! kernels at n ∈ {10k, 100k} over a 64-pixel query row.
//!
//! Kernels are passed as their concrete types, exactly as the KDV /
//! K-function / interpolation call sites do — the microkernel is
//! monomorphized per kernel, so benching through `AnyKernel` would
//! measure a dispatch overhead production never pays. Two bandwidths
//! cover both support regimes: 250 m (sparse — few points inside any
//! pixel's support, the regime where branchy early-outs shine) and
//! 2000 m (dense — the candidate mix a grid-pruned span feeds the
//! microkernel, where the branch-free mask form vectorizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::core::soa::{accumulate_density_row, PointsSoA};
use lsga::core::{Cosine, Exponential, Triangular};
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;
use std::time::Duration;

const QUERIES: usize = 64;
const BANDWIDTHS: [f64; 2] = [250.0, 2_000.0];

fn bench_pair<K: Kernel>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    kernel: &K,
    qxs: &[f64],
    qy: f64,
    points: &[Point],
    soa: &PointsSoA,
) {
    let cutoff = kernel.support_sq();
    group.bench_function(BenchmarkId::new("scalar", name), |b| {
        b.iter(|| {
            let mut acc = [0.0f64; QUERIES];
            for (qx, a) in qxs.iter().zip(acc.iter_mut()) {
                for p in points {
                    let dx = *qx - p.x;
                    let dy = qy - p.y;
                    let d2 = dx * dx + dy * dy;
                    if d2 <= cutoff {
                        *a += kernel.eval_sq(d2);
                    }
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("tiled", name), |b| {
        b.iter(|| {
            let mut acc = [0.0f64; QUERIES];
            accumulate_density_row(kernel, cutoff, qxs, qy, &soa.xs, &soa.ys, &mut acc);
            black_box(acc)
        })
    });
}

fn bench(c: &mut Criterion) {
    let bbox = window();
    let qy = 0.5 * (bbox.min_y + bbox.max_y);
    let qxs: Vec<f64> = (0..QUERIES)
        .map(|i| bbox.min_x + (i as f64 + 0.5) / QUERIES as f64 * (bbox.max_x - bbox.min_x))
        .collect();
    for n in [10_000usize, 100_000] {
        let points = crime(n);
        let soa = PointsSoA::from_points(&points);
        let mut g = c.benchmark_group(format!("microkernel_n{n}"));
        g.sample_size(10);
        g.warm_up_time(Duration::from_millis(200));
        g.measurement_time(Duration::from_millis(500));
        for b in BANDWIDTHS {
            let tag = |kernel: &str| format!("{kernel}_b{b:.0}");
            bench_pair(
                &mut g,
                &tag("uniform"),
                &Uniform::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("epanechnikov"),
                &Epanechnikov::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("quartic"),
                &Quartic::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("gaussian"),
                &Gaussian::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("triangular"),
                &Triangular::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("cosine"),
                &Cosine::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
            bench_pair(
                &mut g,
                &tag("exponential"),
                &Exponential::new(b),
                &qxs,
                qy,
                &points,
                &soa,
            );
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
