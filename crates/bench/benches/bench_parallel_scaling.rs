//! Thread-scaling bench for the `lsga_core::par` work-stealing pool:
//! the same workload at 1/2/4/8 threads for each converted hot path.
//! Outputs are bit-identical across the sweep (see
//! `tests/parallel_determinism.rs`); only the wall clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::core::par::Threads;
use lsga::kfunc::KConfig;
use lsga::prelude::*;
use lsga::stats::{self, areal, SpatialWeights};
use lsga::{interp, kdv, kfunc};
use lsga_bench::workloads::{crime, sensors, window};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let pts = crime(100_000);

    let mut g = c.benchmark_group("parallel_scaling_n100k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));

    let kdv_spec = GridSpec::new(window(), 128, 102);
    let kernel = Epanechnikov::new(500.0);
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("kdv", t), &t, |bch, &t| {
            bch.iter(|| {
                black_box(kdv::parallel_kdv_threads(
                    &pts,
                    kdv_spec,
                    kernel,
                    1e-9,
                    Threads::exact(t),
                ))
            })
        });
    }

    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("kfunction", t), &t, |bch, &t| {
            bch.iter(|| {
                black_box(kfunc::parallel_k_threads(
                    &pts,
                    300.0,
                    KConfig::default(),
                    Threads::exact(t),
                ))
            })
        });
    }

    // Moran's I: the permutation test over quadrat counts of the 100k
    // points dominates; replicates fan out across the pool.
    let counts = areal::quadrat_counts(&pts, GridSpec::new(window(), 40, 32));
    let centers = areal::cell_centers(&GridSpec::new(window(), 40, 32));
    let w = SpatialWeights::distance_band(&centers, 400.0);
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("morans_i", t), &t, |bch, &t| {
            bch.iter(|| {
                black_box(stats::morans_i_threads(
                    counts.values(),
                    &w,
                    999,
                    1,
                    Threads::exact(t),
                ))
            })
        });
    }

    let samples = sensors(2_000);
    let idw_spec = GridSpec::new(window(), 96, 77);
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("idw", t), &t, |bch, &t| {
            bch.iter(|| {
                black_box(interp::idw_knn_threads(
                    &samples,
                    idw_spec,
                    2.0,
                    16,
                    Threads::exact(t),
                ))
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
