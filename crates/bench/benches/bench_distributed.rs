//! E12 bench: distributed KDV / K-function across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::dist::{self, PartitionStrategy};
use lsga::prelude::*;
use lsga_bench::workloads::{taxi, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = taxi(100_000);
    let spec = GridSpec::new(window(), 128, 102);
    let kernel = Epanechnikov::new(150.0);
    let mut g = c.benchmark_group("distributed_n100k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for workers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("kdv_balanced_kd", workers),
            &workers,
            |bch, &w| {
                bch.iter(|| {
                    black_box(dist::distributed_kdv(
                        &points,
                        spec,
                        kernel,
                        1e-9,
                        w,
                        PartitionStrategy::BalancedKd,
                    ))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("kfunc_balanced_kd", workers),
            &workers,
            |bch, &w| {
                bch.iter(|| {
                    black_box(dist::distributed_k(
                        &points,
                        200.0,
                        KConfig::default(),
                        w,
                        PartitionStrategy::BalancedKd,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
