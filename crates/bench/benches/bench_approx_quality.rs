//! E13 bench: approximation knobs (eps, m) vs runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(50_000);
    let spec = GridSpec::new(window(), 64, 51);
    let kernel = Gaussian::new(400.0);
    let engine = kdv::BoundsKdv::new(&points);
    let mut g = c.benchmark_group("approx_quality_n50k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for eps in [0.01f64, 0.1, 0.5] {
        g.bench_with_input(BenchmarkId::new("bounds_eps", eps), &eps, |bch, &eps| {
            bch.iter(|| black_box(engine.compute(spec, kernel, eps)))
        });
    }
    for m in [1_000usize, 8_000] {
        g.bench_with_input(BenchmarkId::new("sampling_m", m), &m, |bch, &m| {
            bch.iter(|| black_box(kdv::sampling_kdv(&points, spec, kernel, m, 9)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
