//! E8 bench: spatiotemporal K-function, naive vs shared 2-D histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kfunc;
use lsga::prelude::*;
use lsga_bench::workloads::waves;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = waves(2_000);
    let ss: Vec<f64> = (1..=5).map(|i| i as f64 * 150.0).collect();
    let ts: Vec<f64> = (1..=5).map(|i| i as f64 * 5.0).collect();
    let cfg = KConfig::default();
    let mut g = c.benchmark_group("st_kfunction_n2k_5x5");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("naive", |bch| {
        bch.iter(|| black_box(kfunc::st_k_naive(&points, &ss, &ts, cfg)))
    });
    g.bench_function("grid_histogram", |bch| {
        bch.iter(|| black_box(kfunc::st_k_grid(&points, &ss, &ts, cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
