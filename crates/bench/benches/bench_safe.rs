//! E14 bench: SAFE multi-bandwidth sharing vs independent passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = crime(50_000);
    let spec = GridSpec::new(window(), 96, 77);
    let mut g = c.benchmark_group("safe_multibandwidth_n50k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for nb in [2usize, 8] {
        let bws: Vec<f64> = (1..=nb).map(|i| 60.0 * i as f64).collect();
        g.bench_with_input(BenchmarkId::new("independent", nb), &bws, |bch, bws| {
            bch.iter(|| {
                black_box(kdv::independent_multi_bandwidth(
                    &points,
                    spec,
                    KernelKind::Epanechnikov,
                    bws,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("safe_shared", nb), &bws, |bch, bws| {
            bch.iter(|| {
                black_box(kdv::safe_multi_bandwidth(
                    &points,
                    spec,
                    KernelKind::Epanechnikov,
                    bws,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
