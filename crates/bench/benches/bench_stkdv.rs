//! E7 bench: STKDV naive vs temporal sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{waves, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = waves(20_000);
    let spec = GridSpec::new(window(), 50, 40);
    let ks = Epanechnikov::new(400.0);
    let kt = PolyKernel::new(KernelKind::Epanechnikov, 8.0).unwrap();
    let mut g = c.benchmark_group("stkdv_n20k_50px_10t");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("naive", |bch| {
        bch.iter(|| black_box(kdv::stkdv_naive(&points, spec, 0.0, 100.0, 10, ks, kt)))
    });
    g.bench_function("temporal_sweep", |bch| {
        bch.iter(|| {
            black_box(kdv::stkdv_sweep(
                &points, spec, 0.0, 100.0, 10, ks, kt, 1e-9,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
