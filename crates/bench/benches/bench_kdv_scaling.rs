//! E3 bench: KDV runtime scaling in n (naive vs shared evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::{crime, window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = GridSpec::new(window(), 96, 77);
    let b = 250.0;
    let quartic = Quartic::new(b);
    let poly = PolyKernel::new(KernelKind::Quartic, b).unwrap();
    let mut g = c.benchmark_group("kdv_scaling_96px");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [5_000usize, 20_000, 80_000] {
        let pts = crime(n);
        if n <= 5_000 {
            g.bench_with_input(BenchmarkId::new("naive", n), &pts, |bch, pts| {
                bch.iter(|| black_box(kdv::naive_kdv(pts, spec, quartic)))
            });
        }
        g.bench_with_input(BenchmarkId::new("grid_pruned", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kdv::grid_pruned_kdv(pts, spec, quartic, 1e-9)))
        });
        g.bench_with_input(BenchmarkId::new("slam", n), &pts, |bch, pts| {
            bch.iter(|| black_box(kdv::slam_kdv(pts, spec, poly)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
