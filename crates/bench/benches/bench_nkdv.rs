//! E6 bench: NKDV naive (per lixel) vs forward (per event).

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kdv;
use lsga::prelude::*;
use lsga_bench::workloads::road_scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (net, events) = road_scenario(15, 600);
    let lixels = Lixels::build(&net, 50.0);
    let kernel = Quartic::new(500.0);
    let mut g = c.benchmark_group("nkdv_15x15_600ev");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("naive_per_lixel", |bch| {
        bch.iter(|| black_box(kdv::nkdv_naive(&net, &lixels, &events, kernel)))
    });
    g.bench_function("forward_per_event", |bch| {
        bch.iter(|| black_box(kdv::nkdv_forward(&net, &lixels, &events, kernel)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
