//! E9 bench: network K-function, per-event vs shared Dijkstra.

use criterion::{criterion_group, criterion_main, Criterion};
use lsga::kfunc;
use lsga::prelude::*;
use lsga_bench::workloads::road_scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (net, events) = road_scenario(15, 800);
    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64 * 200.0).collect();
    let cfg = KConfig::default();
    let mut g = c.benchmark_group("network_kfunction_800ev");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("naive_per_event", |bch| {
        bch.iter(|| black_box(kfunc::network_k_naive(&net, &events, &thresholds, cfg)))
    });
    g.bench_function("shared_per_vertex", |bch| {
        bch.iter(|| black_box(kfunc::network_k_shared(&net, &events, &thresholds, cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
