//! E15 bench: DBSCAN and K-means on hotspot mixtures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsga::data;
use lsga::prelude::*;
use lsga::stats;
use lsga_bench::workloads::window;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let hotspots = [
        Hotspot {
            center: Point::new(2_000.0, 2_000.0),
            sigma: 250.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(8_000.0, 3_000.0),
            sigma: 250.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(5_000.0, 6_500.0),
            sigma: 250.0,
            weight: 1.0,
        },
    ];
    let mut g = c.benchmark_group("clustering");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [5_000usize, 30_000] {
        let (pts, _) = data::gaussian_mixture_labeled(n, &hotspots, window(), 5);
        g.bench_with_input(BenchmarkId::new("dbscan", n), &pts, |bch, pts| {
            bch.iter(|| black_box(stats::dbscan(pts, 220.0, 10)))
        });
        g.bench_with_input(BenchmarkId::new("kmeans_k3", n), &pts, |bch, pts| {
            bch.iter(|| black_box(stats::kmeans(pts, 3, 100, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
