//! Property tests: accelerated KDV methods against the naive Definition 1
//! evaluation on arbitrary inputs.

use lsga_core::{BBox, GridSpec, KernelKind, Point, PolyKernel};
use lsga_kdv::{grid_pruned_kdv, naive_kdv, slam_kdv, BoundsKdv};
use proptest::prelude::*;

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y)),
        0..max_len,
    )
}

fn spec() -> GridSpec {
    GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 12, 10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_pruned_equals_naive_finite_support(
        pts in arb_points(80),
        kind_i in 0usize..5, // finite-support kernels only
        b in 0.5f64..80.0,
    ) {
        let kinds = [
            KernelKind::Uniform,
            KernelKind::Epanechnikov,
            KernelKind::Quartic,
            KernelKind::Triangular,
            KernelKind::Cosine,
        ];
        let k = kinds[kind_i].with_bandwidth(b);
        let a = naive_kdv(&pts, spec(), k);
        let g = grid_pruned_kdv(&pts, spec(), k, 1e-9);
        prop_assert!(a.linf_diff(&g) <= a.max().max(1.0) * 1e-12);
    }

    #[test]
    fn slam_equals_naive_poly(
        pts in arb_points(60),
        kind_i in 0usize..3,
        b in 0.5f64..80.0,
    ) {
        let kinds = [KernelKind::Uniform, KernelKind::Epanechnikov, KernelKind::Quartic];
        let kind = kinds[kind_i];
        let poly = PolyKernel::new(kind, b).unwrap();
        let a = naive_kdv(&pts, spec(), kind.with_bandwidth(b));
        let s = slam_kdv(&pts, spec(), poly);
        // The quartic moment expansion carries ~(window/2)^4 · eps of
        // cancellation error (~1e-8 absolute on this 100-unit window).
        prop_assert!(
            s.linf_diff(&a) <= 1e-7 + a.max() * 1e-9,
            "diff {}",
            s.linf_diff(&a)
        );
    }

    #[test]
    fn bounds_guarantee_on_arbitrary_inputs(
        pts in arb_points(60),
        b in 1.0f64..50.0,
        eps in 0.0f64..0.6,
    ) {
        let k = lsga_core::Gaussian::new(b);
        let exact = naive_kdv(&pts, spec(), k);
        let engine = BoundsKdv::new(&pts);
        let approx = engine.compute(spec(), k, eps);
        for (a, e) in approx.values().iter().zip(exact.values()) {
            prop_assert!(*a >= (1.0 - eps) * e - 1e-9);
            prop_assert!(*a <= (1.0 + eps) * e + 1e-9);
        }
    }

    #[test]
    fn density_translation_equivariant(
        pts in arb_points(40),
        b in 1.0f64..30.0,
        dx in -50.0f64..50.0,
        dy in -50.0f64..50.0,
    ) {
        // Shifting both the data and the grid shifts the raster exactly.
        let k = lsga_core::Epanechnikov::new(b);
        let base = naive_kdv(&pts, spec(), k);
        let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let sspec = GridSpec::new(BBox::new(dx, dy, 100.0 + dx, 100.0 + dy), 12, 10);
        let moved = naive_kdv(&shifted, sspec, k);
        for (a, b2) in base.values().iter().zip(moved.values()) {
            prop_assert!((a - b2).abs() < 1e-9);
        }
    }
}
