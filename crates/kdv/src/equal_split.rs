//! Equal-split discontinuous NKDV (Okabe & Sugihara \[73\]; the `esd`
//! estimator of SANET/spNetwork).
//!
//! The simple network KDE of [`crate::nkdv`] evaluates `K(dist_G(q, p))`
//! along shortest paths, which **inflates total mass at junctions**: a
//! vertex of degree `d` broadcasts the full kernel value down every
//! incident road, so an event near a dense intersection counts more
//! than one on a straight road. Okabe & Sugihara's equal-split kernel
//! divides the mass by `d − 1` at every junction the path crosses,
//! making the kernel's *network integral* equal for every event
//! location — the property that makes network densities comparable
//! across the map.
//!
//! The estimator follows **all** acyclic paths outward from the event
//! (not just shortest ones), accumulating
//! `K(path length) / Π (d_v − 1)` per traversed junction `v`, truncated
//! at the kernel support. Implemented as a depth-limited DFS over
//! directed edge traversals, the standard algorithm; cost grows with
//! `support / min edge length`, so it is practical exactly where the
//! method is used (bandwidths of a few blocks).

use lsga_core::Kernel;
use lsga_network::{EdgePosition, Lixels, RoadNetwork, VertexId};

use crate::nkdv::NetworkDensity;

/// Equal-split discontinuous NKDV over lixels. Output layout matches
/// [`crate::nkdv::nkdv_forward`] (one value per lixel).
pub fn nkdv_equal_split<K: Kernel>(
    net: &RoadNetwork,
    lixels: &Lixels,
    events: &[EdgePosition],
    kernel: K,
) -> NetworkDensity {
    let radius = kernel.effective_radius(crate::DEFAULT_TAIL_EPS);
    let mut values = vec![0.0f64; lixels.len()];
    for ev in events {
        let e = net.edge(ev.edge);
        // Mass on the event's own edge: direct, no split.
        deposit_along_edge(
            net,
            lixels,
            ev.edge,
            EdgeWalk::Whole {
                from_u_dist: f64::INFINITY,
                from_v_dist: f64::INFINITY,
                event_offset: Some(ev.offset),
            },
            1.0,
            radius,
            kernel,
            &mut values,
        );
        // Outward DFS from both endpoints.
        let mut visited_edges = vec![ev.edge];
        dfs(
            net,
            lixels,
            e.u,
            ev.to_u(),
            1.0,
            radius,
            kernel,
            &mut values,
            &mut visited_edges,
        );
        visited_edges.truncate(1);
        dfs(
            net,
            lixels,
            e.v,
            ev.to_v(net),
            1.0,
            radius,
            kernel,
            &mut values,
            &mut visited_edges,
        );
    }
    NetworkDensity::from_values(values)
}

/// How a kernel front enters an edge when depositing.
enum EdgeWalk {
    /// Entering from one endpoint with the given accumulated distance.
    FromU(f64),
    FromV(f64),
    /// The event's own edge: distance measured from the event offset.
    Whole {
        from_u_dist: f64,
        from_v_dist: f64,
        event_offset: Option<f64>,
    },
}

#[allow(clippy::too_many_arguments)]
fn deposit_along_edge<K: Kernel>(
    net: &RoadNetwork,
    lixels: &Lixels,
    edge: lsga_network::EdgeId,
    walk: EdgeWalk,
    weight: f64,
    radius: f64,
    kernel: K,
    values: &mut [f64],
) {
    let rec = net.edge(edge);
    let (first, count) = lixels.edge_range(edge);
    for k in 0..count {
        let li = (first + k) as usize;
        let lx = lixels.all()[li];
        let o = lx.center_offset();
        let d = match &walk {
            EdgeWalk::FromU(d0) => d0 + o,
            EdgeWalk::FromV(d0) => d0 + (rec.length - o),
            EdgeWalk::Whole {
                from_u_dist,
                from_v_dist,
                event_offset,
            } => {
                let mut d = (from_u_dist + o).min(from_v_dist + (rec.length - o));
                if let Some(eo) = event_offset {
                    d = d.min((o - eo).abs());
                }
                d
            }
        };
        if d <= radius {
            values[li] += weight * kernel.eval(d);
        }
    }
}

/// Depth-limited DFS over acyclic paths: arrive at `vertex` with
/// accumulated `dist` and `weight`, split among the other incident
/// edges, deposit along each, recurse through the far endpoints.
#[allow(clippy::too_many_arguments)]
fn dfs<K: Kernel>(
    net: &RoadNetwork,
    lixels: &Lixels,
    vertex: VertexId,
    dist: f64,
    weight: f64,
    radius: f64,
    kernel: K,
    values: &mut [f64],
    path_edges: &mut Vec<lsga_network::EdgeId>,
) {
    if dist > radius || weight <= 0.0 {
        return;
    }
    // Outgoing edges: every incident edge not already on this path.
    let outgoing: Vec<_> = net
        .neighbors(vertex)
        .filter(|(_, e)| !path_edges.contains(e))
        .collect();
    if outgoing.is_empty() {
        return;
    }
    // Okabe-Sugihara split: degree counts ALL incident edges; the mass
    // entering the vertex divides over (degree − 1) continuations.
    let degree = net.degree(vertex);
    let split = if degree >= 2 {
        weight / (degree as f64 - 1.0)
    } else {
        // Dead end: the kernel front reflects nowhere; mass stops.
        return;
    };
    for (far, edge) in outgoing {
        let rec = net.edge(edge);
        let entering_from_u = rec.u == vertex;
        deposit_along_edge(
            net,
            lixels,
            edge,
            if entering_from_u {
                EdgeWalk::FromU(dist)
            } else {
                EdgeWalk::FromV(dist)
            },
            split,
            radius,
            kernel,
            values,
        );
        let next_dist = dist + rec.length;
        if next_dist <= radius {
            path_edges.push(edge);
            dfs(
                net, lixels, far, next_dist, split, radius, kernel, values, path_edges,
            );
            path_edges.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{Epanechnikov, Point, Uniform};
    use lsga_network::{EdgeId, NetworkBuilder};

    /// A straight road of three unit segments (degree-2 interior
    /// vertices: no real junctions).
    fn straight_road() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let vs: Vec<VertexId> = (0..4)
            .map(|i| b.add_vertex(Point::new(i as f64, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], None).unwrap();
        }
        b.build().unwrap()
    }

    /// A T junction: three edges of length `arm` meeting at one
    /// degree-3 vertex.
    fn t_junction_arm(arm: f64) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let c = b.add_vertex(Point::new(0.0, 0.0));
        let l = b.add_vertex(Point::new(-arm, 0.0));
        let r = b.add_vertex(Point::new(arm, 0.0));
        let u = b.add_vertex(Point::new(0.0, arm));
        b.add_edge(c, l, None).unwrap(); // edge 0
        b.add_edge(c, r, None).unwrap(); // edge 1
        b.add_edge(c, u, None).unwrap(); // edge 2
        b.build().unwrap()
    }

    fn t_junction() -> RoadNetwork {
        t_junction_arm(1.0)
    }

    #[test]
    fn degree_two_vertices_pass_mass_through() {
        // On a straight road, equal-split equals the simple estimator
        // (every junction has degree 2, so the split factor is 1).
        let net = straight_road();
        let lixels = Lixels::build(&net, 0.25);
        let events = [EdgePosition {
            edge: EdgeId(1),
            offset: 0.5,
        }];
        let k = Epanechnikov::new(2.0);
        let esd = nkdv_equal_split(&net, &lixels, &events, k);
        let simple = crate::nkdv::nkdv_forward(&net, &lixels, &events, k).unwrap();
        assert!(
            esd.linf_diff(&simple) < 1e-12,
            "diff {}",
            esd.linf_diff(&simple)
        );
    }

    #[test]
    fn t_junction_splits_mass_in_half() {
        // Event on edge 0 at distance 0.5 from the junction; uniform
        // kernel with support 1.5 reaches 1.0 past the junction. On the
        // two far edges the simple estimator deposits K(d) while the
        // equal-split deposits K(d)/2 (degree 3 -> split over 2).
        let net = t_junction();
        let lixels = Lixels::build(&net, 0.5);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 0.5, // edge 0 runs c(offset 0) -> l(offset 1)
        }];
        let k = Uniform::new(1.5);
        let esd = nkdv_equal_split(&net, &lixels, &events, k);
        let simple = crate::nkdv::nkdv_forward(&net, &lixels, &events, k).unwrap();
        // Lixel on edge 1 (toward r) at centre offset 0.25: network
        // distance 0.75 ≤ 1.5.
        let (first1, _) = lixels.edge_range(EdgeId(1));
        let li = first1 as usize;
        assert!(simple.values()[li] > 0.0);
        assert!(
            (esd.values()[li] - simple.values()[li] / 2.0).abs() < 1e-12,
            "esd {} vs simple {}",
            esd.values()[li],
            simple.values()[li]
        );
        // On the event's own edge the two agree (no junction crossed).
        let (first0, _) = lixels.edge_range(EdgeId(0));
        assert!(
            (esd.values()[first0 as usize + 1] - simple.values()[first0 as usize + 1]).abs()
                < 1e-12
        );
    }

    #[test]
    fn total_mass_is_junction_invariant() {
        // The defining property: the network integral of the equal-split
        // kernel is the same wherever the event sits (as long as the
        // support does not run off a dead end). Compare an event mid
        // straight road vs one next to the junction, with arms long
        // enough that no front reaches a dead end.
        let net = t_junction_arm(3.0);
        let lixels = Lixels::build(&net, 0.01);
        let k = Uniform::new(0.8);
        let lengths: Vec<f64> = lixels.all().iter().map(|l| l.length()).collect();
        let mass = |events: &[EdgePosition]| -> f64 {
            let d = nkdv_equal_split(&net, &lixels, events, k);
            d.values().iter().zip(&lengths).map(|(v, l)| v * l).sum()
        };
        // Both events are ≥ 0.8 from every dead end.
        let near_junction = mass(&[EdgePosition {
            edge: EdgeId(0),
            offset: 0.1,
        }]);
        let mid_road = mass(&[EdgePosition {
            edge: EdgeId(1),
            offset: 1.5,
        }]);
        assert!(
            (near_junction - mid_road).abs() / mid_road < 0.02,
            "mass {near_junction} vs {mid_road}"
        );
        // The simple estimator inflates mass near the junction instead.
        let simple_mass = |events: &[EdgePosition]| -> f64 {
            let d = crate::nkdv::nkdv_forward(&net, &lixels, events, k).unwrap();
            d.values().iter().zip(&lengths).map(|(v, l)| v * l).sum()
        };
        let sj = simple_mass(&[EdgePosition {
            edge: EdgeId(0),
            offset: 0.1,
        }]);
        let sm = simple_mass(&[EdgePosition {
            edge: EdgeId(1),
            offset: 1.5,
        }]);
        assert!(sj > sm * 1.2, "simple should inflate: {sj} vs {sm}");
    }

    #[test]
    fn dead_ends_absorb_mass() {
        // Degree-1 endpoint: the front stops (no reflection), so lixels
        // behind a dead end get nothing and no panic occurs.
        let net = straight_road();
        let lixels = Lixels::build(&net, 0.25);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 0.1,
        }];
        let k = Epanechnikov::new(10.0); // support beyond the whole road
        let d = nkdv_equal_split(&net, &lixels, &events, k);
        assert!(d.max() > 0.0);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        // A triangle with a support longer than the cycle: the DFS must
        // terminate (acyclic paths only) and weights stay finite.
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(0.5, 1.0));
        b.add_edge(v0, v1, None).unwrap();
        b.add_edge(v1, v2, None).unwrap();
        b.add_edge(v2, v0, None).unwrap();
        let net = b.build().unwrap();
        let lixels = Lixels::build(&net, 0.2);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 0.5,
        }];
        let d = nkdv_equal_split(&net, &lixels, &events, Epanechnikov::new(5.0));
        assert!(d.values().iter().all(|v| v.is_finite()));
        assert!(d.max() > 0.0);
    }
}
