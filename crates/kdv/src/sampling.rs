//! Data-sampling KDV (paper §2.2, Eq. 7): estimate the density from a
//! uniform random subset with a probabilistic guarantee.
//!
//! With a uniform sample `S` of size `m`, the estimator
//! `F_S(q) = (n/m) · Σ_{p ∈ S} K(q, p)` is unbiased, and Hoeffding's
//! inequality on the `m` i.i.d. terms (each in `[0, K(0)]`) gives
//!
//! `P( |F_S(q) − F_P(q)| > ε·n·K(0) ) ≤ 2·exp(−2·m·ε²)`,
//!
//! so `m = ⌈ln(2/δ) / (2ε²)⌉` samples suffice for a per-query additive
//! error of `ε·n·K(0)` with probability `1 − δ` — *independent of n*,
//! which is the whole point of the sampling family (\[77–79, 110, 111\]).

use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sample size for the Hoeffding guarantee: additive error `ε·n·K(0)` per
/// query with probability `1 − δ`. Panics unless `0 < eps` and
/// `0 < delta < 1`.
pub fn sample_size_for_guarantee(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    ((2.0f64 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// Approximate KDV from a uniform sample of `sample_size` points
/// (clamped to `n`), rescaled by `n/m` (Eq. 7 with uniform weights
/// `w_i = n/m`). Deterministic in `seed`.
///
/// The inner evaluation uses the grid-pruned exact method on the sample,
/// so the only error is the sampling error.
pub fn sampling_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    sample_size: usize,
    seed: u64,
) -> DensityGrid {
    let n = points.len();
    if n == 0 || sample_size == 0 {
        return DensityGrid::zeros(spec);
    }
    let m = sample_size.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Point> = points.choose_multiple(&mut rng, m).copied().collect();
    let mut grid = crate::naive::grid_pruned_kdv(&sample, spec, kernel, crate::DEFAULT_TAIL_EPS);
    grid.scale(n as f64 / m as f64);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_kdv;
    use lsga_core::{BBox, Epanechnikov, Gaussian};

    fn clustered(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                let cx = if i % 3 == 0 { 30.0 } else { 70.0 };
                Point::new(cx + (f * 0.831).sin() * 8.0, 50.0 + (f * 0.557).cos() * 8.0)
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 20, 20)
    }

    #[test]
    fn sample_size_formula() {
        // eps = 0.05, delta = 0.01 -> ln(200)/0.005 = 1059.66...
        assert_eq!(sample_size_for_guarantee(0.05, 0.01), 1060);
        // Tighter eps needs quadratically more samples.
        let loose = sample_size_for_guarantee(0.1, 0.1);
        let tight = sample_size_for_guarantee(0.01, 0.1);
        assert!(tight >= 99 * loose && tight <= 101 * loose);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn bad_eps_rejected() {
        let _ = sample_size_for_guarantee(0.0, 0.1);
    }

    #[test]
    fn full_sample_is_exact() {
        let pts = clustered(200);
        let k = Epanechnikov::new(12.0);
        let full = sampling_kdv(&pts, spec(), k, 200, 7);
        let exact = naive_kdv(&pts, spec(), k);
        assert!(full.linf_diff(&exact) < 1e-9);
        // Oversized requests clamp.
        let over = sampling_kdv(&pts, spec(), k, 10_000, 7);
        assert!(over.linf_diff(&exact) < 1e-9);
    }

    #[test]
    fn hoeffding_bound_respected_in_practice() {
        let pts = clustered(5000);
        let k = Gaussian::new(10.0);
        let exact = naive_kdv(&pts, spec(), k);
        let eps = 0.05;
        let m = sample_size_for_guarantee(eps, 0.01);
        let approx = sampling_kdv(&pts, spec(), k, m, 42);
        // Additive bound ε·n·K(0); allow the δ slack by checking the
        // observed max against 2× the bound (a failed seed would exceed
        // it massively).
        let bound = eps * pts.len() as f64 * 1.0;
        assert!(
            approx.linf_diff(&exact) <= 2.0 * bound,
            "L∞ {} vs bound {}",
            approx.linf_diff(&exact),
            bound
        );
    }

    #[test]
    fn estimator_is_roughly_unbiased() {
        let pts = clustered(2000);
        let k = Gaussian::new(15.0);
        let exact = naive_kdv(&pts, spec(), k);
        // Average 20 independent estimates: should be close to exact.
        let mut acc = DensityGrid::zeros(spec());
        let runs = 20;
        for s in 0..runs {
            let g = sampling_kdv(&pts, spec(), k, 200, s as u64);
            for (a, b) in acc.values_mut().iter_mut().zip(g.values()) {
                *a += b / runs as f64;
            }
        }
        let rel = acc.rel_diff(&exact, exact.max() * 0.1);
        assert!(rel < 0.15, "bias too large: {rel}");
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = clustered(500);
        let k = Epanechnikov::new(10.0);
        let a = sampling_kdv(&pts, spec(), k, 100, 3);
        let b = sampling_kdv(&pts, spec(), k, 100, 3);
        assert_eq!(a.values(), b.values());
        let c = sampling_kdv(&pts, spec(), k, 100, 4);
        assert!(a.linf_diff(&c) > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let k = Epanechnikov::new(10.0);
        assert_eq!(sampling_kdv(&[], spec(), k, 100, 1).sum(), 0.0);
        let pts = clustered(10);
        assert_eq!(sampling_kdv(&pts, spec(), k, 0, 1).sum(), 0.0);
    }
}
