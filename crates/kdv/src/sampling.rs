//! Data-sampling KDV (paper §2.2, Eq. 7): estimate the density from a
//! uniform random subset with a probabilistic guarantee.
//!
//! With a uniform sample `S` of size `m`, the estimator
//! `F_S(q) = (n/m) · Σ_{p ∈ S} K(q, p)` is unbiased, and Hoeffding's
//! inequality on the `m` i.i.d. terms (each in `[0, K(0)]`) gives
//!
//! `P( |F_S(q) − F_P(q)| > ε·n·K(0) ) ≤ 2·exp(−2·m·ε²)`,
//!
//! so `m = ⌈ln(2/δ) / (2ε²)⌉` samples suffice for a per-query additive
//! error of `ε·n·K(0)` with probability `1 − δ` — *independent of n*,
//! which is the whole point of the sampling family (\[77–79, 110, 111\]).

use lsga_core::{DensityGrid, GridSpec, Kernel, LsgaError, Point, Result};
use lsga_index::SegmentedGrid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Sample size for the Hoeffding guarantee: additive error `ε·n·K(0)` per
/// query with probability `1 − δ`. Requires finite `eps > 0` and
/// `0 < delta < 1`; anything else (including NaN/∞, which would silently
/// turn into a garbage or overflowing sample size) is rejected as
/// [`LsgaError::InvalidParameter`].
pub fn sample_size_for_guarantee(eps: f64, delta: f64) -> Result<usize> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(LsgaError::InvalidParameter {
            name: "eps",
            message: format!("must be a finite positive number, got {eps}"),
        });
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(LsgaError::InvalidParameter {
            name: "delta",
            message: format!("must lie strictly inside (0, 1), got {delta}"),
        });
    }
    Ok(((2.0f64 / delta).ln() / (2.0 * eps * eps)).ceil() as usize)
}

/// Approximate KDV from a uniform sample of `sample_size` points
/// (clamped to `n`), rescaled by `n/m` (Eq. 7 with uniform weights
/// `w_i = n/m`). Deterministic in `seed`.
///
/// The inner evaluation uses the grid-pruned exact method on the sample,
/// so the only error is the sampling error.
pub fn sampling_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    sample_size: usize,
    seed: u64,
) -> DensityGrid {
    let n = points.len();
    if n == 0 || sample_size == 0 {
        return DensityGrid::zeros(spec);
    }
    let m = sample_size.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Point> = points.choose_multiple(&mut rng, m).copied().collect();
    let mut grid = crate::naive::grid_pruned_kdv(&sample, spec, kernel, crate::DEFAULT_TAIL_EPS);
    grid.scale(n as f64 / m as f64);
    grid
}

/// [`sampling_kdv`] over a layer's segment stack, without flattening it.
///
/// Samples `sample_size` distinct **logical** point indices (Floyd's
/// algorithm, deterministic in `seed`), sorts them ascending, and
/// gathers the points by walking the stack once. Because the draw is
/// over logical indices and the gather follows logical order, the
/// result is bit-identical for every segmentation of the same logical
/// point sequence — a layer before and after compaction serves the same
/// degraded tile. The sample evaluation itself is the sequential
/// grid-pruned method, so the output is also independent of
/// `LSGA_THREADS`.
///
/// Note the index-set draw differs from [`sampling_kdv`]'s partial
/// shuffle, so the two entry points agree in distribution and guarantee
/// but not bit-for-bit at the same seed.
pub fn sampling_kdv_segmented<K: Kernel>(
    layer: &SegmentedGrid,
    spec: GridSpec,
    kernel: K,
    sample_size: usize,
    seed: u64,
) -> DensityGrid {
    let n = layer.total_len();
    if n == 0 || sample_size == 0 {
        return DensityGrid::zeros(spec);
    }
    let m = sample_size.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Floyd's O(m) distinct-index sample over [0, n).
    let mut chosen: HashSet<usize> = HashSet::with_capacity(m);
    for j in (n - m)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut idx: Vec<usize> = chosen.into_iter().collect();
    idx.sort_unstable();
    // Gather in logical order with one forward walk over the stack.
    let mut sample = Vec::with_capacity(m);
    let mut segs = layer.segments().iter();
    let mut seg = segs.next().expect("segment stack is non-empty");
    let mut base = 0usize;
    for i in idx {
        while i >= base + seg.len() {
            base += seg.len();
            seg = segs.next().expect("logical index within total_len");
        }
        sample.push(seg.points()[i - base]);
    }
    let mut grid = crate::naive::grid_pruned_kdv(&sample, spec, kernel, crate::DEFAULT_TAIL_EPS);
    grid.scale(n as f64 / m as f64);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_kdv;
    use lsga_core::{BBox, Epanechnikov, Gaussian};

    fn clustered(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                let cx = if i % 3 == 0 { 30.0 } else { 70.0 };
                Point::new(cx + (f * 0.831).sin() * 8.0, 50.0 + (f * 0.557).cos() * 8.0)
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 20, 20)
    }

    #[test]
    fn sample_size_formula() {
        // eps = 0.05, delta = 0.01 -> ln(200)/0.005 = 1059.66...
        assert_eq!(sample_size_for_guarantee(0.05, 0.01).unwrap(), 1060);
        // Tighter eps needs quadratically more samples.
        let loose = sample_size_for_guarantee(0.1, 0.1).unwrap();
        let tight = sample_size_for_guarantee(0.01, 0.1).unwrap();
        assert!(tight >= 99 * loose && tight <= 101 * loose);
    }

    #[test]
    fn nonsensical_guarantee_parameters_rejected() {
        use lsga_core::LsgaError;
        for eps in [0.0, -0.3, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = sample_size_for_guarantee(eps, 0.1).unwrap_err();
            assert!(
                matches!(err, LsgaError::InvalidParameter { name: "eps", .. }),
                "eps {eps} -> {err:?}"
            );
        }
        for delta in [0.0, 1.0, -0.2, 7.0, f64::NAN, f64::INFINITY] {
            let err = sample_size_for_guarantee(0.05, delta).unwrap_err();
            assert!(
                matches!(err, LsgaError::InvalidParameter { name: "delta", .. }),
                "delta {delta} -> {err:?}"
            );
        }
    }

    #[test]
    fn full_sample_is_exact() {
        let pts = clustered(200);
        let k = Epanechnikov::new(12.0);
        let full = sampling_kdv(&pts, spec(), k, 200, 7);
        let exact = naive_kdv(&pts, spec(), k);
        assert!(full.linf_diff(&exact) < 1e-9);
        // Oversized requests clamp.
        let over = sampling_kdv(&pts, spec(), k, 10_000, 7);
        assert!(over.linf_diff(&exact) < 1e-9);
    }

    #[test]
    fn hoeffding_bound_respected_in_practice() {
        let pts = clustered(5000);
        let k = Gaussian::new(10.0);
        let exact = naive_kdv(&pts, spec(), k);
        let eps = 0.05;
        let m = sample_size_for_guarantee(eps, 0.01).unwrap();
        let approx = sampling_kdv(&pts, spec(), k, m, 42);
        // Additive bound ε·n·K(0); allow the δ slack by checking the
        // observed max against 2× the bound (a failed seed would exceed
        // it massively).
        let bound = eps * pts.len() as f64 * 1.0;
        assert!(
            approx.linf_diff(&exact) <= 2.0 * bound,
            "L∞ {} vs bound {}",
            approx.linf_diff(&exact),
            bound
        );
    }

    #[test]
    fn estimator_is_roughly_unbiased() {
        let pts = clustered(2000);
        let k = Gaussian::new(15.0);
        let exact = naive_kdv(&pts, spec(), k);
        // Average 20 independent estimates: should be close to exact.
        let mut acc = DensityGrid::zeros(spec());
        let runs = 20;
        for s in 0..runs {
            let g = sampling_kdv(&pts, spec(), k, 200, s as u64);
            for (a, b) in acc.values_mut().iter_mut().zip(g.values()) {
                *a += b / runs as f64;
            }
        }
        let rel = acc.rel_diff(&exact, exact.max() * 0.1);
        assert!(rel < 0.15, "bias too large: {rel}");
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = clustered(500);
        let k = Epanechnikov::new(10.0);
        let a = sampling_kdv(&pts, spec(), k, 100, 3);
        let b = sampling_kdv(&pts, spec(), k, 100, 3);
        assert_eq!(a.values(), b.values());
        let c = sampling_kdv(&pts, spec(), k, 100, 4);
        assert!(a.linf_diff(&c) > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let k = Epanechnikov::new(10.0);
        assert_eq!(sampling_kdv(&[], spec(), k, 100, 1).sum(), 0.0);
        let pts = clustered(10);
        assert_eq!(sampling_kdv(&pts, spec(), k, 0, 1).sum(), 0.0);
    }

    #[test]
    fn segmented_sampling_invariant_under_segmentation() {
        use lsga_index::{GridIndex, SegmentedGrid};
        use std::sync::Arc;
        let pts = clustered(700);
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let k = Epanechnikov::new(11.0);
        let mono = SegmentedGrid::single(GridIndex::with_bbox(&pts, 11.0, bbox));
        // The same logical sequence split 3 ways.
        let split = SegmentedGrid::from_segments(vec![
            Arc::new(GridIndex::with_bbox(&pts[..250], 11.0, bbox)),
            Arc::new(GridIndex::with_bbox(&pts[250..300], 11.0, bbox)),
            Arc::new(GridIndex::with_bbox(&pts[300..], 11.0, bbox)),
        ]);
        let a = sampling_kdv_segmented(&mono, spec(), k, 160, 9);
        let b = sampling_kdv_segmented(&split, spec(), k, 160, 9);
        let bits = |g: &DensityGrid| g.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "sample must not see segmentation");
        // Repeated runs are bit-identical; a different seed is not.
        let c = sampling_kdv_segmented(&split, spec(), k, 160, 9);
        assert_eq!(bits(&b), bits(&c));
        let d = sampling_kdv_segmented(&split, spec(), k, 160, 10);
        assert!(a.linf_diff(&d) > 0.0);
    }

    #[test]
    fn segmented_full_sample_is_exact() {
        use lsga_index::{GridIndex, SegmentedGrid};
        let pts = clustered(150);
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        let k = Epanechnikov::new(12.0);
        let stack = SegmentedGrid::single(GridIndex::with_bbox(&pts, 12.0, bbox));
        let full = sampling_kdv_segmented(&stack, spec(), k, 150, 1);
        let exact = naive_kdv(&pts, spec(), k);
        assert!(full.linf_diff(&exact) < 1e-9);
        // Empty sample request degenerates to zeros.
        assert_eq!(sampling_kdv_segmented(&stack, spec(), k, 0, 1).sum(), 0.0);
    }
}
