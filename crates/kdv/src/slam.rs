//! SLAM-style sweep-line KDV (computational-sharing family, paper §2.2;
//! Chan et al., SIGMOD 2022 \[32\]).
//!
//! For the polynomial kernels (uniform / Epanechnikov / quartic) the
//! kernel sum at a pixel expands into a polynomial in the pixel's x
//! coordinate whose coefficients are *moments* of the in-range points:
//!
//! `Σ K = c₀·S₀ + c₁·S₂ + c₂·S₄`, where `S₂ = Σ d²`, `S₄ = Σ d⁴`, and with
//! `d² = (qx − px)² + dy²` each `S` expands into sums of `pxʲ·dyᵐ`.
//!
//! A point `p` contributes exactly while `qx ∈ [px − h, px + h]` with
//! `h = sqrt(b² − dy²)`, so sweeping the pixel columns left-to-right and
//! maintaining nine running moments under enter/leave events evaluates an
//! entire row **exactly** in `O(X + W log W)` where `W` is the number of
//! points in the row's y-band — versus the naive `O(X · n)`. This is the
//! representative of the sharing family whose `O(Y(X + n))` complexity
//! the paper quotes.

use lsga_core::{DensityGrid, GridSpec, Kernel, Point, PolyKernel};

/// Running moment aggregates over the active point set of a sweep row.
/// `s[j][m] = Σ pxʲ · dyᵐ` for the j/m combinations `S₄` needs.
#[derive(Debug, Default, Clone, Copy)]
struct Moments {
    c: f64,     // Σ 1
    sx: f64,    // Σ px
    sx2: f64,   // Σ px²
    sx3: f64,   // Σ px³
    sx4: f64,   // Σ px⁴
    sy2: f64,   // Σ dy²
    sxy2: f64,  // Σ px·dy²
    sx2y2: f64, // Σ px²·dy²
    sy4: f64,   // Σ dy⁴
}

impl Moments {
    #[inline]
    fn apply(&mut self, px: f64, dy2: f64, sign: f64) {
        let px2 = px * px;
        self.c += sign;
        self.sx += sign * px;
        self.sx2 += sign * px2;
        self.sx3 += sign * px2 * px;
        self.sx4 += sign * px2 * px2;
        self.sy2 += sign * dy2;
        self.sxy2 += sign * px * dy2;
        self.sx2y2 += sign * px2 * dy2;
        self.sy4 += sign * dy2 * dy2;
    }

    /// Evaluate `c₀·S₀ + c₁·S₂ + c₂·S₄` at pixel x coordinate `qx`.
    #[inline]
    fn eval(&self, qx: f64, coeffs: [f64; 3]) -> f64 {
        let [c0, c1, c2] = coeffs;
        let mut sum = c0 * self.c;
        if c1 != 0.0 || c2 != 0.0 {
            let s2 = qx * qx * self.c - 2.0 * qx * self.sx + self.sx2 + self.sy2;
            sum += c1 * s2;
        }
        if c2 != 0.0 {
            let qx2 = qx * qx;
            let s4_xx = qx2 * qx2 * self.c - 4.0 * qx2 * qx * self.sx + 6.0 * qx2 * self.sx2
                - 4.0 * qx * self.sx3
                + self.sx4;
            let s4_xy = qx2 * self.sy2 - 2.0 * qx * self.sxy2 + self.sx2y2;
            sum += c2 * (s4_xx + 2.0 * s4_xy + self.sy4);
        }
        sum
    }
}

/// Exact KDV for a polynomial kernel via the sweep-line shared
/// evaluation. Output is identical (to floating-point accumulation
/// error) to [`crate::naive::naive_kdv`] with the same kernel.
pub fn slam_kdv(points: &[Point], spec: GridSpec, kernel: PolyKernel) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    if points.is_empty() {
        return grid;
    }
    let b = kernel.bandwidth();
    let b2 = b * b;
    let coeffs = kernel.coeffs();

    // Shift the x origin to the grid centre to keep the moment magnitudes
    // small (the degree-4 expansion is cancellation-prone at large
    // absolute coordinates).
    let x0 = 0.5 * (spec.bbox.min_x + spec.bbox.max_x);

    // Points sorted by y so each row binary-searches its band.
    let mut by_y: Vec<Point> = points.to_vec();
    by_y.sort_by(|a, c| a.y.total_cmp(&c.y));
    let ys: Vec<f64> = by_y.iter().map(|p| p.y).collect();

    // Reusable per-row event buffers: (x, px', dy²).
    let mut enters: Vec<(f64, f64, f64)> = Vec::new();
    let mut exits: Vec<(f64, f64, f64)> = Vec::new();

    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        let lo = ys.partition_point(|y| *y < qy - b);
        let hi = ys.partition_point(|y| *y <= qy + b);
        enters.clear();
        exits.clear();
        for p in &by_y[lo..hi] {
            let dy = p.y - qy;
            let dy2 = dy * dy;
            if dy2 > b2 {
                continue;
            }
            let h = (b2 - dy2).sqrt();
            let px = p.x - x0;
            enters.push((px - h, px, dy2));
            exits.push((px + h, px, dy2));
        }
        enters.sort_by(|a, c| a.0.total_cmp(&c.0));
        exits.sort_by(|a, c| a.0.total_cmp(&c.0));

        let mut m = Moments::default();
        let mut ei = 0usize;
        let mut xi = 0usize;
        let row = grid.row_mut(iy);
        for (ix, cell) in row.iter_mut().enumerate() {
            let qx = spec.col_x(ix) - x0;
            // Activate points whose interval has started (enter ≤ qx).
            while ei < enters.len() && enters[ei].0 <= qx {
                let (_, px, dy2) = enters[ei];
                m.apply(px, dy2, 1.0);
                ei += 1;
            }
            // Retire points whose interval has ended (exit < qx keeps the
            // boundary pixel inclusive, matching `eval_sq(d²)` at d = b).
            while xi < exits.len() && exits[xi].0 < qx {
                let (_, px, dy2) = exits[xi];
                m.apply(px, dy2, -1.0);
                xi += 1;
            }
            *cell = m.eval(qx, coeffs);
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_kdv;
    use lsga_core::{AnyKernel, BBox, KernelKind};

    fn scatter(n: usize, shift: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    shift + 50.0 + (f * 0.831).sin() * 45.0,
                    shift + 50.0 + (f * 0.557).cos() * 45.0,
                )
            })
            .collect()
    }

    fn spec_at(shift: f64) -> GridSpec {
        GridSpec::new(
            BBox::new(shift, shift, shift + 100.0, shift + 100.0),
            40,
            40,
        )
    }

    fn check_against_naive(kind: KernelKind, b: f64, n: usize, shift: f64, tol: f64) {
        let pts = scatter(n, shift);
        let spec = spec_at(shift);
        let poly = PolyKernel::new(kind, b).unwrap();
        let slam = slam_kdv(&pts, spec, poly);
        let naive = match poly.as_any() {
            AnyKernel::Uniform(k) => naive_kdv(&pts, spec, k),
            AnyKernel::Epanechnikov(k) => naive_kdv(&pts, spec, k),
            AnyKernel::Quartic(k) => naive_kdv(&pts, spec, k),
            other => panic!("unexpected kernel {other:?}"),
        };
        let rel = slam.rel_diff(&naive, naive.max().max(1e-12) * 1e-3);
        assert!(rel < tol, "{kind:?} b={b} shift={shift}: rel err {rel}");
    }

    #[test]
    fn matches_naive_uniform() {
        check_against_naive(KernelKind::Uniform, 12.0, 400, 0.0, 1e-9);
    }

    #[test]
    fn matches_naive_epanechnikov() {
        check_against_naive(KernelKind::Epanechnikov, 12.0, 400, 0.0, 1e-9);
        check_against_naive(KernelKind::Epanechnikov, 3.0, 400, 0.0, 1e-9);
        check_against_naive(KernelKind::Epanechnikov, 60.0, 400, 0.0, 1e-9);
    }

    #[test]
    fn matches_naive_quartic() {
        check_against_naive(KernelKind::Quartic, 12.0, 400, 0.0, 1e-8);
        check_against_naive(KernelKind::Quartic, 40.0, 200, 0.0, 1e-8);
    }

    #[test]
    fn stable_at_shifted_coordinates() {
        // Large absolute coordinates stress the moment cancellation; the
        // origin shift must keep the result accurate.
        check_against_naive(KernelKind::Quartic, 15.0, 300, 1e5, 1e-6);
        check_against_naive(KernelKind::Epanechnikov, 15.0, 300, 1e5, 1e-7);
    }

    #[test]
    fn empty_dataset() {
        let poly = PolyKernel::new(KernelKind::Epanechnikov, 5.0).unwrap();
        let g = slam_kdv(&[], spec_at(0.0), poly);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn single_point_boundary_inclusion() {
        // A point whose support boundary lands exactly on a pixel centre:
        // uniform kernel must count it there (Table 2 is ≤-inclusive).
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 8.0, 1.0), 8, 1);
        // Pixel centres at x = 0.5, 1.5, ..., 7.5; point at x = 2.5 with
        // b = 2 covers [0.5, 4.5] inclusive.
        let pts = [Point::new(2.5, 0.5)];
        let poly = PolyKernel::new(KernelKind::Uniform, 2.0).unwrap();
        let g = slam_kdv(&pts, spec, poly);
        assert_eq!(g.at(0, 0), 0.5); // 1/b at the left boundary
        assert_eq!(g.at(4, 0), 0.5); // right boundary
        assert_eq!(g.at(5, 0), 0.0);
    }

    #[test]
    fn dense_duplicates() {
        let mut pts = vec![Point::new(50.0, 50.0); 64];
        pts.extend(scatter(64, 0.0));
        let spec = spec_at(0.0);
        let poly = PolyKernel::new(KernelKind::Quartic, 20.0).unwrap();
        let slam = slam_kdv(&pts, spec, poly);
        let naive = naive_kdv(&pts, spec, lsga_core::Quartic::new(20.0));
        assert!(slam.rel_diff(&naive, naive.max() * 1e-3) < 1e-8);
    }
}
