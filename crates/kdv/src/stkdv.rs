//! Spatiotemporal KDV (STKDV; paper §2.2, Fig. 4).
//!
//! Phenomena like epidemic waves move: the dominant hotspot of the Hong
//! Kong COVID-19 data differs between December 2020 and January 2022
//! (Fig. 4). STKDV rasterizes an `X × Y × T` cube under a product
//! space–time kernel `K_s(q, p) · K_t(τ, t_p)`.
//!
//! Two implementations with identical output:
//!
//! * [`stkdv_naive`] — the `O(X·Y·T·n)` quadruple loop;
//! * [`stkdv_sweep`] — the SWS-style sharing (\[27\]): per pixel, gather
//!   the spatial candidates once, then sweep the `T` time slices
//!   maintaining *kernel-weighted temporal moments*, so each slice costs
//!   `O(1)` after its enter/leave events — `O(X·Y·(n_loc log n_loc + T))`
//!   total, versus naive `O(X·Y·T·n_loc)`.

use lsga_core::par::{par_map, Threads};
use lsga_core::soa::{distances_sq_tile, TILE};
use lsga_core::{GridSpec, Kernel, Point, PolyKernel, SpaceTimeGrid, TimedPoint};
use lsga_index::GridIndex;
use lsga_obs::{self as obs, Counter};

/// Literal STKDV: evaluate the product kernel at every `(pixel, slice)`.
/// Exact for every kernel pair.
pub fn stkdv_naive<KS: Kernel, KT: Kernel>(
    points: &[TimedPoint],
    spec: GridSpec,
    t_min: f64,
    t_max: f64,
    nt: usize,
    spatial: KS,
    temporal: KT,
) -> SpaceTimeGrid {
    let _span = obs::span("kdv.stkdv_naive");
    let mut grid = SpaceTimeGrid::zeros(spec, t_min, t_max, nt);
    for it in 0..nt {
        let tau = grid.time(it);
        for iy in 0..spec.ny {
            obs::add(Counter::KdvPairs, (spec.nx * points.len()) as u64);
            let qy = spec.row_y(iy);
            for ix in 0..spec.nx {
                let q = Point::new(spec.col_x(ix), qy);
                let mut sum = 0.0;
                for p in points {
                    let ks = spatial.eval_sq(q.dist_sq(&p.point));
                    if ks != 0.0 {
                        let dt = tau - p.t;
                        sum += ks * temporal.eval_sq(dt * dt);
                    }
                }
                grid.set(ix, iy, it, sum);
            }
        }
    }
    grid
}

/// Weighted temporal moments `Σ w·tᵏ` of the active candidate set.
#[derive(Debug, Default, Clone, Copy)]
struct TMoments {
    w0: f64,
    w1: f64,
    w2: f64,
    w3: f64,
    w4: f64,
}

impl TMoments {
    #[inline]
    fn apply(&mut self, w: f64, t: f64, sign: f64) {
        let sw = sign * w;
        let t2 = t * t;
        self.w0 += sw;
        self.w1 += sw * t;
        self.w2 += sw * t2;
        self.w3 += sw * t2 * t;
        self.w4 += sw * t2 * t2;
    }

    /// `Σ w_i · (c₀ + c₁·(τ−t_i)² + c₂·(τ−t_i)⁴)`.
    #[inline]
    fn eval(&self, tau: f64, coeffs: [f64; 3]) -> f64 {
        let [c0, c1, c2] = coeffs;
        let mut sum = c0 * self.w0;
        if c1 != 0.0 || c2 != 0.0 {
            sum += c1 * (tau * tau * self.w0 - 2.0 * tau * self.w1 + self.w2);
        }
        if c2 != 0.0 {
            let t2 = tau * tau;
            sum += c2
                * (t2 * t2 * self.w0 - 4.0 * t2 * tau * self.w1 + 6.0 * t2 * self.w2
                    - 4.0 * tau * self.w3
                    + self.w4);
        }
        sum
    }
}

/// SWS-style STKDV: exact for any spatial kernel crossed with a
/// *polynomial* temporal kernel (uniform / Epanechnikov / quartic in
/// time — the family the sharing results \[27\] cover).
///
/// `tail_eps` truncates an infinite-support *spatial* kernel exactly as
/// in [`crate::naive::grid_pruned_kdv`].
#[allow(clippy::too_many_arguments)] // mirrors the problem's parameters
pub fn stkdv_sweep<KS: Kernel>(
    points: &[TimedPoint],
    spec: GridSpec,
    t_min: f64,
    t_max: f64,
    nt: usize,
    spatial: KS,
    temporal: PolyKernel,
    tail_eps: f64,
) -> SpaceTimeGrid {
    stkdv_sweep_threads(
        points,
        spec,
        t_min,
        t_max,
        nt,
        spatial,
        temporal,
        tail_eps,
        Threads::auto(),
    )
}

/// [`stkdv_sweep`] with an explicit [`Threads`] config. Spatial rows run
/// in parallel — each produces its full `nt × nx` slab of slice values,
/// written back into the time-major cube in row order — so the cube is
/// bit-identical for any thread count.
#[allow(clippy::too_many_arguments)] // mirrors the problem's parameters
pub fn stkdv_sweep_threads<KS: Kernel>(
    points: &[TimedPoint],
    spec: GridSpec,
    t_min: f64,
    t_max: f64,
    nt: usize,
    spatial: KS,
    temporal: PolyKernel,
    tail_eps: f64,
    threads: Threads,
) -> SpaceTimeGrid {
    let _span = obs::span("kdv.stkdv_sweep");
    let mut grid = SpaceTimeGrid::zeros(spec, t_min, t_max, nt);
    if points.is_empty() {
        return grid;
    }
    let rs = spatial.effective_radius(tail_eps);
    let rs2 = rs * rs;
    let bt = temporal.bandwidth();
    let coeffs = temporal.coeffs();
    // Shift the time origin to the window centre for moment stability.
    let t0 = 0.5 * (t_min + t_max);

    let planar: Vec<Point> = points.iter().map(|p| p.point).collect();
    let index = GridIndex::build(&planar, rs.max(1e-12));
    let times: Vec<f64> = (0..nt).map(|it| grid.time(it) - t0).collect();
    // Shifted timestamps permuted to the index's entry order, so the
    // candidate sweep reads times from the same contiguous spans as the
    // coordinate columns.
    let entry_ts: Vec<f64> = index
        .entries()
        .iter()
        .map(|&i| points[i as usize].t - t0)
        .collect();
    let index_ref = &index;
    let times_ref = &times;
    let entry_ts_ref = &entry_ts;

    // One spatial row per task: slab[it * nx + ix] holds the row's value
    // in slice it.
    let slabs: Vec<Vec<f64>> = par_map(spec.ny, 1, threads, |iy| {
        let mut candidates: u64 = 0;
        let mut slab = vec![0.0f64; nt * spec.nx];
        // Per-pixel candidate buffer: (weight = K_s, shifted time).
        let mut cands: Vec<(f64, f64)> = Vec::new();
        // Event lists: (event time, weight, point time), sorted.
        let mut enters: Vec<(f64, f64, f64)> = Vec::new();
        let mut exits: Vec<(f64, f64, f64)> = Vec::new();
        // Tile scratch for the batched spatial-kernel evaluation.
        let mut d2s = [0.0f64; TILE];
        let mut wts = [0.0f64; TILE];
        let qy = spec.row_y(iy);
        let (cy0, cy1) = index_ref.cell_row_range(qy - rs, qy + rs);
        let exs = index_ref.entry_xs();
        let eys = index_ref.entry_ys();
        for ix in 0..spec.nx {
            let qx = spec.col_x(ix);
            cands.clear();
            // Candidates in `for_each_candidate` order (cell row, cell
            // column, entry), evaluated TILE at a time: squared
            // distances, then the batched spatial kernel (bit-identical
            // per element to `eval_sq`), then the same scalar filters.
            let (cx0, cx1) = index_ref.cell_col_range(qx - rs, qx + rs);
            for cy in cy0..=cy1 {
                let span = index_ref.row_span(cy, cx0, cx1);
                let mut s0 = span.start;
                while s0 < span.end {
                    let s1 = (s0 + TILE).min(span.end);
                    let len = s1 - s0;
                    candidates += len as u64;
                    distances_sq_tile(qx, qy, &exs[s0..s1], &eys[s0..s1], &mut d2s[..len]);
                    spatial.eval_sq_batch(&d2s[..len], &mut wts[..len]);
                    for k in 0..len {
                        if d2s[k] <= rs2 {
                            let w = wts[k];
                            if w != 0.0 {
                                cands.push((w, entry_ts_ref[s0 + k]));
                            }
                        }
                    }
                    s0 = s1;
                }
            }
            if cands.is_empty() {
                continue; // slices stay zero
            }
            enters.clear();
            exits.clear();
            for &(w, t) in &cands {
                enters.push((t - bt, w, t));
                exits.push((t + bt, w, t));
            }
            enters.sort_by(|a, b| a.0.total_cmp(&b.0));
            exits.sort_by(|a, b| a.0.total_cmp(&b.0));

            let mut m = TMoments::default();
            let mut ei = 0usize;
            let mut xi = 0usize;
            for (it, &tau) in times_ref.iter().enumerate() {
                while ei < enters.len() && enters[ei].0 <= tau {
                    let (_, w, t) = enters[ei];
                    m.apply(w, t, 1.0);
                    ei += 1;
                }
                while xi < exits.len() && exits[xi].0 < tau {
                    let (_, w, t) = exits[xi];
                    m.apply(w, t, -1.0);
                    xi += 1;
                }
                let v = m.eval(tau, coeffs);
                if v != 0.0 {
                    slab[it * spec.nx + ix] = v;
                }
            }
        }
        obs::add(Counter::KdvPairs, candidates);
        slab
    });
    for (iy, slab) in slabs.into_iter().enumerate() {
        for it in 0..nt {
            for ix in 0..spec.nx {
                let v = slab[it * spec.nx + ix];
                if v != 0.0 {
                    grid.set(ix, iy, it, v);
                }
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, Gaussian, KernelKind};

    fn waves(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                let (cx, ct) = if i % 2 == 0 {
                    (30.0, 10.0)
                } else {
                    (70.0, 40.0)
                };
                TimedPoint::new(
                    cx + (f * 0.831).sin() * 8.0,
                    50.0 + (f * 0.557).cos() * 8.0,
                    ct + (f * 0.391).sin() * 4.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 16, 16)
    }

    #[test]
    fn sweep_equals_naive_poly_temporal() {
        let pts = waves(200);
        for t_kind in [
            KernelKind::Uniform,
            KernelKind::Epanechnikov,
            KernelKind::Quartic,
        ] {
            let kt = PolyKernel::new(t_kind, 8.0).unwrap();
            let ks = Epanechnikov::new(15.0);
            let naive = stkdv_naive(&pts, spec(), 0.0, 50.0, 12, ks, kt);
            let sweep = stkdv_sweep(&pts, spec(), 0.0, 50.0, 12, ks, kt, 1e-9);
            let diff = naive.linf_diff(&sweep);
            assert!(diff < 1e-8, "{t_kind:?}: diff {diff}");
        }
    }

    #[test]
    fn sweep_supports_gaussian_spatial() {
        let pts = waves(100);
        let ks = Gaussian::new(12.0);
        let kt = PolyKernel::new(KernelKind::Quartic, 10.0).unwrap();
        let naive = stkdv_naive(&pts, spec(), 0.0, 50.0, 8, ks, kt);
        let sweep = stkdv_sweep(&pts, spec(), 0.0, 50.0, 8, ks, kt, 1e-12);
        // Truncation error bounded by n · tail · 1 · K_t(0).
        assert!(naive.linf_diff(&sweep) < pts.len() as f64 * 1e-12 + 1e-9);
    }

    #[test]
    fn hotspot_moves_between_slices() {
        let pts = waves(600);
        let ks = Epanechnikov::new(12.0);
        let kt = PolyKernel::new(KernelKind::Epanechnikov, 6.0).unwrap();
        let grid = stkdv_sweep(&pts, spec(), 0.0, 50.0, 10, ks, kt, 1e-9);
        // Early slice (t≈10): hotspot near x = 30; late (t≈40): near 70.
        let early = grid.slice(2).hotspot(); // slice centre t = 12.5
        let late = grid.slice(7).hotspot(); // t = 37.5
        assert!((early.x - 30.0).abs() < 12.0, "early hotspot at {early:?}");
        assert!((late.x - 70.0).abs() < 12.0, "late hotspot at {late:?}");
    }

    #[test]
    fn empty_dataset() {
        let ks = Epanechnikov::new(10.0);
        let kt = PolyKernel::new(KernelKind::Uniform, 5.0).unwrap();
        let g = stkdv_sweep(&[], spec(), 0.0, 10.0, 4, ks, kt, 1e-9);
        assert_eq!(
            g.linf_diff(&SpaceTimeGrid::zeros(spec(), 0.0, 10.0, 4)),
            0.0
        );
    }

    #[test]
    fn events_outside_time_window_still_counted_when_in_reach() {
        // A point at t = −3 with temporal bandwidth 5 must contribute to
        // the first slice (t = 0.5 of [0, 10] with 10 slices).
        let pts = [TimedPoint::new(50.0, 50.0, -3.0)];
        let ks = Epanechnikov::new(20.0);
        let kt = PolyKernel::new(KernelKind::Epanechnikov, 5.0).unwrap();
        let naive = stkdv_naive(&pts, spec(), 0.0, 10.0, 10, ks, kt);
        let sweep = stkdv_sweep(&pts, spec(), 0.0, 10.0, 10, ks, kt, 1e-9);
        assert!(naive.linf_diff(&sweep) < 1e-12);
        let (ix, iy) = spec().pixel_of(&Point::new(50.0, 50.0));
        assert!(naive.at(ix, iy, 0) > 0.0);
        assert_eq!(naive.at(ix, iy, 9), 0.0);
    }
}
