//! Adaptive-bandwidth KDV (Abramson/Breiman adaptive KDE; the method
//! GPU-accelerated by Zhang, Zhu & Huang \[107\] in the paper's survey of
//! hardware approaches).
//!
//! A fixed bandwidth oversmooths dense hotspots and undersmooths sparse
//! peripheries. The adaptive estimator gives every data point its own
//! bandwidth `b_i = b₀ · (f̃(p_i) / g)^(−α)` where `f̃` is a pilot
//! density (fixed-bandwidth KDE at the data points), `g` the geometric
//! mean of the pilot values, and `α ∈ [0, 1]` the sensitivity (0 =
//! fixed; 0.5 = Abramson's square-root law).
//!
//! Evaluation scatters each point's kernel onto the pixels inside its
//! own support — `O(Σ_i (b_i/Δ)²)` — so the cost adapts along with the
//! bandwidths.

use lsga_core::soa::{accumulate_density_span, scatter_scaled_row};
use lsga_core::{DensityGrid, GridSpec, Kernel, KernelKind, Point};
use lsga_index::GridIndex;

/// Per-point bandwidths from the Abramson pilot rule. Returns `(b_i)`
/// clamped to `[b₀/10, 10·b₀]` to keep degenerate pilot values from
/// producing useless kernels.
pub fn adaptive_bandwidths(
    points: &[Point],
    kind: KernelKind,
    pilot_bandwidth: f64,
    alpha: f64,
) -> Vec<f64> {
    assert!(pilot_bandwidth > 0.0, "pilot bandwidth must be positive");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    if points.is_empty() {
        return Vec::new();
    }
    let kernel = kind.with_bandwidth(pilot_bandwidth);
    let radius = kernel.effective_radius(crate::DEFAULT_TAIL_EPS);
    let index = GridIndex::build(points, radius.max(1e-12));
    let cutoff = (radius * radius).min(kernel.support_sq());
    // Pilot density at every data point (self included — standard),
    // folded span-by-span over the index's entry-ordered columns in
    // candidate order — bit-identical to the per-candidate scalar loop.
    let (exs, eys) = (index.entry_xs(), index.entry_ys());
    let pilot: Vec<f64> = points
        .iter()
        .map(|p| {
            let (cx0, cx1) = index.cell_col_range(p.x - radius, p.x + radius);
            let (cy0, cy1) = index.cell_row_range(p.y - radius, p.y + radius);
            let mut sum = 0.0;
            for cy in cy0..=cy1 {
                let span = index.row_span(cy, cx0, cx1);
                sum = accumulate_density_span(
                    &kernel,
                    cutoff,
                    p.x,
                    p.y,
                    &exs[span.clone()],
                    &eys[span],
                    sum,
                );
            }
            sum
        })
        .collect();
    // Geometric mean over positive pilot values (all are ≥ K(0) > 0
    // thanks to the self term, but guard anyway).
    let log_mean = pilot
        .iter()
        .filter(|f| **f > 0.0)
        .map(|f| f.ln())
        .sum::<f64>()
        / pilot.len() as f64;
    let g = log_mean.exp();
    pilot
        .iter()
        .map(|f| {
            let lambda = if *f > 0.0 { (f / g).powf(-alpha) } else { 1.0 };
            (pilot_bandwidth * lambda).clamp(pilot_bandwidth * 0.1, pilot_bandwidth * 10.0)
        })
        .collect()
}

/// Adaptive-bandwidth KDV: pilot pass + per-point scatter.
///
/// Each point's kernel is rescaled by `integral(b₀) / integral(b_i)` so
/// every point contributes the same total mass as one fixed-bandwidth
/// kernel — the usual KDE normalization, without which narrow kernels
/// would *lose* weight instead of sharpening. With `alpha = 0` the
/// output equals the fixed-bandwidth KDV exactly.
pub fn adaptive_kdv(
    points: &[Point],
    spec: GridSpec,
    kind: KernelKind,
    pilot_bandwidth: f64,
    alpha: f64,
) -> DensityGrid {
    let bandwidths = adaptive_bandwidths(points, kind, pilot_bandwidth, alpha);
    let base_mass = kind.with_bandwidth(pilot_bandwidth).integral_2d();
    let mut grid = DensityGrid::zeros(spec);
    let qxs = crate::naive::pixel_xs(&spec);
    for (p, b) in points.iter().zip(&bandwidths) {
        let kernel = kind.with_bandwidth(*b);
        let mass_scale = base_mass / kernel.integral_2d();
        let radius = kernel.effective_radius(crate::DEFAULT_TAIL_EPS);
        // Pixel rectangle overlapping this point's support.
        let x0 = ((p.x - radius - spec.bbox.min_x) / spec.dx())
            .floor()
            .max(0.0) as usize;
        let y0 = ((p.y - radius - spec.bbox.min_y) / spec.dy())
            .floor()
            .max(0.0) as usize;
        let x1 = (((p.x + radius - spec.bbox.min_x) / spec.dx()).ceil() as usize).min(spec.nx);
        let y1 = (((p.y + radius - spec.bbox.min_y) / spec.dy()).ceil() as usize).min(spec.ny);
        let cutoff = (radius * radius).min(kernel.support_sq());
        for iy in y0..y1 {
            let qy = spec.row_y(iy);
            let row = grid.row_mut(iy);
            scatter_scaled_row(
                &kernel,
                cutoff,
                mass_scale,
                p.x,
                p.y,
                &qxs[x0..x1],
                qy,
                &mut row[x0..x1],
            );
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::grid_pruned_kdv;
    use lsga_core::BBox;

    /// A tight cluster plus a sparse ring.
    fn mixed_density() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..200 {
            let f = i as f64;
            pts.push(Point::new(
                30.0 + (f * 0.831).sin() * 2.0,
                30.0 + (f * 0.557).cos() * 2.0,
            ));
        }
        for i in 0..40 {
            let a = i as f64 / 40.0 * std::f64::consts::TAU;
            pts.push(Point::new(60.0 + 25.0 * a.cos(), 60.0 + 25.0 * a.sin()));
        }
        pts
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 50, 50)
    }

    #[test]
    fn alpha_zero_equals_fixed_bandwidth() {
        let pts = mixed_density();
        let adaptive = adaptive_kdv(&pts, spec(), KernelKind::Quartic, 8.0, 0.0);
        let fixed = grid_pruned_kdv(
            &pts,
            spec(),
            lsga_core::Quartic::new(8.0),
            crate::DEFAULT_TAIL_EPS,
        );
        assert!(
            adaptive.linf_diff(&fixed) <= fixed.max() * 1e-12,
            "diff {}",
            adaptive.linf_diff(&fixed)
        );
    }

    #[test]
    fn dense_points_get_narrow_bandwidths() {
        let pts = mixed_density();
        let bw = adaptive_bandwidths(&pts, KernelKind::Quartic, 8.0, 0.5);
        // Cluster points (first 200) vs ring points (last 40).
        let mean_cluster = bw[..200].iter().sum::<f64>() / 200.0;
        let mean_ring = bw[200..].iter().sum::<f64>() / 40.0;
        assert!(
            mean_cluster < mean_ring,
            "cluster {mean_cluster} vs ring {mean_ring}"
        );
        for b in &bw {
            assert!(*b >= 0.8 - 1e-12 && *b <= 80.0 + 1e-12);
        }
    }

    #[test]
    fn adaptive_sharpens_the_hotspot_peak() {
        let pts = mixed_density();
        let fixed = grid_pruned_kdv(
            &pts,
            spec(),
            lsga_core::Quartic::new(8.0),
            crate::DEFAULT_TAIL_EPS,
        );
        let adaptive = adaptive_kdv(&pts, spec(), KernelKind::Quartic, 8.0, 0.5);
        // Narrower kernels on the dense cluster raise its peak height.
        assert!(
            adaptive.max() > fixed.max() * 1.2,
            "adaptive {} vs fixed {}",
            adaptive.max(),
            fixed.max()
        );
        // Both locate the hotspot at the cluster.
        assert!(adaptive.hotspot().dist(&Point::new(30.0, 30.0)) < 5.0);
    }

    #[test]
    fn empty_dataset() {
        assert!(adaptive_bandwidths(&[], KernelKind::Quartic, 5.0, 0.5).is_empty());
        assert_eq!(
            adaptive_kdv(&[], spec(), KernelKind::Quartic, 5.0, 0.5).sum(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = adaptive_bandwidths(&mixed_density(), KernelKind::Quartic, 5.0, 1.5);
    }
}
