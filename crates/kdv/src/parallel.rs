//! Thread-parallel KDV (parallel/distributed family, paper §2.2).
//!
//! The paper's fourth solution family throws parallel hardware (threads,
//! GPU, FPGA, clusters) at the pixel loop, which is embarrassingly
//! parallel across pixels. This module is the single-machine thread
//! representative: a thin wrapper over [`lsga_core::par`] — pixel rows
//! are claimed dynamically by the shared scoped-thread pool, each
//! running the grid-pruned exact evaluation against a shared immutable
//! index. Output is bit-identical to [`crate::naive::grid_pruned_kdv`]
//! for every thread count. The *simulated-cluster* distributed version
//! (with partitioning and halo accounting) lives in `lsga-dist`.

use crate::naive::{pixel_xs, pruned_kdv_row};
use lsga_core::par::{par_map_rows, Threads};
use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::GridIndex;

/// Row-parallel exact KDV over `n_threads` workers (clamped to ≥ 1).
/// `tail_eps` truncates infinite-support kernels exactly as in
/// [`crate::naive::grid_pruned_kdv`].
pub fn parallel_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    n_threads: usize,
) -> DensityGrid {
    parallel_kdv_threads(points, spec, kernel, tail_eps, Threads::exact(n_threads))
}

/// [`parallel_kdv`] with an explicit [`Threads`] config (use
/// [`Threads::auto`] to respect `LSGA_THREADS` / the machine size).
pub fn parallel_kdv_threads<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    threads: Threads,
) -> DensityGrid {
    let _span = lsga_obs::span("kdv.parallel");
    let mut grid = DensityGrid::zeros(spec);
    if points.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::build(points, radius.max(1e-12));
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);

    // Rows are claimed dynamically: clustered data makes hot rows cost
    // more, and the claim counter lets fast workers absorb the slack.
    // Each row runs the same tiled routine as the sequential version,
    // so the grid is bit-identical for every thread count.
    let nx = spec.nx;
    par_map_rows(grid.values_mut(), nx, threads, |iy, row| {
        let qy = spec.row_y(iy);
        pruned_kdv_row(&index, &kernel, radius, cutoff, &qxs, qy, row);
    });
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::grid_pruned_kdv;
    use lsga_core::{BBox, Epanechnikov, Gaussian};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 40.0,
                    50.0 + (f * 0.557).cos() * 40.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 30, 31)
    }

    #[test]
    fn identical_to_sequential_for_any_thread_count() {
        let pts = scatter(400);
        let k = Epanechnikov::new(12.0);
        let seq = grid_pruned_kdv(&pts, spec(), k, 1e-9);
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_kdv(&pts, spec(), k, 1e-9, threads);
            assert_eq!(par.values(), seq.values(), "threads={threads}");
        }
    }

    #[test]
    fn gaussian_truncation_consistent() {
        let pts = scatter(200);
        let k = Gaussian::new(9.0);
        let seq = grid_pruned_kdv(&pts, spec(), k, 1e-6);
        let par = parallel_kdv(&pts, spec(), k, 1e-6, 4);
        assert_eq!(par.values(), seq.values());
    }

    #[test]
    fn zero_threads_clamped() {
        let pts = scatter(50);
        let k = Epanechnikov::new(10.0);
        let g = parallel_kdv(&pts, spec(), k, 1e-9, 0);
        assert!(g.max() > 0.0);
    }

    #[test]
    fn empty_dataset() {
        let k = Epanechnikov::new(10.0);
        assert_eq!(parallel_kdv(&[], spec(), k, 1e-9, 4).sum(), 0.0);
    }
}
