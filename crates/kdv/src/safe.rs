//! SAFE-style multi-bandwidth sharing (computational-sharing family,
//! paper §2.2; Chan et al., PVLDB 2021 \[26\]).
//!
//! Bandwidth tuning — the workflow the paper describes in §2.1, where the
//! K-function's clustered range feeds candidate bandwidths into KDV —
//! needs the *same* dataset rasterized under many bandwidths. For the
//! polynomial kernels, the kernel sum under bandwidth `b_j` depends only
//! on the moments `(count, Σd², Σd⁴)` of the points within distance
//! `b_j`, so a single pass over the candidates of the **largest**
//! bandwidth can serve every bandwidth at once: each candidate deposits
//! its `(1, d², d⁴)` into the difference-array slot of the first
//! bandwidth that covers it, and a suffix scan turns the slots into
//! per-bandwidth moments. Cost per pixel: `O(candidates(b_max) + B)`
//! instead of `O(Σ_j candidates(b_j))`.

use lsga_core::{DensityGrid, GridSpec, KernelKind, Point, PolyKernel};
use lsga_index::GridIndex;

/// Shared multi-bandwidth KDV. `bandwidths` must be positive; they are
/// processed in ascending order and results are returned in the *input*
/// order. Output is exact (identical to per-bandwidth naive evaluation).
/// Panics if `kind` is not polynomial or `bandwidths` is empty.
pub fn safe_multi_bandwidth(
    points: &[Point],
    spec: GridSpec,
    kind: KernelKind,
    bandwidths: &[f64],
) -> Vec<DensityGrid> {
    assert!(!bandwidths.is_empty(), "need at least one bandwidth");
    let kernels: Vec<PolyKernel> = bandwidths
        .iter()
        .map(|b| PolyKernel::new(kind, *b).expect("polynomial kernel required"))
        .collect();

    // Ascending bandwidth order, remembering input positions.
    let mut order: Vec<usize> = (0..bandwidths.len()).collect();
    order.sort_by(|a, b| bandwidths[*a].total_cmp(&bandwidths[*b]));
    let sorted_b2: Vec<f64> = order
        .iter()
        .map(|&i| bandwidths[i] * bandwidths[i])
        .collect();
    let b_max = bandwidths[*order.last().unwrap()];

    let mut grids: Vec<DensityGrid> = (0..bandwidths.len())
        .map(|_| DensityGrid::zeros(spec))
        .collect();
    if points.is_empty() {
        return grids;
    }
    let index = GridIndex::build(points, b_max);
    let nb = bandwidths.len();
    // Difference slots: diff[j] accumulates moments of points whose first
    // covering bandwidth (ascending) is j.
    let mut diff = vec![[0.0f64; 3]; nb];

    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        for ix in 0..spec.nx {
            let q = Point::new(spec.col_x(ix), qy);
            diff.iter_mut().for_each(|d| *d = [0.0; 3]);
            index.for_each_candidate(&q, b_max, |_, p| {
                let d2 = q.dist_sq(p);
                if d2 <= sorted_b2[nb - 1] {
                    // First (smallest) bandwidth whose b² covers d².
                    let j = sorted_b2.partition_point(|b2| *b2 < d2);
                    let slot = &mut diff[j];
                    slot[0] += 1.0;
                    slot[1] += d2;
                    slot[2] += d2 * d2;
                }
            });
            // Suffix scan: bandwidth j covers everything deposited at ≤ j.
            let mut acc = [0.0f64; 3];
            for (j, slot) in diff.iter().enumerate() {
                acc[0] += slot[0];
                acc[1] += slot[1];
                acc[2] += slot[2];
                let input_pos = order[j];
                let [c0, c1, c2] = kernels[input_pos].coeffs();
                grids[input_pos].set(ix, iy, c0 * acc[0] + c1 * acc[1] + c2 * acc[2]);
            }
        }
    }
    grids
}

/// The unshared baseline: one independent grid-pruned pass per bandwidth.
/// Same output as [`safe_multi_bandwidth`]; exists so the E14 ablation
/// can measure exactly what the sharing buys.
pub fn independent_multi_bandwidth(
    points: &[Point],
    spec: GridSpec,
    kind: KernelKind,
    bandwidths: &[f64],
) -> Vec<DensityGrid> {
    bandwidths
        .iter()
        .map(|b| {
            let k = PolyKernel::new(kind, *b).expect("polynomial kernel required");
            crate::naive::grid_pruned_kdv(points, spec, k, crate::DEFAULT_TAIL_EPS)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 40.0,
                    50.0 + (f * 0.557).cos() * 40.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 24, 24)
    }

    #[test]
    fn shared_equals_independent_all_kernels() {
        let pts = scatter(300);
        let bws = [4.0, 9.0, 17.0, 30.0];
        for kind in [
            KernelKind::Uniform,
            KernelKind::Epanechnikov,
            KernelKind::Quartic,
        ] {
            let shared = safe_multi_bandwidth(&pts, spec(), kind, &bws);
            let indep = independent_multi_bandwidth(&pts, spec(), kind, &bws);
            for (j, (s, i)) in shared.iter().zip(&indep).enumerate() {
                let rel = s.rel_diff(i, i.max().max(1e-12) * 1e-3);
                assert!(rel < 1e-9, "{kind:?} bandwidth #{j}: rel {rel}");
            }
        }
    }

    #[test]
    fn unsorted_bandwidths_keep_input_order() {
        let pts = scatter(150);
        let shuffled = [20.0, 5.0, 12.0];
        let sorted = [5.0, 12.0, 20.0];
        let a = safe_multi_bandwidth(&pts, spec(), KernelKind::Quartic, &shuffled);
        let b = safe_multi_bandwidth(&pts, spec(), KernelKind::Quartic, &sorted);
        assert!(a[0].linf_diff(&b[2]) < 1e-12);
        assert!(a[1].linf_diff(&b[0]) < 1e-12);
        assert!(a[2].linf_diff(&b[1]) < 1e-12);
    }

    #[test]
    fn single_bandwidth_degenerates_gracefully() {
        let pts = scatter(100);
        let shared = safe_multi_bandwidth(&pts, spec(), KernelKind::Epanechnikov, &[10.0]);
        let indep = independent_multi_bandwidth(&pts, spec(), KernelKind::Epanechnikov, &[10.0]);
        assert!(shared[0].linf_diff(&indep[0]) < 1e-9);
    }

    #[test]
    fn duplicate_bandwidths_allowed() {
        let pts = scatter(80);
        let out = safe_multi_bandwidth(&pts, spec(), KernelKind::Uniform, &[7.0, 7.0]);
        assert!(out[0].linf_diff(&out[1]) < 1e-12);
    }

    #[test]
    fn empty_dataset_gives_zero_grids() {
        let out = safe_multi_bandwidth(&[], spec(), KernelKind::Quartic, &[3.0, 6.0]);
        assert!(out.iter().all(|g| g.sum() == 0.0));
    }

    #[test]
    #[should_panic(expected = "polynomial")]
    fn non_polynomial_kernel_rejected() {
        let _ = safe_multi_bandwidth(&scatter(10), spec(), KernelKind::Gaussian, &[5.0]);
    }
}
