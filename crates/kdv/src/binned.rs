//! Fast Gaussian KDV by binning + separable convolution — the paper's
//! §2.4 **future work** on complexity-reduced algorithms for kernels the
//! sharing results cannot handle (Gaussian, the scikit-learn default).
//!
//! The Gaussian is the one Table 2 kernel that factorizes over axes:
//! `exp(−(dx² + dy²)/b²) = exp(−dx²/b²) · exp(−dy²/b²)`. Snapping every
//! point to the centre of a fine bin (an `oversample ×` refinement of
//! the output raster) turns Eq. 1 into two 1-D convolutions:
//!
//! 1. bin: fine-grid counts, `O(n)`;
//! 2. horizontal pass: fine rows × output columns, `O(Y_f · X · k_x)`;
//! 3. vertical pass: output pixels, `O(Y · X · k_y)`;
//!
//! where `k` is the truncated kernel width in bins — **independent of
//! n** beyond the binning, versus `O(X·Y·n)` for naive evaluation.
//!
//! The only error is the snap of each point by at most half a fine-bin
//! diagonal `δ`; since `|∂K/∂d| ≤ √(2/e)/b` for the Gaussian, the
//! per-pixel absolute error is bounded by `n_loc · √(2/e) · δ / b`,
//! shrinking linearly in `oversample`.

use lsga_core::par::{par_map_rows, Threads};
use lsga_core::Point;
use lsga_core::{DensityGrid, Gaussian, GridSpec, Kernel};

/// Approximate Gaussian KDV via binned separable convolution.
///
/// * `oversample` — fine bins per output pixel along each axis (≥ 1).
///   The error decreases linearly in it; with fine bins at ~1/10 of the
///   bandwidth the peak relative error is around a percent.
/// * `tail_eps` — where to truncate the Gaussian tail (see
///   [`Kernel::effective_radius`]).
pub fn binned_gaussian_kdv(
    points: &[Point],
    spec: GridSpec,
    kernel: Gaussian,
    oversample: usize,
    tail_eps: f64,
) -> DensityGrid {
    binned_gaussian_kdv_threads(points, spec, kernel, oversample, tail_eps, Threads::auto())
}

/// [`binned_gaussian_kdv`] with an explicit [`Threads`] config. The
/// horizontal pass parallelizes over fine rows and the vertical pass
/// over output rows; both write disjoint rows, so the raster is
/// bit-identical for any thread count.
pub fn binned_gaussian_kdv_threads(
    points: &[Point],
    spec: GridSpec,
    kernel: Gaussian,
    oversample: usize,
    tail_eps: f64,
    threads: Threads,
) -> DensityGrid {
    assert!(oversample >= 1, "oversample must be at least 1");
    let mut out = DensityGrid::zeros(spec);
    if points.is_empty() {
        return out;
    }
    let radius = kernel.effective_radius(tail_eps);
    let b2_inv = 1.0 / (kernel.bandwidth() * kernel.bandwidth());

    // Fine binning grid. Points outside the raster still contribute to
    // in-raster pixels, so the fine grid covers the raster inflated by
    // the truncation radius.
    let fine_dx = spec.dx() / oversample as f64;
    let fine_dy = spec.dy() / oversample as f64;
    let pad_x = (radius / fine_dx).ceil() as usize + 1;
    let pad_y = (radius / fine_dy).ceil() as usize + 1;
    let fnx = spec.nx * oversample + 2 * pad_x;
    let fny = spec.ny * oversample + 2 * pad_y;
    let origin_x = spec.bbox.min_x - pad_x as f64 * fine_dx;
    let origin_y = spec.bbox.min_y - pad_y as f64 * fine_dy;

    let mut counts = vec![0.0f64; fnx * fny];
    for p in points {
        let fx = (p.x - origin_x) / fine_dx;
        let fy = (p.y - origin_y) / fine_dy;
        if fx < 0.0 || fy < 0.0 {
            continue; // outside even the padded grid: cannot reach raster
        }
        let ix = fx as usize;
        let iy = fy as usize;
        if ix >= fnx || iy >= fny {
            continue;
        }
        counts[iy * fnx + ix] += 1.0;
    }

    // 1-D kernel tables: output-column / output-row centre vs fine-bin
    // centre offsets are integer multiples of the fine step plus a fixed
    // phase, so one table per axis suffices.
    let kx = (radius / fine_dx).ceil() as isize;
    let ky = (radius / fine_dy).ceil() as isize;

    // Horizontal pass: for every fine row, evaluate at output column
    // centres. Output column cx centre in fine-bin units:
    let col_fine = |cx: usize| -> f64 {
        (spec.col_x(cx) - origin_x) / fine_dx - 0.5 // fine bin centre index space
    };
    let mut h = vec![0.0f64; fny * spec.nx];
    // Precompute per-column integer base and weight table.
    let mut col_tables: Vec<(isize, Vec<f64>)> = Vec::with_capacity(spec.nx);
    for cx in 0..spec.nx {
        let c = col_fine(cx);
        let base = c.round() as isize - kx;
        let mut w = Vec::with_capacity((2 * kx + 1) as usize);
        for o in 0..=(2 * kx) {
            let u = (base + o) as f64;
            let dx = (u - c) * fine_dx;
            w.push((-dx * dx * b2_inv).exp());
        }
        col_tables.push((base, w));
    }
    let counts_ref = &counts;
    let col_tables_ref = &col_tables;
    par_map_rows(&mut h, spec.nx, threads, |fy, hrow| {
        let row = &counts_ref[fy * fnx..(fy + 1) * fnx];
        for (cx, (base, w)) in col_tables_ref.iter().enumerate() {
            let mut sum = 0.0;
            for (o, wv) in w.iter().enumerate() {
                let u = base + o as isize;
                if u >= 0 && (u as usize) < fnx {
                    let c = row[u as usize];
                    if c != 0.0 {
                        sum += c * wv;
                    }
                }
            }
            hrow[cx] = sum;
        }
    });

    // Vertical pass onto the output raster.
    let row_fine = |cy: usize| -> f64 { (spec.row_y(cy) - origin_y) / fine_dy - 0.5 };
    let h_ref = &h;
    par_map_rows(out.values_mut(), spec.nx, threads, |cy, out_row| {
        let c = row_fine(cy);
        let base = c.round() as isize - ky;
        let mut w = Vec::with_capacity((2 * ky + 1) as usize);
        for o in 0..=(2 * ky) {
            let v = (base + o) as f64;
            let dy = (v - c) * fine_dy;
            w.push((-dy * dy * b2_inv).exp());
        }
        for (cx, out_v) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (o, wv) in w.iter().enumerate() {
                let v = base + o as isize;
                if v >= 0 && (v as usize) < fny {
                    let hv = h_ref[v as usize * spec.nx + cx];
                    if hv != 0.0 {
                        sum += hv * wv;
                    }
                }
            }
            *out_v = sum;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_kdv;
    use lsga_core::BBox;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 40.0,
                    50.0 + (f * 0.557).cos() * 40.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn close_to_naive_at_moderate_oversample() {
        let pts = scatter(400);
        let k = Gaussian::new(8.0);
        let exact = naive_kdv(&pts, spec(), k);
        // oversample 4: fine bins ~b/10 -> a few percent peak error.
        let coarse = binned_gaussian_kdv(&pts, spec(), k, 4, 1e-9);
        assert!(coarse.rel_diff(&exact, exact.max() * 1e-2) < 0.08);
        // oversample 16: ~4x tighter.
        let fine = binned_gaussian_kdv(&pts, spec(), k, 16, 1e-9);
        assert!(
            fine.rel_diff(&exact, exact.max() * 1e-2) < 0.02,
            "rel err {}",
            fine.rel_diff(&exact, exact.max() * 1e-2)
        );
    }

    #[test]
    fn error_shrinks_with_oversample() {
        let pts = scatter(300);
        let k = Gaussian::new(6.0);
        let exact = naive_kdv(&pts, spec(), k);
        let err = |os: usize| binned_gaussian_kdv(&pts, spec(), k, os, 1e-9).linf_diff(&exact);
        let e1 = err(1);
        let e4 = err(4);
        let e8 = err(8);
        assert!(e4 < e1, "{e1} -> {e4}");
        assert!(e8 < e4 * 1.01, "{e4} -> {e8}");
        // Linear-in-δ bound: quadrupling oversample cuts error ~4x.
        assert!(e4 < e1 / 2.0);
    }

    #[test]
    fn mass_is_preserved() {
        // Total kernel mass Σ_pixels F is nearly invariant under the
        // snap (each point contributes ~the same truncated mass).
        let pts = scatter(200);
        let k = Gaussian::new(10.0);
        let exact = naive_kdv(&pts, spec(), k);
        let approx = binned_gaussian_kdv(&pts, spec(), k, 4, 1e-9);
        let rel = (approx.sum() - exact.sum()).abs() / exact.sum();
        assert!(rel < 0.01, "mass drift {rel}");
    }

    #[test]
    fn out_of_window_points_contribute() {
        // A point just outside the raster must still add density inside.
        let k = Gaussian::new(10.0);
        let pts = [Point::new(-5.0, 50.0)];
        let approx = binned_gaussian_kdv(&pts, spec(), k, 4, 1e-9);
        let exact = naive_kdv(&pts, spec(), k);
        assert!(exact.max() > 0.3);
        assert!(approx.linf_diff(&exact) < 0.05 * exact.max());
    }

    #[test]
    fn empty_dataset() {
        let k = Gaussian::new(5.0);
        assert_eq!(binned_gaussian_kdv(&[], spec(), k, 4, 1e-9).sum(), 0.0);
    }
}
