//! # lsga-kdv
//!
//! Kernel density visualization (paper Definition 1) and its variants,
//! with one representative implementation of every solution family the
//! paper surveys in §2.2:
//!
//! | family | module | representative of |
//! |---|---|---|
//! | exact baselines | [`naive`] | the O(X·Y·n) loop every off-the-shelf package runs |
//! | function approximation | [`bounds`] | QUAD/KARL-style LB/UB refinement over a kd-tree (Eq. 6) |
//! | data sampling | [`sampling`] | coreset-style subset KDE with a Hoeffding guarantee (Eq. 7) |
//! | computational sharing | [`slam`], [`safe`] | SLAM sweep-line \[32\]; SAFE multi-bandwidth sharing \[26\] |
//! | parallel / distributed | [`parallel`] | row-parallel tiles (the thread analogue of the GPU methods) |
//!
//! The variants:
//!
//! * [`nkdv`] — network KDV (§2.2, Fig. 3): density over road-network
//!   lixels under shortest-path distance, plus the Okabe–Sugihara
//!   equal-split discontinuous estimator ([`equal_split`]) whose kernel
//!   mass is junction-invariant;
//! * [`stkdv`] — spatiotemporal KDV (§2.2, Fig. 4): an `X × Y × T` raster
//!   under a product space–time kernel, with an SWS-style temporal sweep.
//!
//! [`binned`] implements the paper's §2.4 *future work* on
//! complexity-reduced algorithms for the Gaussian kernel: binning +
//! separable 1-D convolutions, `O(n + X·Y·k)` instead of `O(X·Y·n)`.
//!
//! ## Conventions
//!
//! Every planar method returns the **raw kernel sum** `Σ_p K(q, p)` per
//! pixel — the paper's Eq. 1 with `w = 1`. Apply a normalization of your
//! choice with [`lsga_core::DensityGrid::scale`] (e.g. `1/n`, or the
//! kernel's integral for a true density estimate); keeping `w` external
//! makes the exact/approximate cross-checks in the test-suite direct.
//!
//! Infinite-support kernels (Gaussian, exponential) are handled exactly by
//! [`naive::naive_kdv`] and to a caller-chosen tail tolerance by the
//! pruned/accelerated methods, mirroring the truncation every surveyed
//! package applies.

pub mod adaptive;
pub mod binned;
pub mod bounds;
pub mod equal_split;
pub mod naive;
pub mod nkdv;
pub mod parallel;
pub mod safe;
pub mod sampling;
pub mod slam;
pub mod stkdv;

pub use adaptive::{adaptive_bandwidths, adaptive_kdv};
pub use binned::{binned_gaussian_kdv, binned_gaussian_kdv_threads};
pub use bounds::BoundsKdv;
pub use equal_split::nkdv_equal_split;
pub use naive::{
    grid_pruned_kdv, grid_pruned_kdv_segmented, grid_pruned_kdv_with_index, naive_kdv,
};
pub use nkdv::{nkdv_forward, nkdv_naive, NetworkDensity};
pub use parallel::{parallel_kdv, parallel_kdv_threads};
pub use safe::{independent_multi_bandwidth, safe_multi_bandwidth};
pub use sampling::{sample_size_for_guarantee, sampling_kdv, sampling_kdv_segmented};
pub use slam::slam_kdv;
pub use stkdv::{stkdv_naive, stkdv_sweep, stkdv_sweep_threads};

/// Default tail tolerance used when truncating infinite-support kernels:
/// contributions below `DEFAULT_TAIL_EPS · K(0)` are dropped.
pub const DEFAULT_TAIL_EPS: f64 = 1e-9;
