//! Network kernel density visualization (NKDV; paper §2.2, Fig. 3).
//!
//! Events constrained to a road network (traffic accidents, street crime)
//! are misrepresented by planar KDV: two locations close in Euclidean
//! distance can be far apart along the network (Fig. 3), so NKDV replaces
//! `dist(q, p)` with the shortest-path distance `dist_G(q, p)` and
//! rasterizes over *lixels* instead of pixels.
//!
//! Two implementations with identical output:
//!
//! * [`nkdv_naive`] — one bounded Dijkstra **per lixel** (the obvious
//!   reverse formulation; cost grows with the raster resolution);
//! * [`nkdv_forward`] — one bounded Dijkstra **per event**, scattering
//!   each event's kernel mass onto the lixels of every reached edge
//!   analytically (the direction the fast NKDV literature \[30, 96\] takes:
//!   events are typically far fewer than lixels).

use lsga_core::{Kernel, LsgaError, Result};
use lsga_network::{DijkstraEngine, EdgeId, EdgePosition, Lixels, RoadNetwork};

/// A computed network density: one value per lixel, parallel to
/// [`Lixels::all`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDensity {
    values: Vec<f64>,
}

impl NetworkDensity {
    /// Wrap precomputed per-lixel values (parallel to [`Lixels::all`]).
    pub fn from_values(values: Vec<f64>) -> Self {
        NetworkDensity { values }
    }

    /// Per-lixel density values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Maximum lixel density (0 for an empty network).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Index of the hottest lixel.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.values.iter().enumerate() {
            if *v > self.values[best] {
                best = i;
            }
        }
        best
    }

    /// Largest absolute difference against another density of the same
    /// lixelization.
    pub fn linf_diff(&self, other: &NetworkDensity) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Shortest network distance from the position the engine was seeded from
/// to `to`, given that the engine already ran with `to`'s radius bound.
/// `same_edge_direct` carries the along-edge distance when source and
/// target share an edge.
#[inline]
fn dist_via_endpoints(
    net: &RoadNetwork,
    engine: &DijkstraEngine<'_>,
    to: &EdgePosition,
    same_edge_direct: Option<f64>,
) -> f64 {
    let e = net.edge(to.edge);
    let mut d = f64::INFINITY;
    if let Some(du) = engine.dist(e.u) {
        d = d.min(du + to.to_u());
    }
    if let Some(dv) = engine.dist(e.v) {
        d = d.min(dv + to.to_v(net));
    }
    if let Some(direct) = same_edge_direct {
        d = d.min(direct);
    }
    d
}

/// Reject inputs that would make an NKDV evaluation panic or silently
/// produce NaN: an empty lixelization (no raster to write), a kernel
/// whose effective support is non-finite or non-positive (a non-finite
/// or degenerate bandwidth), and events referencing edges outside the
/// network or carrying non-finite offsets.
fn validate_nkdv_inputs(
    net: &RoadNetwork,
    lixels: &Lixels,
    events: &[EdgePosition],
    radius: f64,
) -> Result<()> {
    if lixels.is_empty() {
        return Err(LsgaError::InvalidParameter {
            name: "lixels",
            message: "NKDV needs a non-empty lixelization".to_string(),
        });
    }
    if !radius.is_finite() || radius <= 0.0 {
        return Err(LsgaError::InvalidParameter {
            name: "bandwidth",
            message: format!("kernel effective radius must be finite and positive, got {radius}"),
        });
    }
    for (i, ev) in events.iter().enumerate() {
        if ev.edge.0 as usize >= net.edge_count() {
            return Err(LsgaError::InvalidParameter {
                name: "events",
                message: format!(
                    "event {i} references edge {} but the network has {} edges",
                    ev.edge.0,
                    net.edge_count()
                ),
            });
        }
        if !ev.offset.is_finite() {
            return Err(LsgaError::InvalidParameter {
                name: "events",
                message: format!("event {i} has non-finite offset {}", ev.offset),
            });
        }
    }
    Ok(())
}

/// NKDV by one bounded Dijkstra per lixel (`O(L · (Dijkstra + n))`).
/// The baseline the fast methods are measured against.
///
/// Returns [`LsgaError::InvalidParameter`] for an empty lixelization, a
/// degenerate kernel bandwidth, or out-of-network / non-finite events.
pub fn nkdv_naive<K: Kernel>(
    net: &RoadNetwork,
    lixels: &Lixels,
    events: &[EdgePosition],
    kernel: K,
) -> Result<NetworkDensity> {
    let radius = kernel.effective_radius(crate::DEFAULT_TAIL_EPS);
    validate_nkdv_inputs(net, lixels, events, radius)?;
    let mut engine = DijkstraEngine::new(net);
    let mut values = vec![0.0f64; lixels.len()];
    for (li, lx) in lixels.all().iter().enumerate() {
        let pos = EdgePosition {
            edge: lx.edge,
            offset: lx.center_offset(),
        };
        let e = net.edge(pos.edge);
        engine.run(&[(e.u, pos.to_u()), (e.v, pos.to_v(net))], radius);
        let mut sum = 0.0;
        for ev in events {
            let direct = if ev.edge == pos.edge {
                Some((ev.offset - pos.offset).abs())
            } else {
                None
            };
            let d = dist_via_endpoints(net, &engine, ev, direct);
            if d <= radius {
                sum += kernel.eval(d);
            }
        }
        values[li] = sum;
    }
    Ok(NetworkDensity { values })
}

/// NKDV by one bounded Dijkstra per event (`O(n · (Dijkstra + touched
/// lixels))`), the forward-scatter formulation. Identical output to
/// [`nkdv_naive`].
///
/// Returns [`LsgaError::InvalidParameter`] for an empty lixelization, a
/// degenerate kernel bandwidth, or out-of-network / non-finite events.
pub fn nkdv_forward<K: Kernel>(
    net: &RoadNetwork,
    lixels: &Lixels,
    events: &[EdgePosition],
    kernel: K,
) -> Result<NetworkDensity> {
    let radius = kernel.effective_radius(crate::DEFAULT_TAIL_EPS);
    validate_nkdv_inputs(net, lixels, events, radius)?;
    let mut engine = DijkstraEngine::new(net);
    let mut values = vec![0.0f64; lixels.len()];
    // Edge de-duplication stamps, one slot per edge, epoch per event.
    let mut stamp = vec![u32::MAX; net.edge_count()];
    for (ev_round, ev) in events.iter().enumerate() {
        let round = ev_round as u32;
        let e = net.edge(ev.edge);
        engine.run(&[(e.u, ev.to_u()), (e.v, ev.to_v(net))], radius);
        let scatter = |edge: EdgeId, values: &mut Vec<f64>, engine: &DijkstraEngine<'_>| {
            let rec = net.edge(edge);
            let du = engine.dist(rec.u).unwrap_or(f64::INFINITY);
            let dv = engine.dist(rec.v).unwrap_or(f64::INFINITY);
            let same_edge = edge == ev.edge;
            if !same_edge && du == f64::INFINITY && dv == f64::INFINITY {
                return;
            }
            let (first, count) = lixels.edge_range(edge);
            for k in 0..count {
                let li = (first + k) as usize;
                let lx = lixels.all()[li];
                let o = lx.center_offset();
                let mut d = (du + o).min(dv + (rec.length - o));
                if same_edge {
                    d = d.min((o - ev.offset).abs());
                }
                if d <= radius {
                    values[li] += kernel.eval(d);
                }
            }
        };
        // The event's own edge is always in range.
        stamp[ev.edge.0 as usize] = round;
        scatter(ev.edge, &mut values, &engine);
        // Every edge incident to a reached vertex is a candidate.
        for &v in engine.reached() {
            for (_, edge) in net.neighbors(v) {
                let ei = edge.0 as usize;
                if stamp[ei] != round {
                    stamp[ei] = round;
                    scatter(edge, &mut values, &engine);
                }
            }
        }
    }
    Ok(NetworkDensity { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{Epanechnikov, Point, Triangular};
    use lsga_network::{grid_network, sample_on_network, NetworkBuilder};

    fn parallel_roads() -> RoadNetwork {
        // Fig. 3 topology: two long parallel roads joined at one end.
        let mut b = NetworkBuilder::new();
        let a0 = b.add_vertex(Point::new(0.0, 0.0));
        let a1 = b.add_vertex(Point::new(20.0, 0.0));
        let c0 = b.add_vertex(Point::new(0.0, 2.0));
        let c1 = b.add_vertex(Point::new(20.0, 2.0));
        b.add_edge(a0, a1, None).unwrap();
        b.add_edge(c0, c1, None).unwrap();
        b.add_edge(a0, c0, None).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_equals_naive_on_grid() {
        let net = grid_network(6, 6, 5.0);
        let lixels = Lixels::build(&net, 1.0);
        let events = sample_on_network(&net, 40, 11);
        let k = Epanechnikov::new(8.0);
        let naive = nkdv_naive(&net, &lixels, &events, k).unwrap();
        let forward = nkdv_forward(&net, &lixels, &events, k).unwrap();
        assert!(
            naive.linf_diff(&forward) < 1e-9,
            "diff {}",
            naive.linf_diff(&forward)
        );
        assert!(naive.max() > 0.0);
    }

    #[test]
    fn forward_equals_naive_other_kernel() {
        let net = grid_network(5, 4, 3.0);
        let lixels = Lixels::build(&net, 0.7);
        let events = sample_on_network(&net, 25, 5);
        let k = Triangular::new(5.0);
        let naive = nkdv_naive(&net, &lixels, &events, k).unwrap();
        let forward = nkdv_forward(&net, &lixels, &events, k).unwrap();
        assert!(naive.linf_diff(&forward) < 1e-9);
    }

    #[test]
    fn fig3_network_distance_suppresses_cross_road_density() {
        let net = parallel_roads();
        let lixels = Lixels::build(&net, 0.5);
        // All events near the far end of the bottom road.
        let events: Vec<EdgePosition> = (0..10)
            .map(|i| EdgePosition {
                edge: EdgeId(0),
                offset: 18.0 + 0.2 * i as f64,
            })
            .collect();
        let k = Epanechnikov::new(4.0);
        let density = nkdv_forward(&net, &lixels, &events, k).unwrap();
        // Hot lixel: on the bottom road near the events.
        let hot = density.argmax();
        assert_eq!(lixels.all()[hot].edge, EdgeId(0));
        // The top-road lixel Euclidean-closest to the events (x ≈ 18.8,
        // 2 units away in the plane, ~40 along the network) gets zero.
        let top_far = lixels
            .all()
            .iter()
            .position(|lx| lx.edge == EdgeId(1) && lx.center_offset() > 18.0)
            .unwrap();
        assert_eq!(density.values()[top_far], 0.0);
    }

    #[test]
    fn event_in_isolated_area_only_affects_own_edge() {
        // Event with bandwidth smaller than the distance to any vertex.
        let net = parallel_roads();
        let lixels = Lixels::build(&net, 0.5);
        let events = [EdgePosition {
            edge: EdgeId(0),
            offset: 10.0,
        }];
        let k = Epanechnikov::new(1.0);
        let density = nkdv_forward(&net, &lixels, &events, k).unwrap();
        for (lx, v) in lixels.all().iter().zip(density.values()) {
            if lx.edge != EdgeId(0) {
                assert_eq!(*v, 0.0);
            }
        }
        let naive = nkdv_naive(&net, &lixels, &events, k).unwrap();
        assert!(naive.linf_diff(&density) < 1e-12);
    }

    #[test]
    fn no_events_gives_zero_density() {
        let net = grid_network(3, 3, 2.0);
        let lixels = Lixels::build(&net, 0.5);
        let density = nkdv_forward(&net, &lixels, &[], Epanechnikov::new(3.0)).unwrap();
        assert_eq!(density.max(), 0.0);
    }

    #[test]
    fn rejects_empty_lixelization() {
        // A vertex-only network builds, but lixelizes to nothing.
        let mut b = NetworkBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        let net = b.build().unwrap();
        let lixels = Lixels::build(&net, 1.0);
        assert!(lixels.is_empty());
        let err = nkdv_forward(&net, &lixels, &[], Epanechnikov::new(2.0)).unwrap_err();
        assert!(
            matches!(
                err,
                lsga_core::LsgaError::InvalidParameter { name: "lixels", .. }
            ),
            "{err:?}"
        );
    }

    /// A kernel whose effective radius is whatever the test plants —
    /// the library constructors refuse non-finite bandwidths up front,
    /// so the NKDV guard against degenerate radii needs a hand-rolled
    /// kernel to exercise it.
    #[derive(Clone, Copy)]
    struct BadRadiusKernel(f64);

    impl Kernel for BadRadiusKernel {
        fn bandwidth(&self) -> f64 {
            self.0
        }
        fn eval_sq(&self, _d2: f64) -> f64 {
            1.0
        }
        fn support(&self) -> Option<f64> {
            None
        }
        fn effective_radius(&self, _tail_eps: f64) -> f64 {
            self.0
        }
        fn integral_2d(&self) -> f64 {
            1.0
        }
        fn kind(&self) -> lsga_core::KernelKind {
            lsga_core::KernelKind::Uniform
        }
    }

    #[test]
    fn rejects_non_finite_bandwidth() {
        let net = grid_network(3, 3, 2.0);
        let lixels = Lixels::build(&net, 0.5);
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let err = nkdv_forward(&net, &lixels, &[], BadRadiusKernel(bad)).unwrap_err();
            assert!(
                matches!(
                    err,
                    lsga_core::LsgaError::InvalidParameter {
                        name: "bandwidth",
                        ..
                    }
                ),
                "radius {bad}: {err:?}"
            );
            let err = nkdv_naive(&net, &lixels, &[], BadRadiusKernel(bad)).unwrap_err();
            assert!(
                matches!(
                    err,
                    lsga_core::LsgaError::InvalidParameter {
                        name: "bandwidth",
                        ..
                    }
                ),
                "radius {bad}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_invalid_events() {
        let net = grid_network(3, 3, 2.0);
        let lixels = Lixels::build(&net, 0.5);
        let out_of_range = [EdgePosition {
            edge: EdgeId(net.edge_count() as u32),
            offset: 0.5,
        }];
        let err = nkdv_forward(&net, &lixels, &out_of_range, Epanechnikov::new(2.0)).unwrap_err();
        assert!(
            matches!(
                err,
                lsga_core::LsgaError::InvalidParameter { name: "events", .. }
            ),
            "{err:?}"
        );
        let nan_offset = [EdgePosition {
            edge: EdgeId(0),
            offset: f64::NAN,
        }];
        let err = nkdv_naive(&net, &lixels, &nan_offset, Epanechnikov::new(2.0)).unwrap_err();
        assert!(
            matches!(
                err,
                lsga_core::LsgaError::InvalidParameter { name: "events", .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn density_additive_in_events() {
        let net = grid_network(4, 4, 2.0);
        let lixels = Lixels::build(&net, 0.5);
        let ev = sample_on_network(&net, 10, 3);
        let k = Epanechnikov::new(4.0);
        let d1 = nkdv_forward(&net, &lixels, &ev, k).unwrap();
        let mut doubled = ev.clone();
        doubled.extend(ev.iter().copied());
        let d2 = nkdv_forward(&net, &lixels, &doubled, k).unwrap();
        for (a, b) in d1.values().iter().zip(d2.values()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }
}
