//! Function-approximation KDV (paper §2.2, Eq. 6): QUAD/KARL-style
//! lower/upper-bound refinement over a kd-tree.
//!
//! Every radially non-increasing kernel satisfies, for all points `p`
//! inside a tree node `N`,
//! `K(maxdist(q, N)) ≤ K(q, p) ≤ K(mindist(q, N))`,
//! so a frontier of nodes yields `LB(q) ≤ F_P(q) ≤ UB(q)`. Refining the
//! frontier node with the largest bound gap tightens the sandwich until
//! `UB ≤ (1 + ε)·LB`, at which point `(LB + UB)/2` satisfies the paper's
//! Eq. 6 guarantee `(1 − ε)·F ≤ R ≤ (1 + ε)·F`.

use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::{KdNodeId, KdTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Reusable bound-refinement KDV engine (build the tree once, query many
/// pixel grids / ε values).
#[derive(Debug)]
pub struct BoundsKdv {
    tree: KdTree,
    n: usize,
}

struct FrontierEntry {
    gap: f64,
    lb: f64,
    ub: f64,
    node: KdNodeId,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gap == other.gap
    }
}
impl Eq for FrontierEntry {}
impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gap.total_cmp(&other.gap)
    }
}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl BoundsKdv {
    /// Index the dataset (kd-tree with the default leaf size).
    pub fn new(points: &[Point]) -> Self {
        BoundsKdv {
            tree: KdTree::build(points),
            n: points.len(),
        }
    }

    /// Approximate `F_P(q)` with relative guarantee ε:
    /// `(1 − ε)·F_P(q) ≤ result ≤ (1 + ε)·F_P(q)`.
    ///
    /// When the sandwich cannot certify the ratio (e.g. `F_P(q) = 0`
    /// everywhere in range), refinement continues to leaves and the result
    /// is exact.
    pub fn density_at<K: Kernel>(&self, q: &Point, kernel: K, eps: f64) -> f64 {
        assert!(eps >= 0.0, "epsilon must be non-negative");
        let Some(root) = self.tree.root() else {
            return 0.0;
        };
        let mut exact = 0.0f64; // contributions evaluated point-by-point
        let mut lb_sum = 0.0f64;
        let mut ub_sum = 0.0f64;
        let mut frontier: BinaryHeap<FrontierEntry> = BinaryHeap::new();

        let push = |node: KdNodeId,
                    frontier: &mut BinaryHeap<FrontierEntry>,
                    lb_sum: &mut f64,
                    ub_sum: &mut f64| {
            let bbox = self.tree.bbox(node);
            let cnt = self.tree.count(node) as f64;
            let ub = cnt * kernel.eval_sq(bbox.min_dist_sq(q));
            let lb = cnt * kernel.eval_sq(bbox.max_dist_sq(q));
            if ub == 0.0 {
                return; // entire node outside the kernel support
            }
            *lb_sum += lb;
            *ub_sum += ub;
            frontier.push(FrontierEntry {
                gap: ub - lb,
                lb,
                ub,
                node,
            });
        };

        push(root, &mut frontier, &mut lb_sum, &mut ub_sum);
        loop {
            let lb_total = exact + lb_sum;
            let ub_total = exact + ub_sum;
            if ub_total <= (1.0 + eps) * lb_total {
                return 0.5 * (lb_total + ub_total);
            }
            let Some(top) = frontier.pop() else {
                // Frontier exhausted: everything evaluated exactly.
                return exact;
            };
            lb_sum -= top.lb;
            ub_sum -= top.ub;
            match self.tree.children(top.node) {
                Some((l, r)) => {
                    push(l, &mut frontier, &mut lb_sum, &mut ub_sum);
                    push(r, &mut frontier, &mut lb_sum, &mut ub_sum);
                }
                None => {
                    for p in self.tree.node_points(top.node) {
                        exact += kernel.eval_sq(q.dist_sq(p));
                    }
                }
            }
        }
    }

    /// Approximate KDV over a whole grid: every pixel satisfies Eq. 6
    /// with the given ε.
    pub fn compute<K: Kernel>(&self, spec: GridSpec, kernel: K, eps: f64) -> DensityGrid {
        let mut grid = DensityGrid::zeros(spec);
        for iy in 0..spec.ny {
            let qy = spec.row_y(iy);
            for ix in 0..spec.nx {
                let q = Point::new(spec.col_x(ix), qy);
                grid.set(ix, iy, self.density_at(&q, kernel, eps));
            }
        }
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_kdv;
    use lsga_core::{BBox, Epanechnikov, Gaussian, KernelKind};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 30.0,
                    50.0 + (f * 0.557).cos() * 30.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 24, 24)
    }

    #[test]
    fn zero_eps_is_exact() {
        let pts = scatter(150);
        let k = Gaussian::new(10.0);
        let engine = BoundsKdv::new(&pts);
        let approx = engine.compute(spec(), k, 0.0);
        let exact = naive_kdv(&pts, spec(), k);
        assert!(approx.linf_diff(&exact) < 1e-9);
    }

    #[test]
    fn guarantee_holds_for_all_kernels() {
        let pts = scatter(200);
        let engine = BoundsKdv::new(&pts);
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(15.0);
            for eps in [0.01, 0.1, 0.5] {
                let approx = engine.compute(spec(), k, eps);
                let exact = naive_kdv(&pts, spec(), k);
                for (a, e) in approx.values().iter().zip(exact.values()) {
                    assert!(
                        *a >= (1.0 - eps) * e - 1e-9 && *a <= (1.0 + eps) * e + 1e-9,
                        "{kind:?} eps={eps}: approx {a} vs exact {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_density_regions_exact() {
        // Points in one corner, query far outside any support.
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let engine = BoundsKdv::new(&pts);
        let k = Epanechnikov::new(2.0);
        let v = engine.density_at(&Point::new(90.0, 90.0), k, 0.1);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn empty_dataset() {
        let engine = BoundsKdv::new(&[]);
        assert!(engine.is_empty());
        assert_eq!(
            engine.density_at(&Point::new(0.0, 0.0), Gaussian::new(1.0), 0.1),
            0.0
        );
    }

    #[test]
    fn looser_eps_never_violates_guarantee() {
        let pts = scatter(100);
        let engine = BoundsKdv::new(&pts);
        let k = Gaussian::new(20.0);
        let exact = naive_kdv(&pts, spec(), k);
        let loose = engine.compute(spec(), k, 1.0);
        for (a, e) in loose.values().iter().zip(exact.values()) {
            assert!(*a <= 2.0 * e + 1e-9 && *a >= -1e-9);
        }
    }
}
