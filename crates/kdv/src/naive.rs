//! Exact KDV baselines.
//!
//! [`naive_kdv`] is the literal `O(X·Y·n)` double loop of Definition 1 —
//! the algorithm the paper says off-the-shelf packages run and domain
//! experts complain about. [`grid_pruned_kdv`] is the strongest *simple*
//! exact method: a bucket grid restricts each pixel to the points inside
//! the kernel's (effective) support, which is exact for finite-support
//! kernels and truncated to a caller-chosen tail for Gaussian/exponential.

use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::GridIndex;

/// Literal Definition 1: evaluate `F_P(q) = Σ_p K(q, p)` at every pixel
/// centre by scanning all points. Exact for every kernel, `O(X·Y·n)`.
pub fn naive_kdv<K: Kernel>(points: &[Point], spec: GridSpec, kernel: K) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        let row = grid.row_mut(iy);
        for (ix, cell) in row.iter_mut().enumerate() {
            let q = Point::new(spec.col_x(ix), qy);
            let mut sum = 0.0;
            for p in points {
                sum += kernel.eval_sq(q.dist_sq(p));
            }
            *cell = sum;
        }
    }
    grid
}

/// Grid-pruned exact KDV: bucket the points with cell size equal to the
/// kernel's effective radius, then evaluate each pixel only against the
/// ≤ 3×3 cells its support overlaps.
///
/// Exact for finite-support kernels. For infinite-support kernels the
/// kernel tail below `tail_eps · K(0)` is truncated (use
/// [`crate::DEFAULT_TAIL_EPS`] for a practically exact result).
pub fn grid_pruned_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    if points.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::build(points, radius.max(1e-12));
    let r2 = radius * radius;
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        for ix in 0..spec.nx {
            let q = Point::new(spec.col_x(ix), qy);
            let mut sum = 0.0;
            index.for_each_candidate(&q, radius, |_, p| {
                let d2 = q.dist_sq(p);
                if d2 <= r2 {
                    sum += kernel.eval_sq(d2);
                }
            });
            grid.set(ix, iy, sum);
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, Gaussian, KernelKind, Quartic, Uniform};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 30.0,
                    50.0 + (f * 0.557).cos() * 30.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn naive_single_point_profile() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let k = Epanechnikov::new(2.0);
        let grid = naive_kdv(&[Point::new(2.0, 2.0)], spec, k);
        // Pixel (1,1) centre is (1.5, 1.5): d² = 0.5.
        assert!((grid.at(1, 1) - (1.0 - 0.5 / 4.0)).abs() < 1e-12);
        // Far corner (0.5,0.5): d² = 4.5 > b² -> 0.
        assert_eq!(grid.at(0, 0), 0.0);
        // Symmetry about the data point.
        assert_eq!(grid.at(1, 1), grid.at(2, 2));
        assert_eq!(grid.at(1, 2), grid.at(2, 1));
    }

    #[test]
    fn naive_empty_dataset_gives_zero_grid() {
        let grid = naive_kdv(&[], spec(), Gaussian::new(5.0));
        assert_eq!(grid.max(), 0.0);
        assert_eq!(grid.sum(), 0.0);
    }

    #[test]
    fn grid_pruned_matches_naive_for_finite_support() {
        let pts = scatter(300);
        for b in [3.0, 10.0, 40.0] {
            for kind in [
                KernelKind::Uniform,
                KernelKind::Epanechnikov,
                KernelKind::Quartic,
                KernelKind::Triangular,
                KernelKind::Cosine,
            ] {
                let k = kind.with_bandwidth(b);
                let exact = naive_kdv(&pts, spec(), k);
                let pruned = grid_pruned_kdv(&pts, spec(), k, 1e-9);
                assert!(
                    exact.linf_diff(&pruned) < 1e-9,
                    "{kind:?} b={b}: {}",
                    exact.linf_diff(&pruned)
                );
            }
        }
    }

    #[test]
    fn grid_pruned_gaussian_within_tail_tolerance() {
        let pts = scatter(200);
        let k = Gaussian::new(8.0);
        let exact = naive_kdv(&pts, spec(), k);
        let tail = 1e-9;
        let pruned = grid_pruned_kdv(&pts, spec(), k, tail);
        // Error bounded by n · tail_eps · K(0).
        let bound = pts.len() as f64 * tail * 1.0;
        assert!(exact.linf_diff(&pruned) <= bound + 1e-12);
    }

    #[test]
    fn density_increases_with_point_mass() {
        let mut pts = scatter(100);
        let base = naive_kdv(&pts, spec(), Quartic::new(20.0));
        pts.extend(scatter(100)); // double every point
        let doubled = naive_kdv(&pts, spec(), Quartic::new(20.0));
        for (a, b) in base.values().iter().zip(doubled.values()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_found_at_data_concentration() {
        // 50 points at one spot, 5 scattered far away.
        let mut pts = vec![Point::new(20.0, 80.0); 50];
        pts.push(Point::new(90.0, 10.0));
        pts.push(Point::new(10.0, 10.0));
        let grid = naive_kdv(&pts, spec(), Quartic::new(10.0));
        let hot = grid.hotspot();
        assert!(hot.dist(&Point::new(20.0, 80.0)) < 5.0);
        // The flat uniform kernel still puts its plateau over the mass.
        let flat = naive_kdv(&pts, spec(), Uniform::new(10.0));
        assert!(flat.hotspot().dist(&Point::new(20.0, 80.0)) <= 10.0 + 5.0);
    }
}
