//! Exact KDV baselines.
//!
//! [`naive_kdv`] is the literal `O(X·Y·n)` double loop of Definition 1 —
//! the algorithm the paper says off-the-shelf packages run and domain
//! experts complain about. [`grid_pruned_kdv`] is the strongest *simple*
//! exact method: a bucket grid restricts each pixel to the points inside
//! the kernel's (effective) support, which is exact for finite-support
//! kernels and truncated to a caller-chosen tail for Gaussian/exponential.

use lsga_core::soa::{accumulate_density_row, PointsSoA};
use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::{GridIndex, SegmentedGrid};
use lsga_obs::{self as obs, Counter};

/// Pixel-centre abscissae of a raster row, shared by every row sweep.
pub(crate) fn pixel_xs(spec: &GridSpec) -> Vec<f64> {
    (0..spec.nx).map(|ix| spec.col_x(ix)).collect()
}

/// Literal Definition 1: evaluate `F_P(q) = Σ_p K(q, p)` at every pixel
/// centre by scanning all points. Exact for every kernel, `O(X·Y·n)`.
///
/// The point set is columnarized once and each raster row runs through
/// the cache-blocked masked microkernel; per pixel the fold stays in
/// point order, so the output is bit-identical to the scalar double loop.
pub fn naive_kdv<K: Kernel>(points: &[Point], spec: GridSpec, kernel: K) -> DensityGrid {
    let _span = obs::span("kdv.naive");
    let mut grid = DensityGrid::zeros(spec);
    let soa = PointsSoA::from_points(points);
    let cutoff = kernel.support_sq();
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        accumulate_density_row(
            &kernel,
            cutoff,
            &qxs,
            qy,
            &soa.xs,
            &soa.ys,
            grid.row_mut(iy),
        );
        obs::add(Counter::KdvPairs, (qxs.len() * soa.xs.len()) as u64);
    }
    grid
}

/// Compute one raster row of the grid-pruned KDV into `row`.
///
/// Shared by [`grid_pruned_kdv`] and the row-parallel variant so both
/// produce bit-identical grids. Instead of gathering candidates per
/// pixel, the row is swept cell-by-cell: the per-pixel candidate
/// cell-column bounds are monotone non-decreasing across the row, so
/// each candidate cell serves one contiguous pixel interval, found by
/// binary search, and contributes through one tiled microkernel call.
/// Every pixel still folds its candidates in exactly
/// `GridIndex::for_each_candidate` order (cell row asc, cell column asc,
/// entry order), so the result matches the scalar per-pixel loop bit for
/// bit.
pub(crate) fn pruned_kdv_row<K: Kernel>(
    index: &GridIndex,
    kernel: &K,
    radius: f64,
    cutoff_r2: f64,
    qxs: &[f64],
    qy: f64,
    row: &mut [f64],
) {
    pruned_kdv_row_multi(&[index], kernel, radius, cutoff_r2, qxs, qy, row);
}

/// The multi-segment generalization of [`pruned_kdv_row`]: the point
/// set is an ordered stack of segment indexes sharing one cell
/// decomposition, and each candidate cell is folded **segment-minor** —
/// oldest segment's entries first, then the next segment's, and so on.
///
/// That order is not a convention, it is the bit-identity proof: the
/// monolithic index over the concatenated point sequence buckets each
/// cell's entries in input order (stable counting sort), which *is*
/// segment order followed by within-segment entry order. The SoA
/// microkernel is a strict per-pixel left-fold with the accumulator
/// carried in `row`, so folding a cell's span as k back-to-back segment
/// spans produces the same bits as one monolithic span. Hence a single
/// segment reproduces [`pruned_kdv_row`] exactly, and k segments
/// reproduce the monolithic rebuild exactly.
///
/// Work accounting also matches the monolithic sweep: pair counts sum
/// to the same total, and a cell counts as pruned iff it serves no
/// pixel or is empty in *every* segment.
pub(crate) fn pruned_kdv_row_multi<K: Kernel>(
    segments: &[&GridIndex],
    kernel: &K,
    radius: f64,
    cutoff_r2: f64,
    qxs: &[f64],
    qy: f64,
    row: &mut [f64],
) {
    let nx = qxs.len();
    if nx == 0 {
        return;
    }
    let geom = segments[0];
    let (cy0, cy1) = geom.cell_row_range(qy - radius, qy + radius);
    let mut cx0s = Vec::with_capacity(nx);
    let mut cx1s = Vec::with_capacity(nx);
    for qx in qxs {
        let (c0, c1) = geom.cell_col_range(qx - radius, qx + radius);
        cx0s.push(c0);
        cx1s.push(c1);
    }
    let mut pairs: u64 = 0;
    let mut pruned: u64 = 0;
    for cy in cy0..=cy1 {
        for cx in cx0s[0]..=cx1s[nx - 1] {
            // Pixels whose candidate column interval contains `cx`.
            let lo = cx1s.partition_point(|&c| c < cx);
            let hi = cx0s.partition_point(|&c| c <= cx);
            if lo >= hi {
                pruned += 1;
                continue;
            }
            let mut occupied = false;
            for seg in segments {
                let span = seg.row_span(cy, cx, cx);
                if span.is_empty() {
                    continue;
                }
                occupied = true;
                pairs += ((hi - lo) * span.len()) as u64;
                accumulate_density_row(
                    kernel,
                    cutoff_r2,
                    &qxs[lo..hi],
                    qy,
                    &seg.entry_xs()[span.clone()],
                    &seg.entry_ys()[span],
                    &mut row[lo..hi],
                );
            }
            if !occupied {
                pruned += 1;
            }
        }
    }
    obs::add(Counter::KdvPairs, pairs);
    obs::add(Counter::KdvCellsPruned, pruned);
}

/// Grid-pruned exact KDV: bucket the points with cell size equal to the
/// kernel's effective radius, then evaluate each pixel only against the
/// ≤ 3×3 cells its support overlaps.
///
/// Exact for finite-support kernels. For infinite-support kernels the
/// kernel tail below `tail_eps · K(0)` is truncated (use
/// [`crate::DEFAULT_TAIL_EPS`] for a practically exact result).
pub fn grid_pruned_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let _span = obs::span("kdv.grid_pruned");
    let mut grid = DensityGrid::zeros(spec);
    if points.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::build(points, radius.max(1e-12));
    // The mask cutoff must not exceed the support: past it the raw
    // formula goes negative, which the branchy code never added.
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        pruned_kdv_row(&index, &kernel, radius, cutoff, &qxs, qy, grid.row_mut(iy));
    }
    grid
}

/// Grid-pruned exact KDV over a caller-supplied bucket index.
///
/// Identical numerics to [`grid_pruned_kdv`], but the candidate index is
/// built once by the caller and reused across many rasters — the serving
/// layer evaluates every tile of a pyramid against one shared index. The
/// bit pattern of each pixel depends on the index's cell decomposition
/// (it fixes the candidate fold order), so callers that require
/// bit-identical results across calls must hold the index's bounding box
/// and cell size fixed; `GridIndex::with_bbox` over a fixed window does
/// exactly that.
pub fn grid_pruned_kdv_with_index<K: Kernel>(
    index: &GridIndex,
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let _span = obs::span("kdv.grid_pruned");
    let mut grid = DensityGrid::zeros(spec);
    if index.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        pruned_kdv_row(index, &kernel, radius, cutoff, &qxs, qy, grid.row_mut(iy));
    }
    grid
}

/// Grid-pruned exact KDV over a tiered segment stack — the entry point
/// the incremental ingest engine serves tiles through.
///
/// Numerically this **is** [`grid_pruned_kdv_with_index`] over the
/// monolithic index of the stack's concatenated point sequence, bit for
/// bit: all segments share one cell decomposition, each candidate cell
/// is folded oldest-segment-first (matching the stable counting sort's
/// within-cell input order), and the SoA microkernel's per-pixel fold
/// is a strict left-fold — see [`pruned_kdv_row_multi`]. The caller
/// never pays the monolithic rebuild, only the fold.
pub fn grid_pruned_kdv_segmented<K: Kernel>(
    segments: &SegmentedGrid,
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let _span = obs::span("kdv.grid_pruned");
    let mut grid = DensityGrid::zeros(spec);
    if segments.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);
    let refs: Vec<&GridIndex> = segments.segments().iter().map(|s| s.as_ref()).collect();
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        pruned_kdv_row_multi(&refs, &kernel, radius, cutoff, &qxs, qy, grid.row_mut(iy));
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, Gaussian, KernelKind, Quartic, Uniform};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 30.0,
                    50.0 + (f * 0.557).cos() * 30.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn naive_single_point_profile() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let k = Epanechnikov::new(2.0);
        let grid = naive_kdv(&[Point::new(2.0, 2.0)], spec, k);
        // Pixel (1,1) centre is (1.5, 1.5): d² = 0.5.
        assert!((grid.at(1, 1) - (1.0 - 0.5 / 4.0)).abs() < 1e-12);
        // Far corner (0.5,0.5): d² = 4.5 > b² -> 0.
        assert_eq!(grid.at(0, 0), 0.0);
        // Symmetry about the data point.
        assert_eq!(grid.at(1, 1), grid.at(2, 2));
        assert_eq!(grid.at(1, 2), grid.at(2, 1));
    }

    #[test]
    fn naive_empty_dataset_gives_zero_grid() {
        let grid = naive_kdv(&[], spec(), Gaussian::new(5.0));
        assert_eq!(grid.max(), 0.0);
        assert_eq!(grid.sum(), 0.0);
    }

    #[test]
    fn grid_pruned_matches_naive_for_finite_support() {
        let pts = scatter(300);
        for b in [3.0, 10.0, 40.0] {
            for kind in [
                KernelKind::Uniform,
                KernelKind::Epanechnikov,
                KernelKind::Quartic,
                KernelKind::Triangular,
                KernelKind::Cosine,
            ] {
                let k = kind.with_bandwidth(b);
                let exact = naive_kdv(&pts, spec(), k);
                let pruned = grid_pruned_kdv(&pts, spec(), k, 1e-9);
                assert!(
                    exact.linf_diff(&pruned) < 1e-9,
                    "{kind:?} b={b}: {}",
                    exact.linf_diff(&pruned)
                );
            }
        }
    }

    #[test]
    fn grid_pruned_gaussian_within_tail_tolerance() {
        let pts = scatter(200);
        let k = Gaussian::new(8.0);
        let exact = naive_kdv(&pts, spec(), k);
        let tail = 1e-9;
        let pruned = grid_pruned_kdv(&pts, spec(), k, tail);
        // Error bounded by n · tail_eps · K(0).
        let bound = pts.len() as f64 * tail * 1.0;
        assert!(exact.linf_diff(&pruned) <= bound + 1e-12);
    }

    /// The segmented fold must be bit-identical to the monolithic
    /// rebuild for every way of slicing the point sequence into
    /// consecutive batches — including empty batches and a pre-merged
    /// (compacted) suffix. This is the serving layer's headline
    /// invariant, pinned at the kdv layer where it is proven.
    #[test]
    fn segmented_fold_bit_identical_to_monolithic() {
        use lsga_core::par::Threads;
        use lsga_index::SegmentedGrid;
        use std::sync::Arc;

        let all = scatter(400);
        let window = BBox::new(0.0, 0.0, 100.0, 100.0);
        for kind in [KernelKind::Quartic, KernelKind::Gaussian] {
            for b in [4.0, 18.0] {
                let k = kind.with_bandwidth(b);
                let tail = 1e-7;
                let radius = k.effective_radius(tail).max(1e-12);
                let mono = GridIndex::with_bbox(&all, radius, window);
                let want = grid_pruned_kdv_with_index(&mono, spec(), k, tail);
                for splits in [vec![400], vec![1, 399], vec![130, 0, 200, 70]] {
                    let mut segs = Vec::new();
                    let mut off = 0;
                    for n in &splits {
                        segs.push(Arc::new(GridIndex::with_bbox(
                            &all[off..off + n],
                            radius,
                            window,
                        )));
                        off += n;
                    }
                    let stack = SegmentedGrid::from_segments(segs.clone());
                    let got = grid_pruned_kdv_segmented(&stack, spec(), k, tail);
                    for (a, w) in got.values().iter().zip(want.values()) {
                        assert_eq!(a.to_bits(), w.to_bits(), "{kind:?} b={b} {splits:?}");
                    }
                    // A compacted suffix (CSR merge of the newest
                    // segments) must not move a bit either.
                    if segs.len() >= 2 {
                        let tail_refs: Vec<&GridIndex> =
                            segs[1..].iter().map(|s| s.as_ref()).collect();
                        let merged = GridIndex::merged_threads(&tail_refs, Threads::exact(2));
                        let compacted = SegmentedGrid::from_segments(vec![
                            Arc::clone(&segs[0]),
                            Arc::new(merged),
                        ]);
                        let got = grid_pruned_kdv_segmented(&compacted, spec(), k, tail);
                        for (a, w) in got.values().iter().zip(want.values()) {
                            assert_eq!(a.to_bits(), w.to_bits(), "compacted {kind:?} b={b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn density_increases_with_point_mass() {
        let mut pts = scatter(100);
        let base = naive_kdv(&pts, spec(), Quartic::new(20.0));
        pts.extend(scatter(100)); // double every point
        let doubled = naive_kdv(&pts, spec(), Quartic::new(20.0));
        for (a, b) in base.values().iter().zip(doubled.values()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_found_at_data_concentration() {
        // 50 points at one spot, 5 scattered far away.
        let mut pts = vec![Point::new(20.0, 80.0); 50];
        pts.push(Point::new(90.0, 10.0));
        pts.push(Point::new(10.0, 10.0));
        let grid = naive_kdv(&pts, spec(), Quartic::new(10.0));
        let hot = grid.hotspot();
        assert!(hot.dist(&Point::new(20.0, 80.0)) < 5.0);
        // The flat uniform kernel still puts its plateau over the mass.
        let flat = naive_kdv(&pts, spec(), Uniform::new(10.0));
        assert!(flat.hotspot().dist(&Point::new(20.0, 80.0)) <= 10.0 + 5.0);
    }
}
