//! Exact KDV baselines.
//!
//! [`naive_kdv`] is the literal `O(X·Y·n)` double loop of Definition 1 —
//! the algorithm the paper says off-the-shelf packages run and domain
//! experts complain about. [`grid_pruned_kdv`] is the strongest *simple*
//! exact method: a bucket grid restricts each pixel to the points inside
//! the kernel's (effective) support, which is exact for finite-support
//! kernels and truncated to a caller-chosen tail for Gaussian/exponential.

use lsga_core::soa::{accumulate_density_row, PointsSoA};
use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::GridIndex;
use lsga_obs::{self as obs, Counter};

/// Pixel-centre abscissae of a raster row, shared by every row sweep.
pub(crate) fn pixel_xs(spec: &GridSpec) -> Vec<f64> {
    (0..spec.nx).map(|ix| spec.col_x(ix)).collect()
}

/// Literal Definition 1: evaluate `F_P(q) = Σ_p K(q, p)` at every pixel
/// centre by scanning all points. Exact for every kernel, `O(X·Y·n)`.
///
/// The point set is columnarized once and each raster row runs through
/// the cache-blocked masked microkernel; per pixel the fold stays in
/// point order, so the output is bit-identical to the scalar double loop.
pub fn naive_kdv<K: Kernel>(points: &[Point], spec: GridSpec, kernel: K) -> DensityGrid {
    let _span = obs::span("kdv.naive");
    let mut grid = DensityGrid::zeros(spec);
    let soa = PointsSoA::from_points(points);
    let cutoff = kernel.support_sq();
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        accumulate_density_row(
            &kernel,
            cutoff,
            &qxs,
            qy,
            &soa.xs,
            &soa.ys,
            grid.row_mut(iy),
        );
        obs::add(Counter::KdvPairs, (qxs.len() * soa.xs.len()) as u64);
    }
    grid
}

/// Compute one raster row of the grid-pruned KDV into `row`.
///
/// Shared by [`grid_pruned_kdv`] and the row-parallel variant so both
/// produce bit-identical grids. Instead of gathering candidates per
/// pixel, the row is swept cell-by-cell: the per-pixel candidate
/// cell-column bounds are monotone non-decreasing across the row, so
/// each candidate cell serves one contiguous pixel interval, found by
/// binary search, and contributes through one tiled microkernel call.
/// Every pixel still folds its candidates in exactly
/// `GridIndex::for_each_candidate` order (cell row asc, cell column asc,
/// entry order), so the result matches the scalar per-pixel loop bit for
/// bit.
pub(crate) fn pruned_kdv_row<K: Kernel>(
    index: &GridIndex,
    kernel: &K,
    radius: f64,
    cutoff_r2: f64,
    qxs: &[f64],
    qy: f64,
    row: &mut [f64],
) {
    let nx = qxs.len();
    if nx == 0 {
        return;
    }
    let (cy0, cy1) = index.cell_row_range(qy - radius, qy + radius);
    let mut cx0s = Vec::with_capacity(nx);
    let mut cx1s = Vec::with_capacity(nx);
    for qx in qxs {
        let (c0, c1) = index.cell_col_range(qx - radius, qx + radius);
        cx0s.push(c0);
        cx1s.push(c1);
    }
    let exs = index.entry_xs();
    let eys = index.entry_ys();
    let mut pairs: u64 = 0;
    let mut pruned: u64 = 0;
    for cy in cy0..=cy1 {
        for cx in cx0s[0]..=cx1s[nx - 1] {
            // Pixels whose candidate column interval contains `cx`.
            let lo = cx1s.partition_point(|&c| c < cx);
            let hi = cx0s.partition_point(|&c| c <= cx);
            if lo >= hi {
                pruned += 1;
                continue;
            }
            let span = index.row_span(cy, cx, cx);
            if span.is_empty() {
                pruned += 1;
                continue;
            }
            pairs += ((hi - lo) * span.len()) as u64;
            accumulate_density_row(
                kernel,
                cutoff_r2,
                &qxs[lo..hi],
                qy,
                &exs[span.clone()],
                &eys[span],
                &mut row[lo..hi],
            );
        }
    }
    obs::add(Counter::KdvPairs, pairs);
    obs::add(Counter::KdvCellsPruned, pruned);
}

/// Grid-pruned exact KDV: bucket the points with cell size equal to the
/// kernel's effective radius, then evaluate each pixel only against the
/// ≤ 3×3 cells its support overlaps.
///
/// Exact for finite-support kernels. For infinite-support kernels the
/// kernel tail below `tail_eps · K(0)` is truncated (use
/// [`crate::DEFAULT_TAIL_EPS`] for a practically exact result).
pub fn grid_pruned_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let _span = obs::span("kdv.grid_pruned");
    let mut grid = DensityGrid::zeros(spec);
    if points.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let index = GridIndex::build(points, radius.max(1e-12));
    // The mask cutoff must not exceed the support: past it the raw
    // formula goes negative, which the branchy code never added.
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        pruned_kdv_row(&index, &kernel, radius, cutoff, &qxs, qy, grid.row_mut(iy));
    }
    grid
}

/// Grid-pruned exact KDV over a caller-supplied bucket index.
///
/// Identical numerics to [`grid_pruned_kdv`], but the candidate index is
/// built once by the caller and reused across many rasters — the serving
/// layer evaluates every tile of a pyramid against one shared index. The
/// bit pattern of each pixel depends on the index's cell decomposition
/// (it fixes the candidate fold order), so callers that require
/// bit-identical results across calls must hold the index's bounding box
/// and cell size fixed; `GridIndex::with_bbox` over a fixed window does
/// exactly that.
pub fn grid_pruned_kdv_with_index<K: Kernel>(
    index: &GridIndex,
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
) -> DensityGrid {
    let _span = obs::span("kdv.grid_pruned");
    let mut grid = DensityGrid::zeros(spec);
    if index.is_empty() {
        return grid;
    }
    let radius = kernel.effective_radius(tail_eps);
    let cutoff = (radius * radius).min(kernel.support_sq());
    let qxs = pixel_xs(&spec);
    for iy in 0..spec.ny {
        let qy = spec.row_y(iy);
        pruned_kdv_row(index, &kernel, radius, cutoff, &qxs, qy, grid.row_mut(iy));
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, Gaussian, KernelKind, Quartic, Uniform};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 30.0,
                    50.0 + (f * 0.557).cos() * 30.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn naive_single_point_profile() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        let k = Epanechnikov::new(2.0);
        let grid = naive_kdv(&[Point::new(2.0, 2.0)], spec, k);
        // Pixel (1,1) centre is (1.5, 1.5): d² = 0.5.
        assert!((grid.at(1, 1) - (1.0 - 0.5 / 4.0)).abs() < 1e-12);
        // Far corner (0.5,0.5): d² = 4.5 > b² -> 0.
        assert_eq!(grid.at(0, 0), 0.0);
        // Symmetry about the data point.
        assert_eq!(grid.at(1, 1), grid.at(2, 2));
        assert_eq!(grid.at(1, 2), grid.at(2, 1));
    }

    #[test]
    fn naive_empty_dataset_gives_zero_grid() {
        let grid = naive_kdv(&[], spec(), Gaussian::new(5.0));
        assert_eq!(grid.max(), 0.0);
        assert_eq!(grid.sum(), 0.0);
    }

    #[test]
    fn grid_pruned_matches_naive_for_finite_support() {
        let pts = scatter(300);
        for b in [3.0, 10.0, 40.0] {
            for kind in [
                KernelKind::Uniform,
                KernelKind::Epanechnikov,
                KernelKind::Quartic,
                KernelKind::Triangular,
                KernelKind::Cosine,
            ] {
                let k = kind.with_bandwidth(b);
                let exact = naive_kdv(&pts, spec(), k);
                let pruned = grid_pruned_kdv(&pts, spec(), k, 1e-9);
                assert!(
                    exact.linf_diff(&pruned) < 1e-9,
                    "{kind:?} b={b}: {}",
                    exact.linf_diff(&pruned)
                );
            }
        }
    }

    #[test]
    fn grid_pruned_gaussian_within_tail_tolerance() {
        let pts = scatter(200);
        let k = Gaussian::new(8.0);
        let exact = naive_kdv(&pts, spec(), k);
        let tail = 1e-9;
        let pruned = grid_pruned_kdv(&pts, spec(), k, tail);
        // Error bounded by n · tail_eps · K(0).
        let bound = pts.len() as f64 * tail * 1.0;
        assert!(exact.linf_diff(&pruned) <= bound + 1e-12);
    }

    #[test]
    fn density_increases_with_point_mass() {
        let mut pts = scatter(100);
        let base = naive_kdv(&pts, spec(), Quartic::new(20.0));
        pts.extend(scatter(100)); // double every point
        let doubled = naive_kdv(&pts, spec(), Quartic::new(20.0));
        for (a, b) in base.values().iter().zip(doubled.values()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_found_at_data_concentration() {
        // 50 points at one spot, 5 scattered far away.
        let mut pts = vec![Point::new(20.0, 80.0); 50];
        pts.push(Point::new(90.0, 10.0));
        pts.push(Point::new(10.0, 10.0));
        let grid = naive_kdv(&pts, spec(), Quartic::new(10.0));
        let hot = grid.hotspot();
        assert!(hot.dist(&Point::new(20.0, 80.0)) < 5.0);
        // The flat uniform kernel still puts its plateau over the mass.
        let flat = naive_kdv(&pts, spec(), Uniform::new(10.0));
        assert!(flat.hotspot().dist(&Point::new(20.0, 80.0)) <= 10.0 + 5.0);
    }
}
