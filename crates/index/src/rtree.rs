//! An STR bulk-loaded R-tree — the canonical GIS index (PostGIS, JTS,
//! and Sedona all build on R-tree variants; the paper's
//! range-query-based K-function family names index structures
//! generically, and the R-tree is the one every spatial database ships).
//!
//! Sort-Tile-Recursive (STR) packing builds a near-optimal static tree
//! in `O(n log n)`: sort by x, slice into vertical strips, sort each
//! strip by y, pack consecutive runs into leaves, then pack each level
//! into parents until one root remains. Queries mirror the kd-tree API
//! (circular range count / report, box count) so the two back-ends are
//! interchangeable in the K-function implementations.

use lsga_core::{BBox, Point};
use lsga_obs::{self as obs, Counter};

/// Maximum entries per node (leaf points or internal children).
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Leaf: points `points[start..start + count]`.
    Leaf { start: u32, count: u32 },
    /// Internal: children `child_lists[start..start + count]`.
    Internal { start: u32, count: u32 },
}

#[derive(Debug, Clone)]
struct Node {
    bbox: BBox,
    /// Total points under this node (for covered-subtree counting).
    total: u32,
    kind: NodeKind,
}

/// Static STR-packed R-tree over points.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    /// Flat child-index storage for internal nodes.
    child_lists: Vec<u32>,
    root: Option<usize>,
    /// Points reordered into leaf-contiguous layout.
    points: Vec<Point>,
    /// Original input index of each reordered point.
    original: Vec<u32>,
}

impl RTree {
    /// Bulk-load with Sort-Tile-Recursive packing.
    pub fn build(points: &[Point]) -> Self {
        let n = points.len();
        if n == 0 {
            return RTree {
                nodes: Vec::new(),
                child_lists: Vec::new(),
                root: None,
                points: Vec::new(),
                original: Vec::new(),
            };
        }
        // STR: sort by x, partition into √(leaves) vertical strips, sort
        // each strip by y.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|a, b| points[*a as usize].x.total_cmp(&points[*b as usize].x));
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strips);
        for strip in order.chunks_mut(per_strip) {
            strip.sort_by(|a, b| points[*a as usize].y.total_cmp(&points[*b as usize].y));
        }
        let sorted: Vec<Point> = order.iter().map(|&i| points[i as usize]).collect();

        let mut nodes: Vec<Node> = Vec::new();
        let mut child_lists: Vec<u32> = Vec::new();

        // Leaves over consecutive runs of the packed order.
        let mut level: Vec<usize> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + NODE_CAPACITY).min(n);
            level.push(nodes.len());
            nodes.push(Node {
                bbox: BBox::of_points(&sorted[start..end]),
                total: (end - start) as u32,
                kind: NodeKind::Leaf {
                    start: start as u32,
                    count: (end - start) as u32,
                },
            });
            start = end;
        }
        // Upper levels.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            for group in level.chunks(NODE_CAPACITY) {
                let mut bbox = BBox::empty();
                let mut total = 0u32;
                let child_start = child_lists.len() as u32;
                for &c in group {
                    bbox.expand_box(&nodes[c].bbox);
                    total += nodes[c].total;
                    child_lists.push(c as u32);
                }
                next.push(nodes.len());
                nodes.push(Node {
                    bbox,
                    total,
                    kind: NodeKind::Internal {
                        start: child_start,
                        count: group.len() as u32,
                    },
                });
            }
            level = next;
        }
        RTree {
            root: Some(level[0]),
            nodes,
            child_lists,
            points: sorted,
            original: order,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Count points with `dist(center, p) ≤ radius`.
    pub fn range_count(&self, center: &Point, radius: f64) -> usize {
        let Some(root) = self.root else { return 0 };
        let r2 = radius * radius;
        let mut count = 0usize;
        let mut visited: u64 = 0;
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            visited += 1;
            let node = &self.nodes[idx];
            if node.bbox.min_dist_sq(center) > r2 {
                continue;
            }
            if node.bbox.max_dist_sq(center) <= r2 {
                count += node.total as usize;
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, count: c } => {
                    let s = start as usize;
                    count += self.points[s..s + c as usize]
                        .iter()
                        .filter(|p| p.dist_sq(center) <= r2)
                        .count();
                }
                NodeKind::Internal { start, count: c } => {
                    let s = start as usize;
                    for &child in &self.child_lists[s..s + c as usize] {
                        stack.push(child as usize);
                    }
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
        count
    }

    /// Report original indices of points within `radius` of `center`
    /// (clears `out` first).
    pub fn range_query(&self, center: &Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let Some(root) = self.root else { return };
        let r2 = radius * radius;
        let mut visited: u64 = 0;
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            visited += 1;
            let node = &self.nodes[idx];
            if node.bbox.min_dist_sq(center) > r2 {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, count } => {
                    let s = start as usize;
                    for i in s..s + count as usize {
                        if self.points[i].dist_sq(center) <= r2 {
                            out.push(self.original[i]);
                        }
                    }
                }
                NodeKind::Internal { start, count } => {
                    let s = start as usize;
                    for &child in &self.child_lists[s..s + count as usize] {
                        stack.push(child as usize);
                    }
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
    }

    /// Count points inside the axis-aligned box (inclusive bounds).
    pub fn count_in_box(&self, query: &BBox) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut count = 0usize;
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !node.bbox.intersects(query) {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, count: c } => {
                    let s = start as usize;
                    count += self.points[s..s + c as usize]
                        .iter()
                        .filter(|p| query.contains(p))
                        .count();
                }
                NodeKind::Internal { start, count: c } => {
                    let s = start as usize;
                    for &child in &self.child_lists[s..s + c as usize] {
                        stack.push(child as usize);
                    }
                }
            }
        }
        count
    }

    /// Tree height (1 for a single leaf). Diagnostic for the packing.
    pub fn height(&self) -> usize {
        let Some(mut idx) = self.root else { return 0 };
        let mut h = 1;
        loop {
            match self.nodes[idx].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Internal { start, .. } => {
                    idx = self.child_lists[start as usize] as usize;
                    h += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.7391).sin() * 50.0, (f * 0.5173).cos() * 50.0)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.range_count(&Point::new(0.0, 0.0), 10.0), 0);
        assert_eq!(t.count_in_box(&BBox::new(-1.0, -1.0, 1.0, 1.0)), 0);
    }

    #[test]
    fn range_count_matches_brute_force() {
        let pts = scatter(700);
        let t = RTree::build(&pts);
        for (c, r) in [
            (Point::new(0.0, 0.0), 10.0),
            (Point::new(25.0, -10.0), 30.0),
            (Point::new(-60.0, 60.0), 5.0),
            (Point::new(0.0, 0.0), 200.0),
            (Point::new(0.0, 0.0), 0.0),
        ] {
            let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
            assert_eq!(t.range_count(&c, r), want, "c={c:?} r={r}");
        }
    }

    #[test]
    fn range_query_returns_exact_index_set() {
        let pts = scatter(300);
        let t = RTree::build(&pts);
        let c = Point::new(10.0, 10.0);
        let mut got = Vec::new();
        t.range_query(&c, 25.0, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= 25.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn box_count_matches_brute_force() {
        let pts = scatter(500);
        let t = RTree::build(&pts);
        for b in [
            BBox::new(-10.0, -10.0, 10.0, 10.0),
            BBox::new(0.0, -50.0, 50.0, 0.0),
            BBox::new(-100.0, -100.0, 100.0, 100.0),
        ] {
            let want = pts.iter().filter(|p| b.contains(p)).count();
            assert_eq!(t.count_in_box(&b), want);
        }
    }

    #[test]
    fn packing_is_logarithmic() {
        let t = RTree::build(&scatter(4096));
        // 4096 / 16 = 256 leaves; 256 / 16 = 16; 16 / 16 = 1 -> height 3.
        assert_eq!(t.height(), 3);
        let t2 = RTree::build(&scatter(10));
        assert_eq!(t2.height(), 1);
    }

    #[test]
    fn duplicates_handled() {
        let mut pts = vec![Point::new(1.0, 1.0); 100];
        pts.extend(scatter(60));
        let t = RTree::build(&pts);
        assert_eq!(t.range_count(&Point::new(1.0, 1.0), 0.0), 100);
    }
}
