//! A tiered stack of immutable [`GridIndex`] segments.
//!
//! The incremental ingest engine (`lsga-serve`) never rebuilds a
//! layer's index on append. Instead every batch becomes its own small
//! immutable segment — a [`GridIndex`] built over the *same* fixed
//! window and cell size as every other segment of the layer — and the
//! layer's logical index is the ordered stack of those segments, oldest
//! first. Because all segments share one cell decomposition, any
//! candidate cell of the monolithic index corresponds to the same cell
//! in every segment, and the monolithic cell's entry run is exactly the
//! per-segment runs concatenated in segment order (the counting sort is
//! stable and batches append after all earlier points). A reader that
//! folds each candidate cell segment-by-segment in stack order
//! therefore reproduces the monolithic fold **bit for bit** — see
//! `lsga_kdv::grid_pruned_kdv_segmented`.
//!
//! `SegmentedGrid` is that stack: a validated, immutable sequence of
//! `Arc<GridIndex>` segments with identical geometry. It is cheap to
//! clone structurally (the successor of an append shares every
//! surviving segment `Arc`), and compaction replaces a contiguous
//! suffix with its CSR merge ([`GridIndex::merged_threads`]) without
//! disturbing the concatenated point order.

use crate::grid_index::{same_geometry, GridIndex};
use lsga_core::{BBox, Point};
use std::sync::Arc;

/// An ordered, geometry-validated stack of immutable index segments
/// over one shared window. Oldest segment first; the logical point
/// sequence is the concatenation of the segments' point sequences.
#[derive(Debug, Clone)]
pub struct SegmentedGrid {
    segments: Vec<Arc<GridIndex>>,
    total: usize,
}

impl SegmentedGrid {
    /// Wrap an ordered segment stack. Panics if `segments` is empty or
    /// any two segments disagree on bbox, cell size, or dimensions —
    /// the shared decomposition is what makes the segment-major fold
    /// bit-identical to the monolithic one, so it is enforced, not
    /// assumed.
    #[must_use]
    pub fn from_segments(segments: Vec<Arc<GridIndex>>) -> Self {
        let first = segments.first().expect("segment stack must be non-empty");
        for s in &segments[1..] {
            assert!(
                same_geometry(first.as_ref(), s.as_ref()),
                "segment grids must share bbox, cell size and dimensions"
            );
        }
        let total = segments.iter().map(|s| s.len()).sum();
        SegmentedGrid { segments, total }
    }

    /// A single-segment stack (the state of a freshly registered layer).
    #[must_use]
    pub fn single(index: GridIndex) -> Self {
        Self::from_segments(vec![Arc::new(index)])
    }

    /// The segments, oldest first.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> &[Arc<GridIndex>] {
        &self.segments
    }

    /// Stack depth (number of resident segments).
    #[inline]
    #[must_use]
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Total indexed points across all segments.
    #[inline]
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// True when no segment holds any point.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The shared bounding box.
    #[inline]
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.segments[0].bbox()
    }

    /// The shared cell size.
    #[inline]
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.segments[0].cell_size()
    }

    /// The shared grid dimensions `(nx, ny)` in cells.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        self.segments[0].dims()
    }

    /// The geometry carrier: any segment answers `cell_col_range` /
    /// `cell_row_range` / `row_span` queries for the whole stack.
    #[inline]
    #[must_use]
    pub fn geometry(&self) -> &GridIndex {
        &self.segments[0]
    }

    /// The logical point sequence: every segment's points concatenated
    /// in stack order — exactly the sequence a monolithic rebuild would
    /// index. Allocates; meant for oracles, exports, and tests.
    #[must_use]
    pub fn collect_points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.total);
        for s in &self.segments {
            out.extend_from_slice(s.points());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::par::Threads;

    fn scatter(n: usize, salt: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64 + salt as f64 * 0.37;
                Point::new((f * 0.917).sin() * 25.0, (f * 0.613).cos() * 25.0)
            })
            .collect()
    }

    fn bbox() -> BBox {
        BBox::new(-30.0, -30.0, 30.0, 30.0)
    }

    #[test]
    fn stack_accounting_and_point_order() {
        let a = scatter(40, 1);
        let b = scatter(7, 2);
        let g = SegmentedGrid::from_segments(vec![
            Arc::new(GridIndex::with_bbox(&a, 5.0, bbox())),
            Arc::new(GridIndex::with_bbox(&b, 5.0, bbox())),
        ]);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.total_len(), 47);
        assert_eq!(g.dims(), g.segments()[1].dims());
        let mut want = a.clone();
        want.extend_from_slice(&b);
        let got = g.collect_points();
        assert_eq!(got.len(), want.len());
        for (p, q) in got.iter().zip(&want) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
    }

    #[test]
    fn merged_suffix_preserves_logical_sequence() {
        let a = scatter(30, 3);
        let b = scatter(9, 4);
        let c = scatter(5, 5);
        let segs = vec![
            Arc::new(GridIndex::with_bbox(&a, 4.0, bbox())),
            Arc::new(GridIndex::with_bbox(&b, 4.0, bbox())),
            Arc::new(GridIndex::with_bbox(&c, 4.0, bbox())),
        ];
        let flat = SegmentedGrid::from_segments(segs.clone()).collect_points();
        let tail = GridIndex::merged_threads(&[&segs[1], &segs[2]], Threads::exact(1));
        let compacted = SegmentedGrid::from_segments(vec![Arc::clone(&segs[0]), Arc::new(tail)]);
        assert_eq!(compacted.depth(), 2);
        let flat2 = compacted.collect_points();
        assert_eq!(flat.len(), flat2.len());
        for (p, q) in flat.iter().zip(&flat2) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "share bbox")]
    fn rejects_mismatched_segment_geometry() {
        let pts = scatter(10, 0);
        let _ = SegmentedGrid::from_segments(vec![
            Arc::new(GridIndex::with_bbox(&pts, 2.0, bbox())),
            Arc::new(GridIndex::with_bbox(&pts, 9.0, bbox())),
        ]);
    }
}
