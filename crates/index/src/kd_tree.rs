//! A static 2-D kd-tree (Bentley \[21\] in the paper's references).
//!
//! The tree is built once over an owned, reordered copy of the points and
//! supports:
//!
//! * exact circular range counting / reporting (K-function range queries),
//! * k-nearest-neighbour search (IDW, kriging neighbourhoods),
//! * node-level traversal with per-node bounding boxes and counts, which is
//!   what the function-approximation KDV methods need to compute the
//!   `LB(q)`/`UB(q)` bounds of paper Eq. 6.

use lsga_core::{BBox, Point};
use lsga_obs::{self as obs, Counter};

/// Identifier of a kd-tree node (index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KdNodeId(pub(crate) usize);

#[derive(Debug, Clone)]
struct Node {
    bbox: BBox,
    /// Range into the reordered point array covered by this node.
    start: usize,
    end: usize,
    /// Child node indices, `usize::MAX` when leaf.
    left: usize,
    right: usize,
}

const NO_CHILD: usize = usize::MAX;

/// Static kd-tree over a point set.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Points reordered so each node covers a contiguous slice.
    points: Vec<Point>,
    /// `original[i]` is the index of `points[i]` in the input slice.
    original: Vec<u32>,
    leaf_size: usize,
}

impl KdTree {
    /// Default maximum number of points per leaf.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Build a tree with the default leaf size.
    pub fn build(points: &[Point]) -> Self {
        Self::with_leaf_size(points, Self::DEFAULT_LEAF_SIZE)
    }

    /// Build with an explicit leaf size (≥ 1).
    pub fn with_leaf_size(points: &[Point], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf size must be at least 1");
        let mut pts: Vec<Point> = points.to_vec();
        let mut original: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        if !pts.is_empty() {
            build_recursive(
                &mut pts,
                &mut original,
                0,
                points.len(),
                leaf_size,
                &mut nodes,
            );
        }
        KdTree {
            nodes,
            points: pts,
            original,
            leaf_size,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured leaf size.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Root node, or `None` for an empty tree.
    #[inline]
    pub fn root(&self) -> Option<KdNodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(KdNodeId(0))
        }
    }

    /// Bounding box of a node.
    #[inline]
    pub fn bbox(&self, id: KdNodeId) -> &BBox {
        &self.nodes[id.0].bbox
    }

    /// Number of points under a node.
    #[inline]
    pub fn count(&self, id: KdNodeId) -> usize {
        let n = &self.nodes[id.0];
        n.end - n.start
    }

    /// True when the node is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: KdNodeId) -> bool {
        self.nodes[id.0].left == NO_CHILD
    }

    /// Children of an internal node; `None` for leaves.
    #[inline]
    pub fn children(&self, id: KdNodeId) -> Option<(KdNodeId, KdNodeId)> {
        let n = &self.nodes[id.0];
        if n.left == NO_CHILD {
            None
        } else {
            Some((KdNodeId(n.left), KdNodeId(n.right)))
        }
    }

    /// The points stored under a node (contiguous by construction).
    #[inline]
    pub fn node_points(&self, id: KdNodeId) -> &[Point] {
        let n = &self.nodes[id.0];
        &self.points[n.start..n.end]
    }

    /// Original input indices of the points under a node, parallel to
    /// [`KdTree::node_points`].
    #[inline]
    pub fn node_original_indices(&self, id: KdNodeId) -> &[u32] {
        let n = &self.nodes[id.0];
        &self.original[n.start..n.end]
    }

    /// Count points with `dist(center, p) ≤ radius`.
    pub fn range_count(&self, center: &Point, radius: f64) -> usize {
        let Some(root) = self.root() else { return 0 };
        let r2 = radius * radius;
        let mut count = 0usize;
        let mut visited: u64 = 0;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            visited += 1;
            let node = &self.nodes[id.0];
            if node.bbox.min_dist_sq(center) > r2 {
                continue;
            }
            if node.bbox.max_dist_sq(center) <= r2 {
                count += node.end - node.start;
                continue;
            }
            match self.children(id) {
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    count += self
                        .node_points(id)
                        .iter()
                        .filter(|p| p.dist_sq(center) <= r2)
                        .count();
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
        count
    }

    /// Report the original indices of all points within `radius` of
    /// `center`, appending to `out` (cleared first).
    pub fn range_query(&self, center: &Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let Some(root) = self.root() else { return };
        let r2 = radius * radius;
        let mut visited: u64 = 0;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            visited += 1;
            let node = &self.nodes[id.0];
            if node.bbox.min_dist_sq(center) > r2 {
                continue;
            }
            if node.bbox.max_dist_sq(center) <= r2 {
                out.extend_from_slice(&self.original[node.start..node.end]);
                continue;
            }
            match self.children(id) {
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    for (p, idx) in self
                        .node_points(id)
                        .iter()
                        .zip(self.node_original_indices(id))
                    {
                        if p.dist_sq(center) <= r2 {
                            out.push(*idx);
                        }
                    }
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
    }

    /// The `k` nearest neighbours of `center` as
    /// `(original index, distance)` pairs sorted by ascending distance.
    /// Returns fewer than `k` entries when the tree is smaller than `k`.
    pub fn knn(&self, center: &Point, k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of the best k candidates, keyed by distance².
        let mut heap: std::collections::BinaryHeap<HeapItem> = std::collections::BinaryHeap::new();
        let mut worst = f64::INFINITY;
        let mut visited: u64 = 0;
        let mut stack = vec![self.root().unwrap()];
        while let Some(id) = stack.pop() {
            visited += 1;
            let node = &self.nodes[id.0];
            if heap.len() == k && node.bbox.min_dist_sq(center) > worst {
                continue;
            }
            match self.children(id) {
                Some((l, r)) => {
                    // Visit the nearer child first for earlier pruning.
                    let dl = self.nodes[l.0].bbox.min_dist_sq(center);
                    let dr = self.nodes[r.0].bbox.min_dist_sq(center);
                    if dl <= dr {
                        stack.push(r);
                        stack.push(l);
                    } else {
                        stack.push(l);
                        stack.push(r);
                    }
                }
                None => {
                    for (p, idx) in self
                        .node_points(id)
                        .iter()
                        .zip(self.node_original_indices(id))
                    {
                        let d2 = p.dist_sq(center);
                        if heap.len() < k {
                            heap.push(HeapItem { d2, idx: *idx });
                            if heap.len() == k {
                                worst = heap.peek().unwrap().d2;
                            }
                        } else if d2 < worst {
                            heap.pop();
                            heap.push(HeapItem { d2, idx: *idx });
                            worst = heap.peek().unwrap().d2;
                        }
                    }
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
        let mut items: Vec<(u32, f64)> = heap.into_iter().map(|h| (h.idx, h.d2.sqrt())).collect();
        items.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        items
    }
}

#[derive(PartialEq)]
struct HeapItem {
    d2: f64,
    idx: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d2.total_cmp(&other.d2).then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn build_recursive(
    pts: &mut [Point],
    original: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &pts[start..end];
    let bbox = BBox::of_points(slice);
    let id = nodes.len();
    nodes.push(Node {
        bbox,
        start,
        end,
        left: NO_CHILD,
        right: NO_CHILD,
    });
    let len = end - start;
    if len <= leaf_size {
        return id;
    }
    // Split on the wider dimension at the median.
    let split_x = bbox.width() >= bbox.height();
    let mid = start + len / 2;
    {
        // Median partition of the parallel (point, original-index) arrays.
        let sub_pts = &mut pts[start..end];
        let sub_idx = &mut original[start..end];
        select_nth_parallel(sub_pts, sub_idx, len / 2, split_x);
    }
    let left = build_recursive(pts, original, start, mid, leaf_size, nodes);
    let right = build_recursive(pts, original, mid, end, leaf_size, nodes);
    nodes[id].left = left;
    nodes[id].right = right;
    id
}

/// Quickselect keeping a parallel index array in sync with the points.
fn select_nth_parallel(pts: &mut [Point], idx: &mut [u32], nth: usize, split_x: bool) {
    let key = |p: &Point| if split_x { p.x } else { p.y };
    let mut lo = 0usize;
    let mut hi = pts.len();
    loop {
        if hi - lo <= 1 {
            return;
        }
        // Median-of-three pivot for resilience on sorted inputs.
        let mid = lo + (hi - lo) / 2;
        let (a, b, c) = (key(&pts[lo]), key(&pts[mid]), key(&pts[hi - 1]));
        let pivot = if (a <= b) == (b <= c) {
            b
        } else if (b <= a) == (a <= c) {
            a
        } else {
            c
        };
        // Three-way partition: [< pivot | == pivot | > pivot].
        let mut lt = lo;
        let mut i = lo;
        let mut gt = hi;
        while i < gt {
            let k = key(&pts[i]);
            if k < pivot {
                pts.swap(lt, i);
                idx.swap(lt, i);
                lt += 1;
                i += 1;
            } else if k > pivot {
                gt -= 1;
                pts.swap(i, gt);
                idx.swap(i, gt);
            } else {
                i += 1;
            }
        }
        if nth < lt {
            hi = lt;
        } else if nth >= gt {
            lo = gt;
        } else {
            return; // nth lands in the == pivot band
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<Point> {
        // Deterministic scattered points.
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    (f * 0.7391).sin() * 50.0 + (f * 0.013).cos() * 7.0,
                    (f * 0.5173).cos() * 50.0 + (f * 0.029).sin() * 3.0,
                )
            })
            .collect()
    }

    fn brute_count(pts: &[Point], c: &Point, r: f64) -> usize {
        pts.iter().filter(|p| p.dist(c) <= r).count()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.root().is_none());
        assert_eq!(t.range_count(&Point::new(0.0, 0.0), 10.0), 0);
        assert!(t.knn(&Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn range_count_matches_brute_force() {
        let pts = lattice(500);
        let t = KdTree::build(&pts);
        for (c, r) in [
            (Point::new(0.0, 0.0), 10.0),
            (Point::new(25.0, -10.0), 30.0),
            (Point::new(-60.0, 60.0), 5.0),
            (Point::new(0.0, 0.0), 200.0), // covers everything
            (Point::new(0.0, 0.0), 0.0),
        ] {
            assert_eq!(
                t.range_count(&c, r),
                brute_count(&pts, &c, r),
                "c={c:?} r={r}"
            );
        }
    }

    #[test]
    fn range_query_returns_exact_index_set() {
        let pts = lattice(300);
        let t = KdTree::build(&pts);
        let c = Point::new(10.0, 10.0);
        let r = 25.0;
        let mut got = Vec::new();
        t.range_query(&c, r, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = lattice(200);
        let t = KdTree::build(&pts);
        let q = Point::new(3.0, -7.0);
        for k in [1, 5, 17, 200, 300] {
            let got = t.knn(&q, k);
            let mut want: Vec<(u32, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, p.dist(&q)))
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "k={k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn node_invariants() {
        let pts = lattice(128);
        let t = KdTree::with_leaf_size(&pts, 8);
        let root = t.root().unwrap();
        assert_eq!(t.count(root), 128);
        // Every internal node's children partition its count; every point
        // lies inside its node's bbox.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            for p in t.node_points(id) {
                assert!(t.bbox(id).contains(p));
            }
            if let Some((l, r)) = t.children(id) {
                assert_eq!(t.count(l) + t.count(r), t.count(id));
                stack.push(l);
                stack.push(r);
            } else {
                assert!(t.count(id) <= 8);
            }
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let mut pts = vec![Point::new(1.0, 1.0); 100];
        pts.extend(lattice(50));
        let t = KdTree::with_leaf_size(&pts, 4);
        assert_eq!(t.range_count(&Point::new(1.0, 1.0), 0.0), 100);
        let got = t.knn(&Point::new(1.0, 1.0), 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(_, d)| *d == 0.0));
    }

    #[test]
    fn original_indices_preserved() {
        let pts = lattice(64);
        let t = KdTree::build(&pts);
        let root = t.root().unwrap();
        let mut seen: Vec<u32> = t.node_original_indices(root).to_vec();
        seen.sort_unstable();
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(seen, want);
        // Reordered points still map back to their originals.
        for (p, i) in t
            .node_points(root)
            .iter()
            .zip(t.node_original_indices(root))
        {
            assert_eq!(*p, pts[*i as usize]);
        }
    }

    #[test]
    fn sorted_input_does_not_degenerate() {
        // A sorted line of points exercises the median-of-three pivot.
        let pts: Vec<Point> = (0..1000).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = KdTree::build(&pts);
        assert_eq!(t.range_count(&Point::new(500.0, 0.0), 10.0), 21);
    }
}
