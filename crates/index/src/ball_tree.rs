//! A static ball tree (Moore's anchors hierarchy \[71\] in the paper's
//! references).
//!
//! Each node covers a contiguous slice of a reordered point array and
//! stores a bounding ball `(center, radius)`. Ball nodes give the
//! alternative distance bounds used by the function-approximation KDV
//! family: for a query `q`,
//! `max(0, dist(q, c) − r) ≤ dist(q, p) ≤ dist(q, c) + r` for every point
//! `p` in the node.

use lsga_core::Point;
use lsga_obs::{self as obs, Counter};

#[derive(Debug, Clone)]
struct Node {
    center: Point,
    radius: f64,
    start: usize,
    end: usize,
    left: usize,
    right: usize,
}

const NO_CHILD: usize = usize::MAX;

/// Identifier of a ball-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BallNodeId(pub(crate) usize);

/// Static ball tree over a point set.
#[derive(Debug, Clone)]
pub struct BallTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    original: Vec<u32>,
    leaf_size: usize,
}

impl BallTree {
    /// Default maximum number of points per leaf.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Build a ball tree with the default leaf size.
    pub fn build(points: &[Point]) -> Self {
        Self::with_leaf_size(points, Self::DEFAULT_LEAF_SIZE)
    }

    /// Build with an explicit leaf size (≥ 1).
    pub fn with_leaf_size(points: &[Point], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf size must be at least 1");
        let mut pts = points.to_vec();
        let mut original: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        if !pts.is_empty() {
            build_recursive(
                &mut pts,
                &mut original,
                0,
                points.len(),
                leaf_size,
                &mut nodes,
            );
        }
        BallTree {
            nodes,
            points: pts,
            original,
            leaf_size,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured leaf size.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Root node, or `None` for an empty tree.
    #[inline]
    pub fn root(&self) -> Option<BallNodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(BallNodeId(0))
        }
    }

    /// Bounding-ball centre of a node.
    #[inline]
    pub fn center(&self, id: BallNodeId) -> Point {
        self.nodes[id.0].center
    }

    /// Bounding-ball radius of a node.
    #[inline]
    pub fn radius(&self, id: BallNodeId) -> f64 {
        self.nodes[id.0].radius
    }

    /// Number of points under a node.
    #[inline]
    pub fn count(&self, id: BallNodeId) -> usize {
        let n = &self.nodes[id.0];
        n.end - n.start
    }

    /// True when the node is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: BallNodeId) -> bool {
        self.nodes[id.0].left == NO_CHILD
    }

    /// Children of an internal node, `None` for leaves.
    #[inline]
    pub fn children(&self, id: BallNodeId) -> Option<(BallNodeId, BallNodeId)> {
        let n = &self.nodes[id.0];
        if n.left == NO_CHILD {
            None
        } else {
            Some((BallNodeId(n.left), BallNodeId(n.right)))
        }
    }

    /// The points stored under a node.
    #[inline]
    pub fn node_points(&self, id: BallNodeId) -> &[Point] {
        let n = &self.nodes[id.0];
        &self.points[n.start..n.end]
    }

    /// Original input indices of the points under a node, parallel to
    /// [`BallTree::node_points`].
    #[inline]
    pub fn node_original_indices(&self, id: BallNodeId) -> &[u32] {
        let n = &self.nodes[id.0];
        &self.original[n.start..n.end]
    }

    /// Smallest possible distance from `q` to any point under the node.
    #[inline]
    pub fn min_dist(&self, id: BallNodeId, q: &Point) -> f64 {
        let n = &self.nodes[id.0];
        (q.dist(&n.center) - n.radius).max(0.0)
    }

    /// Largest possible distance from `q` to any point under the node.
    #[inline]
    pub fn max_dist(&self, id: BallNodeId, q: &Point) -> f64 {
        let n = &self.nodes[id.0];
        q.dist(&n.center) + n.radius
    }

    /// Count points with `dist(center, p) ≤ radius`.
    pub fn range_count(&self, center: &Point, radius: f64) -> usize {
        let Some(root) = self.root() else { return 0 };
        let mut count = 0usize;
        let mut visited: u64 = 0;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            visited += 1;
            if self.min_dist(id, center) > radius {
                continue;
            }
            if self.max_dist(id, center) <= radius {
                count += self.count(id);
                continue;
            }
            match self.children(id) {
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    let r2 = radius * radius;
                    count += self
                        .node_points(id)
                        .iter()
                        .filter(|p| p.dist_sq(center) <= r2)
                        .count();
                }
            }
        }
        obs::add(Counter::IndexNodesVisited, visited);
        count
    }
}

fn build_recursive(
    pts: &mut [Point],
    original: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &pts[start..end];
    // Centroid as the ball centre; radius is the max distance to it.
    let inv = 1.0 / slice.len() as f64;
    let cx = slice.iter().map(|p| p.x).sum::<f64>() * inv;
    let cy = slice.iter().map(|p| p.y).sum::<f64>() * inv;
    let center = Point::new(cx, cy);
    let radius = slice.iter().map(|p| p.dist(&center)).fold(0.0f64, f64::max);
    let id = nodes.len();
    nodes.push(Node {
        center,
        radius,
        start,
        end,
        left: NO_CHILD,
        right: NO_CHILD,
    });
    let len = end - start;
    if len <= leaf_size {
        return id;
    }
    // Split on the dimension with the larger spread, at the median.
    let (min_x, max_x) = slice
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.x), hi.max(p.x))
        });
    let (min_y, max_y) = slice
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.y), hi.max(p.y))
        });
    let split_x = (max_x - min_x) >= (max_y - min_y);
    let mid = start + len / 2;
    {
        let sub_pts = &mut pts[start..end];
        let sub_idx = &mut original[start..end];
        // Simple sort-based median; ball trees are built rarely and the
        // kd-tree already demonstrates the O(n) selection path.
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by(|&a, &b| {
            let ka = if split_x { sub_pts[a].x } else { sub_pts[a].y };
            let kb = if split_x { sub_pts[b].x } else { sub_pts[b].y };
            ka.total_cmp(&kb)
        });
        let permuted_pts: Vec<Point> = order.iter().map(|&i| sub_pts[i]).collect();
        let permuted_idx: Vec<u32> = order.iter().map(|&i| sub_idx[i]).collect();
        sub_pts.copy_from_slice(&permuted_pts);
        sub_idx.copy_from_slice(&permuted_idx);
    }
    let left = build_recursive(pts, original, start, mid, leaf_size, nodes);
    let right = build_recursive(pts, original, mid, end, leaf_size, nodes);
    nodes[id].left = left;
    nodes[id].right = right;
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 1.317).sin() * 40.0, (f * 0.871).cos() * 40.0)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = BallTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.root().is_none());
        assert_eq!(t.range_count(&Point::new(0.0, 0.0), 5.0), 0);
    }

    #[test]
    fn range_count_matches_brute_force() {
        let pts = scatter(400);
        let t = BallTree::build(&pts);
        for (c, r) in [
            (Point::new(0.0, 0.0), 15.0),
            (Point::new(30.0, 30.0), 8.0),
            (Point::new(0.0, 0.0), 100.0),
            (Point::new(-80.0, 0.0), 2.0),
        ] {
            let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
            assert_eq!(t.range_count(&c, r), want, "c={c:?} r={r}");
        }
    }

    #[test]
    fn ball_bounds_are_valid() {
        let pts = scatter(256);
        let t = BallTree::with_leaf_size(&pts, 8);
        let q = Point::new(5.0, -3.0);
        let mut stack = vec![t.root().unwrap()];
        while let Some(id) = stack.pop() {
            let lo = t.min_dist(id, &q);
            let hi = t.max_dist(id, &q);
            for p in t.node_points(id) {
                let d = p.dist(&q);
                assert!(d >= lo - 1e-9, "min_dist violated");
                assert!(d <= hi + 1e-9, "max_dist violated");
            }
            if let Some((l, r)) = t.children(id) {
                assert_eq!(t.count(l) + t.count(r), t.count(id));
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn all_points_within_root_ball() {
        let pts = scatter(100);
        let t = BallTree::build(&pts);
        let root = t.root().unwrap();
        let c = t.center(root);
        let r = t.radius(root);
        for p in &pts {
            assert!(p.dist(&c) <= r + 1e-9);
        }
    }

    #[test]
    fn single_point() {
        let t = BallTree::build(&[Point::new(2.0, 3.0)]);
        let root = t.root().unwrap();
        assert!(t.is_leaf(root));
        assert_eq!(t.radius(root), 0.0);
        assert_eq!(t.range_count(&Point::new(2.0, 3.0), 0.0), 1);
    }
}
