//! A 2-D range tree (de Berg et al. \[40\] in the paper's references)
//! answering axis-aligned box *counting* queries in `O(log² n)`.
//!
//! The K-function needs circular ranges, which grids and kd-trees serve
//! better; the range tree is included because the paper names it among
//! the range-query-based K-function structures, and box counts are the
//! building block of its circle approximations (count the inscribed box,
//! verify the corners). It also backs the quadrat-count statistics in
//! `lsga-stats`.
//!
//! Construction sorts once by `x` and builds a balanced hierarchy where
//! every node stores its points' `y` values sorted — the classical
//! fractional-cascading-free variant.

use lsga_core::Point;

#[derive(Debug, Clone)]
struct Node {
    /// x-interval covered (inclusive).
    min_x: f64,
    max_x: f64,
    /// All y values under this node, sorted ascending.
    ys: Vec<f64>,
    left: usize,
    right: usize,
}

const NO_CHILD: usize = usize::MAX;

/// Static 2-D range tree supporting box counting.
#[derive(Debug, Clone)]
pub struct RangeTree {
    nodes: Vec<Node>,
    len: usize,
}

impl RangeTree {
    /// Build a range tree over the points.
    pub fn build(points: &[Point]) -> Self {
        let mut pts = points.to_vec();
        pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        let mut nodes = Vec::new();
        if !pts.is_empty() {
            build_recursive(&pts, &mut nodes);
        }
        RangeTree {
            nodes,
            len: points.len(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count points with `x0 ≤ x ≤ x1` and `y0 ≤ y ≤ y1`.
    pub fn count_in_box(&self, x0: f64, x1: f64, y0: f64, y1: f64) -> usize {
        if self.nodes.is_empty() || x0 > x1 || y0 > y1 {
            return 0;
        }
        let mut count = 0usize;
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.min_x > x1 || node.max_x < x0 {
                continue;
            }
            if node.min_x >= x0 && node.max_x <= x1 {
                // x-range fully covered: binary search the sorted ys.
                count += count_in_sorted(&node.ys, y0, y1);
                continue;
            }
            if node.left != NO_CHILD {
                stack.push(node.left);
                stack.push(node.right);
            } else {
                // Leaf partially overlapped in x: ys has one element and
                // min_x == max_x, so reaching here means the single x is
                // inside [x0, x1] — but then the node would be fully
                // covered. Only possible with NaN inputs; count directly.
                count += count_in_sorted(&node.ys, y0, y1);
            }
        }
        count
    }
}

fn count_in_sorted(ys: &[f64], y0: f64, y1: f64) -> usize {
    let lo = ys.partition_point(|y| *y < y0);
    let hi = ys.partition_point(|y| *y <= y1);
    hi - lo
}

fn build_recursive(pts: &[Point], nodes: &mut Vec<Node>) -> usize {
    let id = nodes.len();
    let mut ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
    ys.sort_by(|a, b| a.total_cmp(b));
    nodes.push(Node {
        min_x: pts.first().unwrap().x,
        max_x: pts.last().unwrap().x,
        ys,
        left: NO_CHILD,
        right: NO_CHILD,
    });
    if pts.len() > 1 {
        let mid = pts.len() / 2;
        let left = build_recursive(&pts[..mid], nodes);
        let right = build_recursive(&pts[mid..], nodes);
        nodes[id].left = left;
        nodes[id].right = right;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.719).sin() * 30.0, (f * 1.111).cos() * 30.0)
            })
            .collect()
    }

    fn brute(pts: &[Point], x0: f64, x1: f64, y0: f64, y1: f64) -> usize {
        pts.iter()
            .filter(|p| p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1)
            .count()
    }

    #[test]
    fn counts_match_brute_force() {
        let pts = scatter(400);
        let t = RangeTree::build(&pts);
        for (x0, x1, y0, y1) in [
            (-10.0, 10.0, -10.0, 10.0),
            (0.0, 30.0, -30.0, 0.0),
            (-100.0, 100.0, -100.0, 100.0),
            (5.0, 5.0, -100.0, 100.0),
            (12.0, 3.0, 0.0, 1.0), // inverted: empty
        ] {
            assert_eq!(
                t.count_in_box(x0, x1, y0, y1),
                brute(&pts, x0, x1, y0, y1),
                "box ({x0},{x1})x({y0},{y1})"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let t = RangeTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.count_in_box(-1.0, 1.0, -1.0, 1.0), 0);

        let t1 = RangeTree::build(&[Point::new(2.0, 3.0)]);
        assert_eq!(t1.count_in_box(2.0, 2.0, 3.0, 3.0), 1);
        assert_eq!(t1.count_in_box(2.1, 3.0, 3.0, 3.0), 0);
    }

    #[test]
    fn duplicates_counted() {
        let pts = vec![Point::new(1.0, 1.0); 7];
        let t = RangeTree::build(&pts);
        assert_eq!(t.count_in_box(0.0, 2.0, 0.0, 2.0), 7);
    }

    #[test]
    fn boundary_inclusive() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let t = RangeTree::build(&pts);
        assert_eq!(t.count_in_box(0.0, 2.0, 0.0, 2.0), 3);
        assert_eq!(t.count_in_box(0.0, 1.0, 0.0, 1.0), 2);
        assert_eq!(t.count_in_box(1.0, 1.0, 1.0, 1.0), 1);
    }
}
