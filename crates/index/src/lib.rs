//! # lsga-index
//!
//! Spatial index structures used by the acceleration methods the paper
//! surveys:
//!
//! * [`KdTree`] — the kd-tree of Bentley \[21\], used by the
//!   function-approximation KDV family (bound refinement over tree nodes,
//!   paper Eq. 6), range-query K-function, kNN for IDW/Kriging.
//! * [`BallTree`] — the ball-tree / anchors hierarchy of Moore \[71\],
//!   an alternative bound provider.
//! * [`GridIndex`] — a uniform bucket grid; the workhorse for fixed-radius
//!   neighbour enumeration (K-function histogramming, DBSCAN, naive-pruned
//!   KDV).
//! * [`RangeTree`] — the classical 2-D range tree \[40\] answering
//!   axis-aligned box counts in `O(log² n)`;
//! * [`RTree`] — an STR bulk-loaded R-tree, the index every spatial
//!   database (PostGIS, Sedona) builds on.
//!
//! All indexes are immutable after construction (built once per dataset,
//! queried many times), which is exactly the access pattern of every tool
//! in the suite.

pub mod ball_tree;
pub mod grid_index;
pub mod kd_tree;
pub mod range_tree;
pub mod rtree;
pub mod segmented;

pub use ball_tree::{BallNodeId, BallTree};
pub use grid_index::GridIndex;
pub use kd_tree::{KdNodeId, KdTree};
pub use range_tree::RangeTree;
pub use rtree::RTree;
pub use segmented::SegmentedGrid;
