//! A uniform bucket-grid index.
//!
//! For fixed-radius workloads — the K-function's `R(p_i)` range sets,
//! KDV with finite-support kernels, DBSCAN's ε-neighbourhoods — a bucket
//! grid with cell size matched to the query radius enumerates candidates
//! in near-constant time per result and is the strongest practical
//! baseline among the surveyed index structures.

use lsga_core::{BBox, Point};

/// Uniform grid over a bounding box, bucketing point indices per cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BBox,
    cell: f64,
    nx: usize,
    ny: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Maximum number of cells along either axis (see
    /// [`GridIndex::with_bbox`]).
    pub const MAX_DIM: usize = 2048;

    /// Build a grid with the given cell size over the points' bounding
    /// box. `cell_size` is typically the query radius (so a radius query
    /// touches at most 3×3 cells). Panics if `cell_size ≤ 0`.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let bbox = if points.is_empty() {
            BBox::new(0.0, 0.0, 1.0, 1.0)
        } else {
            BBox::of_points(points)
        };
        Self::with_bbox(points, cell_size, bbox)
    }

    /// Build over an explicit bounding box (which must cover all points;
    /// outside points are clamped to edge cells).
    ///
    /// The effective cell size is clamped from below so neither dimension
    /// exceeds [`GridIndex::MAX_DIM`] cells — query results are identical
    /// either way, only candidate-set tightness changes, and the clamp
    /// keeps degenerate tiny radii (e.g. a K-function at `s = 0`) from
    /// requesting absurd cell counts.
    pub fn with_bbox(points: &[Point], cell_size: f64, bbox: BBox) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        assert!(!bbox.is_empty(), "grid bbox must be non-empty");
        let max_dim = Self::MAX_DIM as f64;
        let cell_size = cell_size
            .max(bbox.width() / max_dim)
            .max(bbox.height() / max_dim);
        let nx = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let ny = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let ncells = nx * ny;

        // Counting sort into CSR buckets: two passes, no per-cell Vecs.
        let cell_of = |p: &Point| -> usize {
            let ix = (((p.x - bbox.min_x) / cell_size) as usize).min(nx - 1);
            let iy = (((p.y - bbox.min_y) / cell_size) as usize).min(ny - 1);
            iy * nx + ix
        };
        let mut counts = vec![0u32; ncells + 1];
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        GridIndex {
            bbox,
            cell: cell_size,
            nx,
            ny,
            starts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Grid dimensions `(nx, ny)` in cells.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The indexed points in input order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Cell coordinates containing `p` (clamped).
    #[inline]
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        let ix = (((p.x - self.bbox.min_x) / self.cell).max(0.0) as usize).min(self.nx - 1);
        let iy = (((p.y - self.bbox.min_y) / self.cell).max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Point indices bucketed in cell `(ix, iy)`.
    #[inline]
    pub fn cell_entries(&self, ix: usize, iy: usize) -> &[u32] {
        let c = iy * self.nx + ix;
        let s = self.starts[c] as usize;
        let e = self.starts[c + 1] as usize;
        &self.entries[s..e]
    }

    /// Invoke `f(index, point)` for every point in cells overlapping the
    /// disc `(center, radius)`. Candidates are *not* distance-filtered —
    /// callers that need the exact disc apply their own test (this lets
    /// kernel evaluation fold the distance computation into one pass).
    pub fn for_each_candidate(&self, center: &Point, radius: f64, mut f: impl FnMut(u32, &Point)) {
        let (cx0, cy0, cx1, cy1) = self.cell_range(center, radius);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in self.cell_entries(cx, cy) {
                    f(i, &self.points[i as usize]);
                }
            }
        }
    }

    /// Count points with `dist(center, p) ≤ radius`.
    pub fn count_within(&self, center: &Point, radius: f64) -> usize {
        let r2 = radius * radius;
        let mut count = 0;
        self.for_each_candidate(center, radius, |_, p| {
            if p.dist_sq(center) <= r2 {
                count += 1;
            }
        });
        count
    }

    /// Collect indices of points with `dist(center, p) ≤ radius` into
    /// `out` (cleared first).
    pub fn query_within(&self, center: &Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let r2 = radius * radius;
        self.for_each_candidate(center, radius, |i, p| {
            if p.dist_sq(center) <= r2 {
                out.push(i);
            }
        });
    }

    /// The inclusive cell-coordinate rectangle overlapping the disc.
    fn cell_range(&self, center: &Point, radius: f64) -> (usize, usize, usize, usize) {
        let lo_x = center.x - radius;
        let hi_x = center.x + radius;
        let lo_y = center.y - radius;
        let hi_y = center.y + radius;
        let cx0 =
            (((lo_x - self.bbox.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let cy0 =
            (((lo_y - self.bbox.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        let cx1 =
            (((hi_x - self.bbox.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let cy1 =
            (((hi_y - self.bbox.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        (cx0, cy0, cx1, cy1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.917).sin() * 25.0, (f * 0.613).cos() * 25.0)
            })
            .collect()
    }

    #[test]
    fn count_matches_brute_force() {
        let pts = scatter(500);
        for cell in [1.0, 5.0, 50.0] {
            let g = GridIndex::build(&pts, cell);
            for (c, r) in [
                (Point::new(0.0, 0.0), 5.0),
                (Point::new(20.0, -20.0), 12.0),
                (Point::new(-30.0, 30.0), 0.5),
                (Point::new(0.0, 0.0), 100.0),
            ] {
                let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
                assert_eq!(g.count_within(&c, r), want, "cell={cell} c={c:?} r={r}");
            }
        }
    }

    #[test]
    fn query_returns_exact_set() {
        let pts = scatter(200);
        let g = GridIndex::build(&pts, 4.0);
        let c = Point::new(3.0, 3.0);
        let r = 9.0;
        let mut got = Vec::new();
        g.query_within(&c, r, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_grid() {
        let g = GridIndex::build(&[], 1.0);
        assert!(g.is_empty());
        assert_eq!(g.count_within(&Point::new(0.0, 0.0), 10.0), 0);
    }

    #[test]
    fn query_center_outside_bbox() {
        let pts = scatter(100);
        let g = GridIndex::build(&pts, 2.0);
        // Far outside: radius misses everything.
        assert_eq!(g.count_within(&Point::new(1000.0, 1000.0), 5.0), 0);
        // Outside but radius reaches in: must still count correctly.
        let c = Point::new(30.0, 0.0);
        let want = pts.iter().filter(|p| p.dist(&c) <= 10.0).count();
        assert_eq!(g.count_within(&c, 10.0), want);
    }

    #[test]
    fn all_points_bucketed_exactly_once() {
        let pts = scatter(333);
        let g = GridIndex::build(&pts, 3.0);
        let (nx, ny) = g.dims();
        let mut seen = vec![false; pts.len()];
        for iy in 0..ny {
            for ix in 0..nx {
                for &i in g.cell_entries(ix, iy) {
                    assert!(!seen[i as usize], "point {i} bucketed twice");
                    seen[i as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn degenerate_collinear_points() {
        // Zero-height bbox: grid must still work.
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 5.0)).collect();
        let g = GridIndex::build(&pts, 2.0);
        assert_eq!(g.count_within(&Point::new(25.0, 5.0), 3.0), 7);
    }

    #[test]
    fn coincident_points() {
        let pts = vec![Point::new(1.0, 1.0); 20];
        let g = GridIndex::build(&pts, 1.0);
        assert_eq!(g.count_within(&Point::new(1.0, 1.0), 0.0), 20);
    }
}
