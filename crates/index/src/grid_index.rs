//! A uniform bucket-grid index.
//!
//! For fixed-radius workloads — the K-function's `R(p_i)` range sets,
//! KDV with finite-support kernels, DBSCAN's ε-neighbourhoods — a bucket
//! grid with cell size matched to the query radius enumerates candidates
//! in near-constant time per result and is the strongest practical
//! baseline among the surveyed index structures.

use lsga_core::par::{par_map, Threads};
use lsga_core::soa::count_within_span;
use lsga_core::{BBox, Point};
use lsga_obs::{self as obs, Counter};

/// Uniform grid over a bounding box, bucketing point indices per cell.
///
/// Besides the CSR bucket lists, the index stores the bucketed points'
/// coordinates **in entry order** as two `f64` columns (`entry_xs` /
/// `entry_ys`). Because the cells of one grid row are adjacent in CSR
/// order, any `(cell row, cell-column interval)` becomes one contiguous
/// slice of those columns ([`GridIndex::row_span`]) that the cache-blocked
/// microkernels in `lsga_core::soa` can sweep without the
/// pointer-chasing `entries → points` gather.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BBox,
    cell: f64,
    nx: usize,
    ny: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point>,
    /// X coordinates of `points[entries[k]]`, in entry order.
    entry_xs: Vec<f64>,
    /// Y coordinates of `points[entries[k]]`, in entry order.
    entry_ys: Vec<f64>,
}

impl GridIndex {
    /// Maximum number of cells along either axis (see
    /// [`GridIndex::with_bbox`]).
    pub const MAX_DIM: usize = 2048;

    /// Build a grid with the given cell size over the points' bounding
    /// box. `cell_size` is typically the query radius (so a radius query
    /// touches at most 3×3 cells). Panics if `cell_size ≤ 0`.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        let bbox = if points.is_empty() {
            BBox::new(0.0, 0.0, 1.0, 1.0)
        } else {
            BBox::of_points(points)
        };
        Self::with_bbox(points, cell_size, bbox)
    }

    /// Build over an explicit bounding box (which must cover all points;
    /// outside points are clamped to edge cells).
    ///
    /// The effective cell size is clamped from below so neither dimension
    /// exceeds [`GridIndex::MAX_DIM`] cells — query results are identical
    /// either way, only candidate-set tightness changes, and the clamp
    /// keeps degenerate tiny radii (e.g. a K-function at `s = 0`) from
    /// requesting absurd cell counts.
    pub fn with_bbox(points: &[Point], cell_size: f64, bbox: BBox) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        assert!(!bbox.is_empty(), "grid bbox must be non-empty");
        let max_dim = Self::MAX_DIM as f64;
        let cell_size = cell_size
            .max(bbox.width() / max_dim)
            .max(bbox.height() / max_dim);
        let nx = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let ny = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let ncells = nx * ny;

        // Counting sort into CSR buckets: two passes, no per-cell Vecs.
        let cell_of = |p: &Point| -> usize {
            let ix = (((p.x - bbox.min_x) / cell_size) as usize).min(nx - 1);
            let iy = (((p.y - bbox.min_y) / cell_size) as usize).min(ny - 1);
            iy * nx + ix
        };
        let mut counts = vec![0u32; ncells + 1];
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        let entry_xs = entries.iter().map(|&i| points[i as usize].x).collect();
        let entry_ys = entries.iter().map(|&i| points[i as usize].y).collect();
        GridIndex {
            bbox,
            cell: cell_size,
            nx,
            ny,
            starts,
            entries,
            points: points.to_vec(),
            entry_xs,
            entry_ys,
        }
    }

    /// Merge segment indexes — all built over the **identical** bounding
    /// box and cell size — into one index whose contents are exactly
    /// what [`GridIndex::with_bbox`] would produce over the
    /// concatenation of the segments' point sequences (in segment
    /// order), entry permutation and coordinate columns included.
    ///
    /// The equivalence is structural, not numeric: the counting sort is
    /// stable in input order, so in the monolithic build every cell's
    /// entry run is the per-segment runs for that cell concatenated in
    /// segment order — which is precisely how this merge fills each
    /// cell. No point is re-bucketed and no float is recomputed, so the
    /// merge is a pure integer/memcpy pass: `O(cells · k + Σ lens)` for
    /// `k` segments, with the per-cell-row fill spread across the
    /// `lsga_core::par` pool (output is a pure function of the inputs,
    /// so the thread count cannot change a bit of it).
    ///
    /// Panics if `segments` is empty or the geometries differ.
    pub fn merged_threads(segments: &[&GridIndex], threads: Threads) -> GridIndex {
        let first = *segments.first().expect("merge of zero segments");
        for s in &segments[1..] {
            assert!(
                same_geometry(first, s),
                "segment grids must share bbox, cell size and dimensions"
            );
        }
        let (nx, ny) = (first.nx, first.ny);
        let ncells = nx * ny;

        // Input-index base of each segment in the concatenated order.
        let mut bases = Vec::with_capacity(segments.len());
        let mut total = 0u32;
        for s in segments {
            bases.push(total);
            total += s.len() as u32;
        }

        // CSR starts of the merged index: per-cell counts are the sums
        // of the per-segment cell counts (an integer pass).
        let mut starts = vec![0u32; ncells + 1];
        for s in segments {
            for c in 0..ncells {
                starts[c + 1] += s.starts[c + 1] - s.starts[c];
            }
        }
        for c in 1..=ncells {
            starts[c] += starts[c - 1];
        }

        // Fill cell rows on the pool: each row's merged entries are a
        // contiguous output run, so rows concatenate in order.
        type Row = (Vec<u32>, Vec<f64>, Vec<f64>);
        let rows: Vec<Row> = par_map(ny, 1, threads, |cy| {
            let mut e = Vec::new();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for cx in 0..nx {
                let c = cy * nx + cx;
                for (s, seg) in segments.iter().enumerate() {
                    let (s0, s1) = (seg.starts[c] as usize, seg.starts[c + 1] as usize);
                    e.extend(seg.entries[s0..s1].iter().map(|&i| i + bases[s]));
                    xs.extend_from_slice(&seg.entry_xs[s0..s1]);
                    ys.extend_from_slice(&seg.entry_ys[s0..s1]);
                }
            }
            (e, xs, ys)
        });
        let mut entries = Vec::with_capacity(total as usize);
        let mut entry_xs = Vec::with_capacity(total as usize);
        let mut entry_ys = Vec::with_capacity(total as usize);
        for (e, xs, ys) in rows {
            entries.extend_from_slice(&e);
            entry_xs.extend_from_slice(&xs);
            entry_ys.extend_from_slice(&ys);
        }
        let mut points = Vec::with_capacity(total as usize);
        for s in segments {
            points.extend_from_slice(&s.points);
        }
        GridIndex {
            bbox: first.bbox,
            cell: first.cell,
            nx,
            ny,
            starts,
            entries,
            points,
            entry_xs,
            entry_ys,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The bounding box the grid was built over.
    #[inline]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Grid dimensions `(nx, ny)` in cells.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The indexed points in input order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The full entry permutation: `entries()[k]` is the input index of
    /// the `k`-th bucketed point. Parallel to [`GridIndex::entry_xs`] /
    /// [`GridIndex::entry_ys`].
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// X coordinates of the bucketed points, in entry order.
    #[inline]
    pub fn entry_xs(&self) -> &[f64] {
        &self.entry_xs
    }

    /// Y coordinates of the bucketed points, in entry order.
    #[inline]
    pub fn entry_ys(&self) -> &[f64] {
        &self.entry_ys
    }

    /// Cell coordinates containing `p` (clamped).
    #[inline]
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        let ix = (((p.x - self.bbox.min_x) / self.cell).max(0.0) as usize).min(self.nx - 1);
        let iy = (((p.y - self.bbox.min_y) / self.cell).max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Point indices bucketed in cell `(ix, iy)`.
    #[inline]
    pub fn cell_entries(&self, ix: usize, iy: usize) -> &[u32] {
        let c = iy * self.nx + ix;
        let s = self.starts[c] as usize;
        let e = self.starts[c + 1] as usize;
        &self.entries[s..e]
    }

    /// Invoke `f(index, point)` for every point in cells overlapping the
    /// disc `(center, radius)`. Candidates are *not* distance-filtered —
    /// callers that need the exact disc apply their own test (this lets
    /// kernel evaluation fold the distance computation into one pass).
    pub fn for_each_candidate(&self, center: &Point, radius: f64, mut f: impl FnMut(u32, &Point)) {
        let (cx0, cy0, cx1, cy1) = self.cell_range(center, radius);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in self.cell_entries(cx, cy) {
                    f(i, &self.points[i as usize]);
                }
            }
        }
    }

    /// Count points with `dist(center, p) ≤ radius`.
    ///
    /// Runs branch-free over the entry-ordered coordinate columns, one
    /// contiguous slice per overlapped cell row.
    pub fn count_within(&self, center: &Point, radius: f64) -> usize {
        let r2 = radius * radius;
        let (cx0, cx1) = self.cell_col_range(center.x - radius, center.x + radius);
        let (cy0, cy1) = self.cell_row_range(center.y - radius, center.y + radius);
        let mut count = 0;
        let mut scanned: u64 = 0;
        for cy in cy0..=cy1 {
            let span = self.row_span(cy, cx0, cx1);
            scanned += span.len() as u64;
            count += count_within_span(
                center.x,
                center.y,
                &self.entry_xs[span.clone()],
                &self.entry_ys[span],
                r2,
            );
        }
        obs::add(Counter::IndexEntriesScanned, scanned);
        count
    }

    /// Collect indices of points with `dist(center, p) ≤ radius` into
    /// `out` (cleared first), in candidate order (cell row, cell column,
    /// entry order) — the same order `for_each_candidate` visits.
    pub fn query_within(&self, center: &Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let r2 = radius * radius;
        let (cx0, cx1) = self.cell_col_range(center.x - radius, center.x + radius);
        let (cy0, cy1) = self.cell_row_range(center.y - radius, center.y + radius);
        let mut scanned: u64 = 0;
        for cy in cy0..=cy1 {
            let span = self.row_span(cy, cx0, cx1);
            scanned += span.len() as u64;
            for k in span {
                let dx = center.x - self.entry_xs[k];
                let dy = center.y - self.entry_ys[k];
                if dx * dx + dy * dy <= r2 {
                    out.push(self.entries[k]);
                }
            }
        }
        obs::add(Counter::IndexEntriesScanned, scanned);
    }

    /// Inclusive cell-column interval overlapping `[lo_x, hi_x]`
    /// (clamped to the grid).
    #[inline]
    pub fn cell_col_range(&self, lo_x: f64, hi_x: f64) -> (usize, usize) {
        let cx0 =
            (((lo_x - self.bbox.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let cx1 =
            (((hi_x - self.bbox.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        (cx0, cx1)
    }

    /// Inclusive cell-row interval overlapping `[lo_y, hi_y]`
    /// (clamped to the grid).
    #[inline]
    pub fn cell_row_range(&self, lo_y: f64, hi_y: f64) -> (usize, usize) {
        let cy0 =
            (((lo_y - self.bbox.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        let cy1 =
            (((hi_y - self.bbox.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        (cy0, cy1)
    }

    /// The contiguous `entries` / `entry_xs` / `entry_ys` range holding
    /// cells `(cx0..=cx1, cy)`: one grid row's cells are adjacent in CSR
    /// order, so the whole interval is a single slice.
    #[inline]
    pub fn row_span(&self, cy: usize, cx0: usize, cx1: usize) -> std::ops::Range<usize> {
        debug_assert!(cx0 <= cx1 && cx1 < self.nx && cy < self.ny);
        let s = self.starts[cy * self.nx + cx0] as usize;
        let e = self.starts[cy * self.nx + cx1 + 1] as usize;
        s..e
    }

    /// The inclusive cell-coordinate rectangle overlapping the disc.
    fn cell_range(&self, center: &Point, radius: f64) -> (usize, usize, usize, usize) {
        let (cx0, cx1) = self.cell_col_range(center.x - radius, center.x + radius);
        let (cy0, cy1) = self.cell_row_range(center.y - radius, center.y + radius);
        (cx0, cy0, cx1, cy1)
    }
}

/// True when two grids share the exact decomposition: same bounding box
/// (bitwise — the cell mapping divides by these ordinates), same
/// effective cell size, same dimensions.
pub(crate) fn same_geometry(a: &GridIndex, b: &GridIndex) -> bool {
    a.bbox.min_x.to_bits() == b.bbox.min_x.to_bits()
        && a.bbox.min_y.to_bits() == b.bbox.min_y.to_bits()
        && a.bbox.max_x.to_bits() == b.bbox.max_x.to_bits()
        && a.bbox.max_y.to_bits() == b.bbox.max_y.to_bits()
        && a.cell.to_bits() == b.cell.to_bits()
        && a.nx == b.nx
        && a.ny == b.ny
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.917).sin() * 25.0, (f * 0.613).cos() * 25.0)
            })
            .collect()
    }

    #[test]
    fn count_matches_brute_force() {
        let pts = scatter(500);
        for cell in [1.0, 5.0, 50.0] {
            let g = GridIndex::build(&pts, cell);
            for (c, r) in [
                (Point::new(0.0, 0.0), 5.0),
                (Point::new(20.0, -20.0), 12.0),
                (Point::new(-30.0, 30.0), 0.5),
                (Point::new(0.0, 0.0), 100.0),
            ] {
                let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
                assert_eq!(g.count_within(&c, r), want, "cell={cell} c={c:?} r={r}");
            }
        }
    }

    #[test]
    fn query_returns_exact_set() {
        let pts = scatter(200);
        let g = GridIndex::build(&pts, 4.0);
        let c = Point::new(3.0, 3.0);
        let r = 9.0;
        let mut got = Vec::new();
        g.query_within(&c, r, &mut got);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_grid() {
        let g = GridIndex::build(&[], 1.0);
        assert!(g.is_empty());
        assert_eq!(g.count_within(&Point::new(0.0, 0.0), 10.0), 0);
    }

    #[test]
    fn query_center_outside_bbox() {
        let pts = scatter(100);
        let g = GridIndex::build(&pts, 2.0);
        // Far outside: radius misses everything.
        assert_eq!(g.count_within(&Point::new(1000.0, 1000.0), 5.0), 0);
        // Outside but radius reaches in: must still count correctly.
        let c = Point::new(30.0, 0.0);
        let want = pts.iter().filter(|p| p.dist(&c) <= 10.0).count();
        assert_eq!(g.count_within(&c, 10.0), want);
    }

    #[test]
    fn all_points_bucketed_exactly_once() {
        let pts = scatter(333);
        let g = GridIndex::build(&pts, 3.0);
        let (nx, ny) = g.dims();
        let mut seen = vec![false; pts.len()];
        for iy in 0..ny {
            for ix in 0..nx {
                for &i in g.cell_entries(ix, iy) {
                    assert!(!seen[i as usize], "point {i} bucketed twice");
                    seen[i as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn degenerate_collinear_points() {
        // Zero-height bbox: grid must still work.
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 5.0)).collect();
        let g = GridIndex::build(&pts, 2.0);
        assert_eq!(g.count_within(&Point::new(25.0, 5.0), 3.0), 7);
    }

    #[test]
    fn coincident_points() {
        let pts = vec![Point::new(1.0, 1.0); 20];
        let g = GridIndex::build(&pts, 1.0);
        assert_eq!(g.count_within(&Point::new(1.0, 1.0), 0.0), 20);
    }

    /// A CSR merge of consecutive segments must be indistinguishable —
    /// entries, starts, coordinate columns, points, all of it — from
    /// `with_bbox` over the concatenated point sequence. This is the
    /// structural fact the segmented ingest path's bit-identity proof
    /// rests on, so it is asserted exactly, at every thread count.
    #[test]
    fn merged_equals_monolithic_rebuild() {
        let all = scatter(377);
        let bbox = BBox::new(-30.0, -30.0, 30.0, 30.0);
        for cell in [1.7, 6.0, 80.0] {
            for splits in [vec![377], vec![1, 376], vec![120, 7, 0, 250]] {
                let mut segs = Vec::new();
                let mut off = 0;
                for n in &splits {
                    segs.push(GridIndex::with_bbox(&all[off..off + n], cell, bbox));
                    off += n;
                }
                assert_eq!(off, all.len());
                let refs: Vec<&GridIndex> = segs.iter().collect();
                let mono = GridIndex::with_bbox(&all, cell, bbox);
                for threads in [1usize, 4] {
                    let merged = GridIndex::merged_threads(&refs, Threads::exact(threads));
                    assert!(same_geometry(&mono, &merged));
                    assert_eq!(merged.starts, mono.starts, "cell={cell} {splits:?}");
                    assert_eq!(merged.entries, mono.entries, "cell={cell} {splits:?}");
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&merged.entry_xs), bits(&mono.entry_xs));
                    assert_eq!(bits(&merged.entry_ys), bits(&mono.entry_ys));
                    assert_eq!(merged.points.len(), mono.points.len());
                    for (a, b) in merged.points.iter().zip(&mono.points) {
                        assert_eq!(a.x.to_bits(), b.x.to_bits());
                        assert_eq!(a.y.to_bits(), b.y.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "share bbox")]
    fn merge_rejects_mismatched_geometry() {
        let pts = scatter(10);
        let a = GridIndex::with_bbox(&pts, 2.0, BBox::new(-30.0, -30.0, 30.0, 30.0));
        let b = GridIndex::with_bbox(&pts, 3.0, BBox::new(-30.0, -30.0, 30.0, 30.0));
        let _ = GridIndex::merged_threads(&[&a, &b], Threads::exact(1));
    }

    /// The entry-ordered coordinate columns must mirror the permutation,
    /// and every cell row's span must reproduce `for_each_candidate`'s
    /// visit order (the DBSCAN neighbour lists depend on that order).
    #[test]
    fn entry_columns_and_row_spans_mirror_candidate_order() {
        let pts = scatter(250);
        let g = GridIndex::build(&pts, 3.5);
        for (k, &i) in g.entries().iter().enumerate() {
            assert_eq!(g.entry_xs()[k], pts[i as usize].x);
            assert_eq!(g.entry_ys()[k], pts[i as usize].y);
        }
        let c = Point::new(2.0, -4.0);
        let r = 11.0;
        let mut visited = Vec::new();
        g.for_each_candidate(&c, r, |i, _| visited.push(i));
        let (cx0, cx1) = g.cell_col_range(c.x - r, c.x + r);
        let (cy0, cy1) = g.cell_row_range(c.y - r, c.y + r);
        let mut spanned = Vec::new();
        for cy in cy0..=cy1 {
            spanned.extend_from_slice(&g.entries()[g.row_span(cy, cx0, cx1)]);
        }
        assert_eq!(spanned, visited);
        assert!(!visited.is_empty());

        // query_within must keep exactly the filtered candidate order.
        let mut got = Vec::new();
        g.query_within(&c, r, &mut got);
        let r2 = r * r;
        let want: Vec<u32> = visited
            .into_iter()
            .filter(|&i| pts[i as usize].dist_sq(&c) <= r2)
            .collect();
        assert_eq!(got, want);
    }
}
