//! Property-based tests: every index structure must agree exactly with a
//! linear scan on arbitrary inputs.

use lsga_core::Point;
use lsga_index::{BallTree, GridIndex, KdTree, RTree, RangeTree};
use proptest::prelude::*;

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kd_tree_range_count_equals_scan(
        pts in arb_points(300),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        r in 0.0f64..1500.0,
    ) {
        let c = Point::new(cx, cy);
        let tree = KdTree::build(&pts);
        let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
        prop_assert_eq!(tree.range_count(&c, r), want);
    }

    #[test]
    fn ball_tree_range_count_equals_scan(
        pts in arb_points(300),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        r in 0.0f64..1500.0,
    ) {
        let c = Point::new(cx, cy);
        let tree = BallTree::build(&pts);
        let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
        prop_assert_eq!(tree.range_count(&c, r), want);
    }

    #[test]
    fn grid_index_count_equals_scan(
        pts in arb_points(300),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        r in 0.0f64..1500.0,
        cell in 0.5f64..500.0,
    ) {
        let c = Point::new(cx, cy);
        let grid = GridIndex::build(&pts, cell);
        let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
        prop_assert_eq!(grid.count_within(&c, r), want);
    }

    #[test]
    fn range_tree_count_equals_scan(
        pts in arb_points(300),
        x0 in -1200.0f64..1200.0,
        dx in 0.0f64..2400.0,
        y0 in -1200.0f64..1200.0,
        dy in 0.0f64..2400.0,
    ) {
        let (x1, y1) = (x0 + dx, y0 + dy);
        let tree = RangeTree::build(&pts);
        let want = pts
            .iter()
            .filter(|p| p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1)
            .count();
        prop_assert_eq!(tree.count_in_box(x0, x1, y0, y1), want);
    }

    #[test]
    fn rtree_range_count_equals_scan(
        pts in arb_points(300),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        r in 0.0f64..1500.0,
    ) {
        let c = Point::new(cx, cy);
        let tree = RTree::build(&pts);
        let want = pts.iter().filter(|p| p.dist(&c) <= r).count();
        prop_assert_eq!(tree.range_count(&c, r), want);
    }

    #[test]
    fn kd_tree_knn_equals_scan(
        pts in arb_points(200),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        k in 0usize..20,
    ) {
        let c = Point::new(cx, cy);
        let tree = KdTree::build(&pts);
        let got = tree.knn(&c, k);
        let mut want: Vec<f64> = pts.iter().map(|p| p.dist(&c)).collect();
        want.sort_by(|a, b| a.total_cmp(b));
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w).abs() < 1e-9);
        }
    }
}
