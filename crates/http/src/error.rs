//! The HTTP error type: an HTTP status paired with the underlying
//! [`LsgaError`].
//!
//! Every failure on the socket and parse paths flows through exactly
//! one of the constructors here — `io::Error` through [`HttpError::io`],
//! `Utf8Error` through [`HttpError::utf8`], integer/float parse
//! failures through [`HttpError::parse`] — so there is no branch that
//! can panic or lose the reason. `tests/http_conformance.rs` exercises
//! every constructor and the [`status_for`] mapping branch by branch.

use lsga_core::error::LsgaError;
use std::str::Utf8Error;

/// Result alias for the request path.
pub type HttpResult<T> = std::result::Result<T, HttpError>;

/// A request-scoped failure: the status the client receives plus the
/// [`LsgaError`] that caused it (the error's `Display` becomes the
/// response body, so a failing client sees *why*).
#[derive(Debug, Clone, PartialEq)]
pub struct HttpError {
    pub status: u16,
    pub source: LsgaError,
}

impl HttpError {
    /// A generic 400 with a parse-shaped cause.
    pub fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            source: LsgaError::Parse {
                line: 0,
                message: message.into(),
            },
        }
    }

    /// 404: the path shape is fine but names nothing servable.
    pub fn not_found(message: impl Into<String>) -> Self {
        HttpError {
            status: 404,
            source: LsgaError::InvalidParameter {
                name: "path",
                message: message.into(),
            },
        }
    }

    /// An `io::Error` on the socket. Timeouts (a truncated request
    /// that never completes) become `408 Request Timeout`; every other
    /// transport failure is a 400 — the bytes on the wire were not a
    /// complete request.
    pub fn io(e: std::io::Error, what: &str) -> Self {
        use std::io::ErrorKind;
        let status = match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => 408,
            _ => 400,
        };
        HttpError {
            status,
            source: LsgaError::Io(format!("{what}: {e}")),
        }
    }

    /// Non-UTF-8 bytes where ASCII text is required (request line,
    /// header block).
    pub fn utf8(e: Utf8Error, what: &str) -> Self {
        HttpError {
            status: 400,
            source: LsgaError::Parse {
                line: 0,
                message: format!("{what}: {e}"),
            },
        }
    }

    /// A numeric field that failed to parse (path segment, query
    /// value, `Content-Length`).
    pub fn parse(what: &str, raw: &str) -> Self {
        HttpError {
            status: 400,
            source: LsgaError::Parse {
                line: 0,
                message: format!("{what}: cannot parse {raw:?}"),
            },
        }
    }

    /// Wrap an [`LsgaError`] coming back from the tile server with the
    /// status [`status_for`] assigns it.
    pub fn from_lsga(e: LsgaError) -> Self {
        HttpError {
            status: status_for(&e),
            source: e,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason(self.status),
            self.source
        )
    }
}

impl std::error::Error for HttpError {}

/// Which status a tile-server error surfaces as. Requests naming
/// something that does not exist (unknown layer, out-of-pyramid
/// coordinates) are 404s; requests whose *values* are illegal (bad ε,
/// out-of-window points) are 400s; anything else — a panicked leader,
/// an internal invariant failure — is the server's fault, 500.
#[must_use]
pub fn status_for(e: &LsgaError) -> u16 {
    match e {
        LsgaError::InvalidParameter { name, .. } => match *name {
            "layer" | "z" | "tile" | "path" => 404,
            _ => 400,
        },
        LsgaError::EmptyDataset(_) | LsgaError::Parse { .. } => 400,
        LsgaError::Io(_) => 400,
        _ => 500,
    }
}

/// Canonical reason phrase for the statuses this crate emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_timeout_maps_to_408_and_other_io_to_400() {
        let t = HttpError::io(
            std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"),
            "head",
        );
        assert_eq!(t.status, 408);
        assert!(matches!(t.source, LsgaError::Io(_)));
        let w = HttpError::io(
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow"),
            "head",
        );
        assert_eq!(w.status, 408);
        let r = HttpError::io(
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "gone"),
            "body",
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    #[allow(invalid_from_utf8)] // the invalid bytes are the point
    fn utf8_and_parse_map_to_400_parse_errors() {
        let bad = std::str::from_utf8(&[0xff, 0xfe]).unwrap_err();
        let e = HttpError::utf8(bad, "head");
        assert_eq!(e.status, 400);
        assert!(matches!(e.source, LsgaError::Parse { .. }));
        let p = HttpError::parse("z", "abc");
        assert_eq!(p.status, 400);
        assert!(p.source.to_string().contains("abc"));
    }

    #[test]
    fn lsga_statuses_split_not_found_from_bad_value() {
        for name in ["layer", "z", "tile"] {
            let e = LsgaError::InvalidParameter {
                name,
                message: "nope".into(),
            };
            assert_eq!(status_for(&e), 404, "{name}");
        }
        assert_eq!(
            status_for(&LsgaError::InvalidParameter {
                name: "eps",
                message: "bad".into()
            }),
            400
        );
        assert_eq!(status_for(&LsgaError::EmptyDataset("points")), 400);
        assert_eq!(status_for(&LsgaError::Panicked("tile")), 500);
        assert_eq!(status_for(&LsgaError::SingularSystem("k")), 500);
    }
}
