//! # lsga-http — dependency-free HTTP/1.1 tile front-end
//!
//! Puts the serving layer (`lsga-serve`) on a real socket. Built
//! entirely on `std::net::TcpListener` — no async runtime, no HTTP
//! library — because the paper's serving problem (bounded-latency tile
//! delivery under overload) is about *admission and degradation
//! policy*, not protocol plumbing, and a thread-per-shard blocking
//! design keeps every policy decision visible and testable.
//!
//! Endpoints:
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /tiles/{layer}/{z}/{x}/{y}` | One KDV tile; `?fmt=f64\|u8` or `Accept:` picks the payload; `?deadline_ms=` (or `X-Lsga-Deadline-Ms:`) routes through the EWMA admission controller |
//! | `POST /layers/{layer}/points` | Append little-endian `(x, y)` f64 pairs to a layer (segmented ingest path) |
//! | `GET /metrics` | Drain the `lsga-obs` tables as JSON |
//! | `GET /healthz` | Liveness |
//!
//! The f64 tile payload is the *bit-identity* format: exactly the
//! row-major pixels of the tile, each `f64::to_le_bytes`, so a client
//! (and `tests/http_coherence.rs`) can check equality against
//! [`lsga_serve::compute_tile_direct`] down to the last bit. The u8
//! payload is an 8×-smaller linear quantization with its range in
//! response headers.
//!
//! Overload behaviour is explicit: acceptors feed bounded per-worker
//! connection queues, and when all queues are full the acceptor
//! answers `503` + `Retry-After` itself (see [`server`] for the
//! two-layer admission story and the graceful-shutdown protocol).
//!
//! Module map: [`parse`] (bytes → request → route, total over
//! arbitrary input), [`wire`] (response encoding, payload formats),
//! [`error`] (status mapping — every `io::Error`, `Utf8Error`, and
//! parse failure becomes an [`HttpError`]), [`server`] (threads,
//! queues, lifecycle), [`client`] (test/bench client + decoders).

pub mod client;
pub mod error;
pub mod parse;
pub mod server;
pub mod wire;

pub use client::{read_response, ClientResponse};
pub use error::{reason, status_for, HttpError, HttpResult};
pub use parse::{parse_head, route, Method, PayloadFmt, RawRequest, Route};
pub use server::{HttpServer, HttpServerConfig};
pub use wire::{dequantize, error_response, retry_after_secs, tier_name, tile_response, Response};
