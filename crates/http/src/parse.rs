//! Request parsing: bytes → [`RawRequest`] → [`Route`].
//!
//! Everything here is a pure function over a byte slice, which is what
//! makes the conformance suite possible: `tests/http_conformance.rs`
//! feeds the same functions the server's socket loop uses, both
//! directly (directed malformed-input matrix, one test per error
//! branch) and through real sockets (proptest byte-mangling). The
//! contract is total: **any** byte sequence produces either a
//! `RawRequest` or an [`HttpError`] with a 4xx status — never a panic,
//! and never an unbounded scan (every dimension is capped below).
//!
//! Parsing is deliberately strict where strictness is cheap insurance:
//! unknown or duplicate query keys are 400s rather than silently
//! ignored, so a typo'd `deadine_ms=5` can never masquerade as an
//! exact request that just happened to be slow.

use crate::error::{HttpError, HttpResult};
use lsga_serve::{ApproxMode, LayerKind, QualityPolicy};
use std::time::Duration;

/// Cap on the request head (request line + headers + blank line).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the request line alone.
pub const MAX_REQUEST_LINE: usize = 4 * 1024;
/// Cap on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Default cap on a request body (`POST /layers/{l}/points`).
pub const DEFAULT_MAX_BODY: usize = 16 << 20;

/// The two methods the endpoint speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

/// A parsed request head: method, split target, lowercased headers.
#[derive(Debug, Clone)]
pub struct RawRequest {
    pub method: Method,
    /// Path component of the target (before `?`), percent-encoding
    /// left untouched — tile paths are pure ASCII digits.
    pub path: String,
    /// Query pairs in wire order, keys and values raw.
    pub query: Vec<(String, String)>,
    /// Header fields in wire order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Whether the connection survives this exchange (HTTP/1.1 default
    /// minus `Connection: close`, HTTP/1.0 opt-in).
    pub keep_alive: bool,
}

impl RawRequest {
    /// First header with this (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query value for this key.
    #[must_use]
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length. Absent → `None`; non-numeric or
    /// conflicting duplicates → 400.
    pub fn content_length(&self) -> HttpResult<Option<usize>> {
        let mut found: Option<usize> = None;
        for (n, v) in &self.headers {
            if n == "content-length" {
                let len: usize = v
                    .parse()
                    .map_err(|_| HttpError::parse("content-length", v))?;
                if let Some(prev) = found {
                    if prev != len {
                        return Err(HttpError::bad_request("conflicting content-length headers"));
                    }
                }
                found = Some(len);
            }
        }
        Ok(found)
    }
}

/// Parse a request head (everything before the blank line, terminator
/// excluded). Lines may end in CRLF or bare LF.
pub fn parse_head(head: &[u8]) -> HttpResult<RawRequest> {
    if head.len() > MAX_HEAD_BYTES {
        return Err(HttpError {
            status: 431,
            source: lsga_core::LsgaError::Parse {
                line: 0,
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            },
        });
    }
    let text = std::str::from_utf8(head).map_err(|e| HttpError::utf8(e, "request head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let (method, path, query, http11) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line (or a stray one)
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError {
                status: 431,
                source: lsga_core::LsgaError::Parse {
                    line: 0,
                    message: format!("more than {MAX_HEADERS} header fields"),
                },
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("header line without ':': {line:?}")))?;
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::bad_request(format!(
                "illegal header name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut keep_alive = http11;
    if let Some(c) = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        if c == "close" {
            keep_alive = false;
        } else if c == "keep-alive" {
            keep_alive = true;
        }
    }
    Ok(RawRequest {
        method,
        path,
        query,
        headers,
        keep_alive,
    })
}

/// RFC 7230 token characters (header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parsed request line: method, path, decoded query pairs, and
/// whether the version was HTTP/1.1 (keep-alive default).
type RequestLine = (Method, String, Vec<(String, String)>, bool);

fn parse_request_line(line: &str) -> HttpResult<RequestLine> {
    if line.len() > MAX_REQUEST_LINE {
        return Err(HttpError {
            status: 414,
            source: lsga_core::LsgaError::Parse {
                line: 0,
                message: format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
            },
        });
    }
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(format!(
            "request line is not 'METHOD TARGET VERSION': {line:?}"
        )));
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => {
            return Err(HttpError {
                status: 405,
                source: lsga_core::LsgaError::Parse {
                    line: 0,
                    message: format!("unsupported method {other:?}"),
                },
            })
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::bad_request(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpError::bad_request(format!(
            "target must be origin-form (start with '/'): {target:?}"
        )));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut query = Vec::new();
    if let Some(q) = query_str {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((k.to_string(), v.to_string()));
        }
    }
    Ok((method, path.to_string(), query, http11))
}

/// Requested payload encoding for a tile response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadFmt {
    /// Raw little-endian `f64` pixels, row-major — the bit-identity
    /// format.
    F64,
    /// Linearly quantized `u8` pixels with `X-Lsga-Min`/`X-Lsga-Max`
    /// headers carrying the dequantization range.
    U8,
}

impl PayloadFmt {
    /// The `Content-Type` each format is served under (and matched
    /// against `Accept`).
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            PayloadFmt::F64 => "application/x-lsga-f64",
            PayloadFmt::U8 => "application/x-lsga-u8",
        }
    }
}

/// A fully validated request, ready to execute against the tile server.
#[derive(Debug)]
pub enum Route {
    /// `GET /tiles/{layer}/{z}/{x}/{y}` or
    /// `GET /tiles/{layer}/{kind}/{z}/{x}/{y}[?t=bin]` — serve one tile.
    Tile {
        layer: usize,
        /// `Some` iff the path named an analytic kind between the layer
        /// and the pyramid coordinates; the server 404s if it does not
        /// match the layer's registered compute.
        kind: Option<LayerKind>,
        z: u8,
        x: u32,
        y: u32,
        /// Time bin (`?t=`, kind-bearing routes only); 0 is the sole
        /// legal value for purely spatial layers.
        bin: u32,
        fmt: PayloadFmt,
        /// Present iff the request carried a deadline (query param or
        /// `X-Lsga-Deadline-Ms` header): route through the admission
        /// controller instead of the always-exact path.
        policy: Option<QualityPolicy>,
    },
    /// `POST /layers/{layer}/points` — append a batch of points.
    IngestPoints { layer: usize },
    /// `GET /metrics` — drain the obs tables as JSON.
    Metrics,
    /// `GET /healthz` — liveness probe.
    Health,
}

/// Which query keys each route accepts; anything else is a 400.
const TILE_QUERY_KEYS: [&str; 6] = ["fmt", "deadline_ms", "mode", "eps", "delta", "seed"];
/// The kind-bearing route additionally accepts a time-bin selector.
const TILE_KIND_QUERY_KEYS: [&str; 7] = ["fmt", "deadline_ms", "mode", "eps", "delta", "seed", "t"];

fn check_query_keys(req: &RawRequest, allowed: &[&str]) -> HttpResult<()> {
    for (i, (k, _)) in req.query.iter().enumerate() {
        if !allowed.contains(&k.as_str()) {
            return Err(HttpError::bad_request(format!(
                "unknown query parameter {k:?}"
            )));
        }
        if req.query[..i].iter().any(|(prev, _)| prev == k) {
            return Err(HttpError::bad_request(format!(
                "duplicate query parameter {k:?}"
            )));
        }
    }
    Ok(())
}

fn parse_seg<T: std::str::FromStr>(what: &'static str, raw: &str) -> HttpResult<T> {
    raw.parse().map_err(|_| HttpError::parse(what, raw))
}

/// Resolve the payload format: `?fmt=` wins, then `Accept`, then the
/// f64 default. An `Accept` naming neither lsga media type (nor a
/// wildcard / octet-stream) is a 406.
fn negotiate_fmt(req: &RawRequest) -> HttpResult<PayloadFmt> {
    if let Some(v) = req.query_value("fmt") {
        return match v {
            "f64" => Ok(PayloadFmt::F64),
            "u8" => Ok(PayloadFmt::U8),
            other => Err(HttpError::parse("fmt", other)),
        };
    }
    match req.header("accept") {
        None => Ok(PayloadFmt::F64),
        Some(a) => {
            if a.contains("application/x-lsga-u8") {
                Ok(PayloadFmt::U8)
            } else if a.contains("application/x-lsga-f64")
                || a.contains("*/*")
                || a.contains("application/octet-stream")
            {
                Ok(PayloadFmt::F64)
            } else {
                Err(HttpError {
                    status: 406,
                    source: lsga_core::LsgaError::InvalidParameter {
                        name: "accept",
                        message: format!("no acceptable representation among {a:?}"),
                    },
                })
            }
        }
    }
}

/// Build the request's [`QualityPolicy`], if it carries a deadline.
/// The approximation knobs are only legal alongside one — a bare
/// `eps=` with no deadline is a contradiction, not a default.
fn build_policy(req: &RawRequest) -> HttpResult<Option<QualityPolicy>> {
    let deadline_ms: Option<u64> = match req.query_value("deadline_ms") {
        Some(v) => Some(parse_seg("deadline_ms", v)?),
        None => match req.header("x-lsga-deadline-ms") {
            Some(v) => Some(parse_seg("x-lsga-deadline-ms", v)?),
            None => None,
        },
    };
    let Some(ms) = deadline_ms else {
        for knob in ["mode", "eps", "delta", "seed"] {
            if req.query_value(knob).is_some() {
                return Err(HttpError::bad_request(format!(
                    "{knob:?} requires deadline_ms"
                )));
            }
        }
        return Ok(None);
    };
    let eps: f64 = match req.query_value("eps") {
        Some(v) => parse_seg("eps", v)?,
        None => 0.1,
    };
    let mode = match req.query_value("mode").unwrap_or("sampling") {
        "sampling" => {
            let delta: f64 = match req.query_value("delta") {
                Some(v) => parse_seg("delta", v)?,
                None => 0.01,
            };
            let seed: u64 = match req.query_value("seed") {
                Some(v) => parse_seg("seed", v)?,
                None => 0,
            };
            ApproxMode::Sampling { eps, delta, seed }
        }
        "bounds" => {
            for knob in ["delta", "seed"] {
                if req.query_value(knob).is_some() {
                    return Err(HttpError::bad_request(format!(
                        "{knob:?} applies to mode=sampling only"
                    )));
                }
            }
            ApproxMode::Bounds { eps }
        }
        other => return Err(HttpError::parse("mode", other)),
    };
    let policy =
        QualityPolicy::new(Duration::from_millis(ms), mode).map_err(HttpError::from_lsga)?;
    Ok(Some(policy))
}

/// Dispatch a parsed head onto the endpoint's route table.
pub fn route(req: &RawRequest) -> HttpResult<Route> {
    let segs: Vec<&str> = req.path.split('/').skip(1).collect();
    match (req.method, segs.as_slice()) {
        (Method::Get, ["tiles", layer, z, x, y]) => {
            check_query_keys(req, &TILE_QUERY_KEYS)?;
            Ok(Route::Tile {
                layer: parse_seg("layer", layer)?,
                kind: None,
                z: parse_seg("z", z)?,
                x: parse_seg("x", x)?,
                y: parse_seg("y", y)?,
                bin: 0,
                fmt: negotiate_fmt(req)?,
                policy: build_policy(req)?,
            })
        }
        (Method::Get, ["tiles", layer, kind, z, x, y]) => {
            // Kind first: an unknown analytic name is a missing
            // resource, not a malformed request. Kind names are
            // non-numeric, so the legacy five-segment tile paths with a
            // stray extra coordinate still land here and 404.
            let Some(kind) = LayerKind::parse(kind) else {
                return Err(HttpError::not_found(format!("unknown layer kind {kind:?}")));
            };
            check_query_keys(req, &TILE_KIND_QUERY_KEYS)?;
            let bin: u32 = match req.query_value("t") {
                Some(v) => parse_seg("t", v)?,
                None => 0,
            };
            let policy = build_policy(req)?;
            if policy.is_some() && bin != 0 {
                return Err(HttpError::bad_request(
                    "deadline policies apply to spatial tiles only (t=0)",
                ));
            }
            Ok(Route::Tile {
                layer: parse_seg("layer", layer)?,
                kind: Some(kind),
                z: parse_seg("z", z)?,
                x: parse_seg("x", x)?,
                y: parse_seg("y", y)?,
                bin,
                fmt: negotiate_fmt(req)?,
                policy,
            })
        }
        (Method::Post, ["layers", layer, "points"]) => {
            check_query_keys(req, &[])?;
            Ok(Route::IngestPoints {
                layer: parse_seg("layer", layer)?,
            })
        }
        (Method::Get, ["metrics"]) => {
            check_query_keys(req, &[])?;
            Ok(Route::Metrics)
        }
        (Method::Get, ["healthz"]) => {
            check_query_keys(req, &[])?;
            Ok(Route::Health)
        }
        // Known resources addressed with the wrong method get a 405…
        (Method::Post, ["tiles", ..] | ["metrics"] | ["healthz"])
        | (Method::Get, ["layers", _, "points"]) => Err(HttpError {
            status: 405,
            source: lsga_core::LsgaError::InvalidParameter {
                name: "method",
                message: format!("method not allowed for {:?}", req.path),
            },
        }),
        // …everything else is simply not there.
        _ => Err(HttpError::not_found(format!("no route for {:?}", req.path))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(s: &str) -> HttpResult<RawRequest> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_a_plain_tile_request() {
        let r = head("GET /tiles/0/2/1/3 HTTP/1.1\r\nHost: localhost\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/tiles/0/2/1/3");
        assert!(r.keep_alive);
        assert_eq!(r.header("host"), Some("localhost"));
        let Route::Tile {
            layer,
            kind,
            z,
            x,
            y,
            bin,
            fmt,
            policy,
        } = route(&r).unwrap()
        else {
            panic!("expected tile route");
        };
        assert_eq!((layer, z, x, y), (0, 2, 1, 3));
        assert_eq!(kind, None, "legacy route is kind-agnostic");
        assert_eq!(bin, 0);
        assert_eq!(fmt, PayloadFmt::F64);
        assert!(policy.is_none());
    }

    #[test]
    fn parses_kind_bearing_tile_requests() {
        for name in ["kdv", "stkdv", "nkdv", "hotspot"] {
            let r = head(&format!("GET /tiles/1/{name}/2/1/3 HTTP/1.1\r\n")).unwrap();
            let Route::Tile {
                layer,
                kind,
                z,
                x,
                y,
                bin,
                policy,
                ..
            } = route(&r).unwrap()
            else {
                panic!("expected tile route for {name}");
            };
            assert_eq!((layer, z, x, y, bin), (1, 2, 1, 3, 0));
            assert_eq!(kind.expect("kind parsed").name(), name);
            assert!(policy.is_none());
        }
        // The time-bin selector rides on the kind route only.
        let r = head("GET /tiles/0/stkdv/1/0/0?t=5 HTTP/1.1\r\n").unwrap();
        let Route::Tile { kind, bin, .. } = route(&r).unwrap() else {
            panic!("expected tile route");
        };
        assert_eq!(kind, Some(LayerKind::Stkdv));
        assert_eq!(bin, 5);
    }

    #[test]
    fn kind_route_rejections() {
        // Unknown kind names are missing resources, not bad requests —
        // and numeric segments never parse as kinds, so the pinned
        // five-coordinate 404 below stays a 404.
        for raw in [
            "GET /tiles/0/voronoi/0/0/0 HTTP/1.1\r\n",
            "GET /tiles/0/KDV/0/0/0 HTTP/1.1\r\n", // case-sensitive
            "GET /tiles/0/7/0/0/0 HTTP/1.1\r\n",
        ] {
            let r = head(raw).unwrap();
            assert_eq!(route(&r).unwrap_err().status, 404, "{raw:?}");
        }
        // `?t=` on the legacy route is an unknown key; bad bins and
        // policy+bin combinations on the kind route are 400s.
        for raw in [
            "GET /tiles/0/1/0/0?t=1 HTTP/1.1\r\n",
            "GET /tiles/0/stkdv/1/0/0?t=abc HTTP/1.1\r\n",
            "GET /tiles/0/stkdv/1/0/0?t=-1 HTTP/1.1\r\n",
            "GET /tiles/0/stkdv/1/0/0?t=2&deadline_ms=5 HTTP/1.1\r\n",
        ] {
            let r = head(raw).unwrap();
            assert_eq!(route(&r).unwrap_err().status, 400, "{raw:?}");
        }
        // A deadline on a kind route at bin 0 is still legal.
        let r = head("GET /tiles/0/kdv/1/0/0?deadline_ms=5 HTTP/1.1\r\n").unwrap();
        let Route::Tile { policy, .. } = route(&r).unwrap() else {
            panic!("expected tile route");
        };
        assert!(policy.is_some());
    }

    #[test]
    fn query_and_header_negotiate_format_and_policy() {
        let r = head(
            "GET /tiles/0/1/0/0?fmt=u8&deadline_ms=5&eps=0.2&seed=9 HTTP/1.1\r\n\
             Accept: application/x-lsga-f64\r\n",
        )
        .unwrap();
        let Route::Tile { fmt, policy, .. } = route(&r).unwrap() else {
            panic!("expected tile route");
        };
        assert_eq!(fmt, PayloadFmt::U8, "?fmt= must beat Accept");
        let p = policy.expect("deadline_ms implies a policy");
        assert_eq!(p.deadline(), Duration::from_millis(5));
        assert!(matches!(
            p.mode(),
            ApproxMode::Sampling { eps, seed: 9, .. } if (eps - 0.2).abs() < 1e-12
        ));

        let r = head("GET /tiles/0/1/0/0 HTTP/1.1\r\nX-Lsga-Deadline-Ms: 7\r\n").unwrap();
        let Route::Tile { policy, .. } = route(&r).unwrap() else {
            panic!("expected tile route");
        };
        assert_eq!(
            policy.expect("header deadline").deadline(),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn strict_query_rejections() {
        for q in [
            "?bogus=1",
            "?fmt=png",
            "?fmt=f64&fmt=f64",
            "?eps=0.1", // knob without a deadline
            "?deadline_ms=abc",
            "?deadline_ms=5&mode=carrier-pigeon",
            "?deadline_ms=5&eps=-1", // rejected by QualityPolicy::new
            "?deadline_ms=5&mode=bounds&seed=3",
        ] {
            let r = head(&format!("GET /tiles/0/1/0/0{q} HTTP/1.1\r\n")).unwrap();
            let e = route(&r).unwrap_err();
            assert_eq!(e.status, 400, "{q} -> {e}");
        }
    }

    #[test]
    fn malformed_heads_are_4xx() {
        for (raw, status) in [
            ("", 400u16),
            ("GET\r\n", 400),
            ("GET /tiles HTTP/1.1 extra\r\n", 400),
            ("BREW /tiles/0/0/0/0 HTTP/1.1\r\n", 405),
            ("GET /tiles/0/0/0/0 HTCPCP/1.0\r\n", 400),
            ("GET tiles/0/0/0/0 HTTP/1.1\r\n", 400),
            ("GET /tiles/0/0/0/0 HTTP/1.1\r\nNo-Colon-Here\r\n", 400),
            ("GET /tiles/0/0/0/0 HTTP/1.1\r\nBad Name: v\r\n", 400),
            ("GET /tiles/0/0/0/0 HTTP/1.1\r\n: empty name\r\n", 400),
            (": / HTTP/1.1\r\n", 405), // ':' parses as an unknown method
        ] {
            let e = head(raw).expect_err(raw);
            assert_eq!(e.status, status, "{raw:?} -> {e}");
        }
        // Non-UTF-8 head.
        let e = parse_head(&[0x47, 0x45, 0x54, 0x20, 0xff, 0xfe]).unwrap_err();
        assert_eq!(e.status, 400);
        // Oversized request line and header block.
        let long = format!("GET /{} HTTP/1.1\r\n", "a".repeat(MAX_REQUEST_LINE + 10));
        assert_eq!(head(&long).unwrap_err().status, 414);
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 1 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        assert_eq!(head(&many).unwrap_err().status, 431);
        assert_eq!(
            parse_head(&vec![b'a'; MAX_HEAD_BYTES + 1])
                .unwrap_err()
                .status,
            431
        );
    }

    #[test]
    fn route_table_edges() {
        let cases = [
            ("GET / HTTP/1.1\r\n", 404u16),
            ("GET /tiles/0/0/0 HTTP/1.1\r\n", 404),
            ("GET /tiles/0/0/0/0/0 HTTP/1.1\r\n", 404),
            ("GET /tiles/0/abc/0/0 HTTP/1.1\r\n", 400),
            ("GET /tiles/-1/0/0/0 HTTP/1.1\r\n", 400),
            ("GET /tiles/0/999/0/0 HTTP/1.1\r\n", 400), // z > u8
            ("POST /tiles/0/0/0/0 HTTP/1.1\r\n", 405),
            ("GET /layers/0/points HTTP/1.1\r\n", 405),
            ("POST /metrics HTTP/1.1\r\n", 405),
            ("GET /metrics?x=1 HTTP/1.1\r\n", 400),
        ];
        for (raw, status) in cases {
            let r = head(raw).unwrap();
            let e = route(&r).expect_err(raw);
            assert_eq!(e.status, status, "{raw:?} -> {e}");
        }
        let r = head("POST /layers/3/points HTTP/1.1\r\n").unwrap();
        assert!(matches!(
            route(&r).unwrap(),
            Route::IngestPoints { layer: 3 }
        ));
    }

    #[test]
    fn connection_and_content_length_semantics() {
        let r = head("GET / HTTP/1.0\r\n").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = head("GET / HTTP/1.0\r\nConnection: keep-alive\r\n").unwrap();
        assert!(r.keep_alive);
        let r = head("GET / HTTP/1.1\r\nConnection: close\r\n").unwrap();
        assert!(!r.keep_alive);

        let r = head("POST /layers/0/points HTTP/1.1\r\nContent-Length: 32\r\n").unwrap();
        assert_eq!(r.content_length().unwrap(), Some(32));
        let r = head("POST /x HTTP/1.1\r\nContent-Length: twelve\r\n").unwrap();
        assert_eq!(r.content_length().unwrap_err().status, 400);
        let r = head("POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n").unwrap();
        assert_eq!(r.content_length().unwrap_err().status, 400);
        let r = head("GET / HTTP/1.1\r\n").unwrap();
        assert_eq!(r.content_length().unwrap(), None);
    }

    #[test]
    fn accept_negotiation() {
        let u8_req =
            head("GET /tiles/0/0/0/0 HTTP/1.1\r\nAccept: application/x-lsga-u8\r\n").unwrap();
        assert_eq!(negotiate_fmt(&u8_req).unwrap(), PayloadFmt::U8);
        let any = head("GET /tiles/0/0/0/0 HTTP/1.1\r\nAccept: */*\r\n").unwrap();
        assert_eq!(negotiate_fmt(&any).unwrap(), PayloadFmt::F64);
        let img = head("GET /tiles/0/0/0/0 HTTP/1.1\r\nAccept: image/png\r\n").unwrap();
        assert_eq!(negotiate_fmt(&img).unwrap_err().status, 406);
    }
}
