//! The HTTP server: thread-per-shard acceptors feeding bounded
//! per-worker connection queues.
//!
//! ```text
//!          ┌ acceptor 0 ┐   round-robin,    ┌ worker 0: [c,c,c] ┐
//!  TCP ──► │ acceptor 1 │ ──try-all-then──► │ worker 1: [c]     │ ──► TileServer
//!          └ …          ┘      503          └ …                 ┘
//! ```
//!
//! Admission happens at two layers. This module's layer is *load*
//! admission: every worker owns a bounded queue of accepted
//! connections, the acceptor places each connection on the first
//! non-full queue starting from a round-robin cursor, and when every
//! queue is full the acceptor itself answers `503` with `Retry-After`
//! — the connection never ties up a worker. *Quality* admission is the
//! tile server's: a request carrying a deadline parses into a
//! [`QualityPolicy`](lsga_serve::QualityPolicy) and PR 7's EWMA
//! controller decides exact-vs-degraded per tile. The two compose:
//! queue-full says "come back later", the EWMA controller says "here's
//! a coarser answer now".
//!
//! Shutdown protocol (exercised by the lifecycle tests in
//! `tests/http_conformance.rs`):
//!
//! 1. `stop` flips → acceptors exit their poll loop and are joined.
//!    No new connections enter the system.
//! 2. `draining` flips → a worker mid-connection finishes the request
//!    in flight, then closes instead of reading the next one.
//! 3. Queues are notified; workers shed every still-queued connection
//!    with a `503` (counted under `http.shed_on_shutdown`), then exit
//!    when their queue is empty.
//! 4. Workers are joined. Every thread the server spawned carries a
//!    `lh{instance}-` name prefix so tests can prove none leak.

use crate::error::{HttpError, HttpResult};
use crate::parse::{self, RawRequest, Route};
use crate::wire::{error_response, retry_after_secs, tile_response, Response};
use lsga_core::{LsgaError, Point};
use lsga_obs as obs;
use lsga_serve::TileServer;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for the HTTP front-end.
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Accept threads sharing one listening socket.
    pub acceptors: usize,
    /// Worker threads, one bounded connection queue each.
    pub workers: usize,
    /// Per-worker queue capacity; with every queue full, new
    /// connections get `503 Retry-After: 1`.
    pub queue_cap: usize,
    /// Socket read/write timeout. A request head that stalls past this
    /// is answered `408`; an idle keep-alive connection is closed
    /// silently.
    pub read_timeout: Duration,
    /// Keep-alive budget: requests served per connection before the
    /// server closes it (starvation bound — one chatty client cannot
    /// hold a worker forever).
    pub max_requests_per_conn: usize,
    /// Cap on a `POST` body; larger declared lengths get `413` without
    /// reading the body.
    pub max_body_bytes: usize,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        HttpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            acceptors: 1,
            workers: 4,
            queue_cap: 64,
            read_timeout: Duration::from_secs(2),
            max_requests_per_conn: 64,
            max_body_bytes: parse::DEFAULT_MAX_BODY,
        }
    }
}

/// One worker's bounded connection queue.
struct WorkerQueue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

struct Shared {
    tiles: Arc<TileServer>,
    cfg: HttpServerConfig,
    queues: Vec<WorkerQueue>,
    /// Acceptors stop accepting.
    stop: AtomicBool,
    /// Workers shed queued connections and exit on empty.
    draining: AtomicBool,
    /// Round-robin dispatch cursor.
    next: AtomicUsize,
}

/// Distinguishes concurrent server instances in thread names, so the
/// leak test can count exactly this server's threads via
/// `/proc/self/task/*/comm` even while other tests run in parallel.
static INSTANCE: AtomicU32 = AtomicU32::new(0);

/// The running front-end. Dropping it (or calling
/// [`shutdown`](HttpServer::shutdown)) runs the full drain protocol.
pub struct HttpServer {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
    instance: u32,
}

impl HttpServer {
    /// Bind and start accepting. Fails only on bind/clone errors,
    /// surfaced as [`LsgaError::Io`].
    pub fn start(tiles: Arc<TileServer>, cfg: HttpServerConfig) -> Result<HttpServer, LsgaError> {
        assert!(cfg.acceptors >= 1, "need at least one acceptor");
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.queue_cap >= 1, "queue capacity must be positive");
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed);

        let queues = (0..cfg.workers)
            .map(|_| WorkerQueue {
                deque: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            tiles,
            cfg,
            queues,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        });

        let mut acceptors = Vec::new();
        for i in 0..shared.cfg.acceptors {
            let l = listener.try_clone()?;
            let s = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("lh{instance}-a{i}"))
                .spawn(move || accept_loop(&l, &s))
                .map_err(LsgaError::from)?;
            acceptors.push(h);
        }
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers {
            let s = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("lh{instance}-w{i}"))
                .spawn(move || worker_loop(&s, i))
                .map_err(LsgaError::from)?;
            workers.push(h);
        }
        Ok(HttpServer {
            shared,
            acceptors,
            workers,
            addr,
            instance,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `lh{instance}-` prefix on every thread this server spawned.
    #[must_use]
    pub fn thread_prefix(&self) -> String {
        format!("lh{}-", self.instance)
    }

    /// Current depth of each worker queue (observability; racy by
    /// nature, exact under a quiesced server).
    #[must_use]
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|q| q.deque.lock().unwrap().len())
            .collect()
    }

    /// The tile server behind this front-end.
    #[must_use]
    pub fn tiles(&self) -> &Arc<TileServer> {
        &self.shared.tiles
    }

    /// Graceful shutdown: run the drain protocol and join every
    /// thread. Idempotent with `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        for q in &self.shared.queues {
            q.ready.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept connections until `stop`; dispatch each to a worker queue or
/// answer `503` inline when every queue is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                obs::incr(obs::Counter::HttpConnsAccepted);
                dispatch(conn, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Transient accept errors (e.g. ECONNABORTED): keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn dispatch(conn: TcpStream, shared: &Shared) {
    let n = shared.queues.len();
    let start = shared.next.fetch_add(1, Ordering::Relaxed) % n;
    for i in 0..n {
        let q = &shared.queues[(start + i) % n];
        let mut deque = q.deque.lock().unwrap();
        if deque.len() < shared.cfg.queue_cap {
            deque.push_back(conn);
            obs::record(obs::Hist::HttpQueueDepth, deque.len() as u64);
            drop(deque);
            q.ready.notify_one();
            return;
        }
    }
    // Every queue full: the acceptor answers so the overload never
    // consumes worker time.
    obs::incr(obs::Counter::HttpQueueRejections);
    respond_and_close(
        conn,
        shared,
        &HttpError {
            status: 503,
            source: LsgaError::Io("all request queues are full".to_string()),
        },
    );
}

/// Write one error response on a connection we are about to drop. The
/// `Retry-After` hint on a 503 comes from the tile server's live
/// queue-wait estimate, so a backed-up server tells clients to stay
/// away longer than an idle one.
fn respond_and_close(mut conn: TcpStream, shared: &Shared, e: &HttpError) {
    let _ = conn.set_write_timeout(Some(shared.cfg.read_timeout));
    let retry = retry_after_secs(shared.tiles.estimated_queue_wait());
    let bytes = error_response(e, retry).encode(false);
    count_response(e.status, bytes.len());
    let _ = conn.write_all(&bytes);
}

fn count_response(status: u16, bytes: usize) {
    let c = match status / 100 {
        2 => obs::Counter::HttpResponses2xx,
        4 => obs::Counter::HttpResponses4xx,
        _ => obs::Counter::HttpResponses5xx,
    };
    obs::incr(c);
    obs::add(obs::Counter::HttpBytesOut, bytes as u64);
}

fn worker_loop(shared: &Shared, idx: usize) {
    let q = &shared.queues[idx];
    loop {
        let conn = {
            let mut deque = q.deque.lock().unwrap();
            loop {
                if let Some(c) = deque.pop_front() {
                    break Some(c);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = q
                    .ready
                    .wait_timeout(deque, Duration::from_millis(25))
                    .unwrap();
                deque = guard;
            }
        };
        let Some(conn) = conn else { return };
        if shared.draining.load(Ordering::SeqCst) {
            obs::incr(obs::Counter::HttpShedShutdown);
            respond_and_close(
                conn,
                shared,
                &HttpError {
                    status: 503,
                    source: LsgaError::Io("server is shutting down".to_string()),
                },
            );
        } else {
            serve_conn(conn, shared);
        }
    }
}

/// Serve one connection: keep-alive loop with pipelining support (the
/// buffer carries bytes past the current request into the next read).
fn serve_conn(mut conn: TcpStream, shared: &Shared) {
    let cfg = &shared.cfg;
    let _ = conn.set_read_timeout(Some(cfg.read_timeout));
    let _ = conn.set_write_timeout(Some(cfg.read_timeout));
    let mut buf = ConnBuf::new();
    for _ in 0..cfg.max_requests_per_conn {
        let head = match buf.read_head(&mut conn) {
            Ok(Some(h)) => h,
            // Clean EOF / idle timeout between requests: close quietly.
            Ok(None) => return,
            Err(e) => {
                obs::incr(obs::Counter::HttpRequests);
                let bytes = error_response(&e, 1).encode(false);
                count_response(e.status, bytes.len());
                let _ = conn.write_all(&bytes);
                return;
            }
        };
        obs::incr(obs::Counter::HttpRequests);
        let (resp, keep_alive) = match parse::parse_head(&head) {
            Err(e) => (error_response(&e, 1), false),
            Ok(req) => {
                let wants_keep_alive = req.keep_alive;
                match execute(&req, &mut buf, &mut conn, shared) {
                    Ok(resp) => (resp, wants_keep_alive),
                    // 4xx/5xx close the connection: after a framing or
                    // routing error we cannot trust the byte stream.
                    // (These paths never carry a 503, so the backoff
                    // hint argument is inert here.)
                    Err(e) => (error_response(&e, 1), false),
                }
            }
        };
        let draining = shared.draining.load(Ordering::SeqCst);
        let keep_alive = keep_alive && !draining;
        let bytes = resp.encode(keep_alive);
        count_response(resp.status, bytes.len());
        if conn.write_all(&bytes).is_err() || !keep_alive {
            return;
        }
    }
}

/// Execute a parsed head against the tile server.
fn execute(
    req: &RawRequest,
    buf: &mut ConnBuf,
    conn: &mut TcpStream,
    shared: &Shared,
) -> HttpResult<Response> {
    match parse::route(req)? {
        Route::Tile {
            layer,
            kind,
            z,
            x,
            y,
            bin,
            fmt,
            policy,
        } => {
            if let Some(kind) = kind {
                // A kind-bearing path asserts what analytic the layer
                // runs; a mismatch means the named resource does not
                // exist, exactly like an out-of-range layer id.
                let actual = shared
                    .tiles
                    .layer_kind(layer)
                    .map_err(HttpError::from_lsga)?;
                if actual != kind {
                    return Err(HttpError::not_found(format!(
                        "layer {layer} serves {:?} tiles, not {:?}",
                        actual.name(),
                        kind.name()
                    )));
                }
            }
            let tile = match &policy {
                Some(p) => shared.tiles.get_tile_with_policy(layer, z, x, y, p),
                None if bin == 0 => shared.tiles.get_tile(layer, z, x, y),
                None => shared.tiles.get_tile_binned(layer, z, x, y, bin),
            }
            .map_err(HttpError::from_lsga)?;
            Ok(tile_response(&tile, fmt))
        }
        Route::IngestPoints { layer } => {
            let len = req.content_length()?.ok_or(HttpError {
                status: 411,
                source: LsgaError::InvalidParameter {
                    name: "content-length",
                    message: "POST /layers/{layer}/points requires Content-Length".to_string(),
                },
            })?;
            if len > shared.cfg.max_body_bytes {
                return Err(HttpError {
                    status: 413,
                    source: LsgaError::InvalidParameter {
                        name: "content-length",
                        message: format!(
                            "body of {len} bytes exceeds the {} byte cap",
                            shared.cfg.max_body_bytes
                        ),
                    },
                });
            }
            if len % 16 != 0 {
                return Err(HttpError::bad_request(format!(
                    "body must be little-endian (x, y) f64 pairs; {len} bytes is not a multiple of 16"
                )));
            }
            let body = buf.read_exact(conn, len)?;
            let points: Vec<Point> = body
                .chunks_exact(16)
                .map(|c| {
                    Point::new(
                        f64::from_le_bytes(c[..8].try_into().unwrap()),
                        f64::from_le_bytes(c[8..].try_into().unwrap()),
                    )
                })
                .collect();
            shared
                .tiles
                .insert_points(layer, &points)
                .map_err(HttpError::from_lsga)?;
            Ok(Response::new(200)
                .header("X-Lsga-Points", points.len())
                .body("text/plain; charset=utf-8", b"appended\n".to_vec()))
        }
        Route::Metrics => {
            let snap = obs::drain();
            Ok(Response::new(200).body("application/json", snap.to_json("http").into_bytes()))
        }
        Route::Health => Ok(Response::new(200).body("text/plain; charset=utf-8", b"ok\n".to_vec())),
    }
}

/// Buffered reader for one connection. Keeps leftover bytes between
/// requests so pipelined requests are served in order, and enforces the
/// head-size cap while the bytes arrive (a slowly-trickled giant head
/// is rejected at the cap, not buffered forever).
struct ConnBuf {
    buf: Vec<u8>,
}

impl ConnBuf {
    fn new() -> Self {
        ConnBuf { buf: Vec::new() }
    }

    /// Read until a complete head (terminated by an empty line) is
    /// buffered. Returns:
    /// - `Ok(Some(head))` — head bytes, terminator consumed;
    /// - `Ok(None)` — EOF or idle timeout with nothing buffered: the
    ///   peer simply went away between requests;
    /// - `Err(400)` — EOF mid-head (truncated request);
    /// - `Err(408)` — timeout mid-head (stalled request);
    /// - `Err(431)` — no terminator within [`parse::MAX_HEAD_BYTES`].
    fn read_head(&mut self, conn: &mut TcpStream) -> HttpResult<Option<Vec<u8>>> {
        loop {
            if let Some((head_len, consumed)) = find_head_end(&self.buf) {
                let head = self.buf[..head_len].to_vec();
                self.buf.drain(..consumed);
                return Ok(Some(head));
            }
            if self.buf.len() > parse::MAX_HEAD_BYTES {
                return Err(HttpError {
                    status: 431,
                    source: LsgaError::Parse {
                        line: 0,
                        message: format!("no end of head within {} bytes", parse::MAX_HEAD_BYTES),
                    },
                });
            }
            let mut chunk = [0u8; 4096];
            match conn.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::bad_request("connection closed mid-request-head"))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) && self.buf.is_empty() =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::io(e, "reading request head")),
            }
        }
    }

    /// Read exactly `n` body bytes (buffered leftovers first).
    fn read_exact(&mut self, conn: &mut TcpStream, n: usize) -> HttpResult<Vec<u8>> {
        while self.buf.len() < n {
            let mut chunk = [0u8; 16 * 1024];
            match conn.read(&mut chunk) {
                Ok(0) => {
                    return Err(HttpError::bad_request(format!(
                        "connection closed after {} of {n} body bytes",
                        self.buf.len()
                    )))
                }
                Ok(got) => self.buf.extend_from_slice(&chunk[..got]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::io(e, "reading request body")),
            }
        }
        let body = self.buf[..n].to_vec();
        self.buf.drain(..n);
        Ok(body)
    }
}

/// Locate the head terminator (first empty line). Returns
/// `(head_len, bytes_consumed)`; the head excludes the final newline
/// and the empty line. Handles CRLF, bare LF, and mixes.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let rest = &buf[i + 1..];
        if rest.first() == Some(&b'\n') {
            return Some((i, i + 2));
        }
        if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
            return Some((i, i + 3));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_scanner_handles_all_line_ending_mixes() {
        // CRLF throughout.
        let b = b"GET / HTTP/1.1\r\nHost: x\r\n\r\nrest";
        let (head, consumed) = find_head_end(b).unwrap();
        assert_eq!(&b[..head], b"GET / HTTP/1.1\r\nHost: x\r");
        assert_eq!(&b[consumed..], b"rest");
        // Bare LF throughout.
        let b = b"GET / HTTP/1.1\nHost: x\n\nrest";
        let (head, consumed) = find_head_end(b).unwrap();
        assert_eq!(&b[..head], b"GET / HTTP/1.1\nHost: x");
        assert_eq!(&b[consumed..], b"rest");
        // LF line then CRLF empty line.
        let b = b"GET / HTTP/1.1\n\r\nrest";
        let (head, consumed) = find_head_end(b).unwrap();
        assert_eq!(&b[..head], b"GET / HTTP/1.1");
        assert_eq!(&b[consumed..], b"rest");
        // No terminator yet.
        assert!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n").is_none());
        assert!(find_head_end(b"").is_none());
    }

    #[test]
    fn default_config_is_sane() {
        let c = HttpServerConfig::default();
        assert!(c.workers >= 1 && c.queue_cap >= 1 && c.acceptors >= 1);
        assert!(c.max_body_bytes >= 16);
    }
}
