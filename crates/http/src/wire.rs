//! Response encoding: status line, headers, and the two tile payload
//! formats.
//!
//! The f64 format is the bit-identity format: the body is exactly the
//! tile's row-major `f64` pixels, each little-endian, nothing else.
//! `tests/http_coherence.rs` decodes these bytes and compares them
//! `to_bits`-for-`to_bits` against [`lsga_serve::compute_tile_direct`],
//! so this module must never "helpfully" normalize, truncate, or
//! re-round a value.
//!
//! The u8 format trades that for 8× smaller payloads: pixels are
//! linearly quantized into `0..=255` between the tile's min and max,
//! which travel back in `X-Lsga-Min`/`X-Lsga-Max` headers (Rust's f64
//! `Display` round-trips exactly, so the client can dequantize with a
//! worst-case error of half a quantization step).

use crate::error::{reason, HttpError};
use crate::parse::PayloadFmt;
use lsga_serve::{Tile, TileTier};

/// A response under construction. `encode` produces the wire bytes.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    #[must_use]
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[must_use]
    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    #[must_use]
    pub fn body(mut self, content_type: &str, bytes: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = bytes;
        self
    }

    /// Serialize to wire bytes. `Content-Length` and `Connection` are
    /// emitted here so no call site can forget them; every response
    /// carries an explicit length (no chunked encoding, no implicit
    /// EOF framing) which is what makes pipelined reads unambiguous.
    #[must_use]
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(
            if keep_alive {
                "Connection: keep-alive\r\n"
            } else {
                "Connection: close\r\n"
            }
            .as_bytes(),
        );
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// The `X-Lsga-Tier` header value for a tier.
#[must_use]
pub fn tier_name(tier: &TileTier) -> &'static str {
    match tier {
        TileTier::Exact => "exact",
        TileTier::Sampled { .. } => "sampled",
        TileTier::Bounds { .. } => "bounds",
    }
}

/// Encode a tile into a 200 response in the negotiated format.
#[must_use]
pub fn tile_response(tile: &Tile, fmt: PayloadFmt) -> Response {
    let values = tile.grid.values();
    let px = (values.len() as f64).sqrt().round() as usize;
    let resp = Response::new(200)
        .header("X-Lsga-Tier", tier_name(&tile.tier))
        .header("X-Lsga-Px", px);
    match fmt {
        PayloadFmt::F64 => {
            let mut body = Vec::with_capacity(values.len() * 8);
            for v in values {
                body.extend_from_slice(&v.to_le_bytes());
            }
            resp.body(fmt.content_type(), body)
        }
        PayloadFmt::U8 => {
            let (min, max) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let scale = max - min;
            // Totality over extreme ranges. A *subnormal* scale is the
            // trap: `scale > 0.0` admits it, but `(v - min) / scale`
            // overflows to inf and `inf * 255.0 as u8` saturates every
            // pixel to 255 — the dequantized tile reads as max instead
            // of min. Any range narrower than one normal float is
            // below u8 resolution anyway, so it takes the constant-tile
            // encoding. A range *wider* than f64 (max − min overflows
            // to inf) quantizes in halved space, which cannot overflow
            // for finite min/max; `dequantize` mirrors the halving.
            let body: Vec<u8> = if scale >= f64::MIN_POSITIVE && scale.is_finite() {
                values
                    .iter()
                    .map(|&v| ((v - min) / scale * 255.0).round() as u8)
                    .collect()
            } else if scale.is_finite() || !(min.is_finite() && max.is_finite()) {
                // Constant (or sub-resolution, or degenerate non-finite)
                // tile: every pixel decodes to `min`.
                vec![0; values.len()]
            } else {
                let (hmin, hscale) = (min / 2.0, max / 2.0 - min / 2.0);
                values
                    .iter()
                    .map(|&v| ((v / 2.0 - hmin) / hscale * 255.0).round() as u8)
                    .collect()
            };
            resp.header("X-Lsga-Min", min)
                .header("X-Lsga-Max", max)
                .body(fmt.content_type(), body)
        }
    }
}

/// Round the admission controller's queue-wait estimate up to whole
/// seconds for a `Retry-After` header, clamped to `1..=8`: never tell
/// a client "0" (come back instantly — that is the overload), never
/// park one for longer than the estimate stays meaningful. An
/// unseeded estimate (zero) clamps to the 1-second floor.
#[must_use]
pub fn retry_after_secs(estimate: std::time::Duration) -> u64 {
    let ns = estimate.as_nanos().min(u128::from(u64::MAX)) as u64;
    ns.div_ceil(1_000_000_000).clamp(1, 8)
}

/// Encode an [`HttpError`] as a response. 503s advertise when to come
/// back via `retry_after` seconds (derive it with [`retry_after_secs`]
/// from the tile server's queue-wait estimate; it is re-clamped to
/// `1..=8` here so no call site can emit a nonsensical hint). The body
/// is the underlying error's `Display` so clients can see the actual
/// reason, not just a status code.
#[must_use]
pub fn error_response(e: &HttpError, retry_after: u64) -> Response {
    let mut resp = Response::new(e.status);
    if e.status == 503 {
        resp = resp.header("Retry-After", retry_after.clamp(1, 8));
    }
    let mut msg = e.source.to_string();
    msg.push('\n');
    resp.body("text/plain; charset=utf-8", msg.into_bytes())
}

/// Dequantize one u8 payload byte back to an f64 given the header
/// range. The inverse of the u8 encoding up to half a step; exposed so
/// tests and clients share one definition, including the halved-space
/// inverse for ranges whose width overflows f64.
#[must_use]
pub fn dequantize(q: u8, min: f64, max: f64) -> f64 {
    let scale = max - min;
    if scale >= f64::MIN_POSITIVE && scale.is_finite() {
        min + (q as f64 / 255.0) * scale
    } else if scale.is_finite() || !(min.is_finite() && max.is_finite()) {
        min
    } else {
        (min / 2.0 + (q as f64 / 255.0) * (max / 2.0 - min / 2.0)) * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::LsgaError;
    use lsga_serve::{Tile, TileCoord, TileKey};

    fn tile_with(values: Vec<f64>, tier: TileTier) -> Tile {
        let px = (values.len() as f64).sqrt() as usize;
        let spec = lsga_core::GridSpec::new(lsga_core::BBox::new(0.0, 0.0, 1.0, 1.0), px, px);
        Tile {
            key: TileKey {
                layer: 0,
                coord: TileCoord::new(0, 0, 0),
                bin: 0,
            },
            grid: lsga_core::DensityGrid::from_values(spec, values),
            tier,
        }
    }

    #[test]
    fn f64_payload_is_bit_exact() {
        let vals = vec![0.0, 1.5, -3.25, f64::MIN_POSITIVE];
        let t = tile_with(vals.clone(), TileTier::Exact);
        let r = tile_response(&t, PayloadFmt::F64);
        assert_eq!(r.status, 200);
        assert_eq!(r.body.len(), vals.len() * 8);
        for (chunk, v) in r.body.chunks_exact(8).zip(&vals) {
            let decoded = f64::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(decoded.to_bits(), v.to_bits());
        }
        assert!(r
            .headers
            .iter()
            .any(|(n, v)| n == "X-Lsga-Tier" && v == "exact"));
    }

    #[test]
    fn u8_payload_dequantizes_within_half_step() {
        let vals = vec![0.0, 0.1, 0.5, 1.0];
        let t = tile_with(vals.clone(), TileTier::Exact);
        let r = tile_response(&t, PayloadFmt::U8);
        let min: f64 = header(&r, "X-Lsga-Min").parse().unwrap();
        let max: f64 = header(&r, "X-Lsga-Max").parse().unwrap();
        assert_eq!(min, 0.0);
        assert_eq!(max, 1.0);
        let half_step = (max - min) / 255.0 / 2.0;
        for (&q, &v) in r.body.iter().zip(&vals) {
            assert!((dequantize(q, min, max) - v).abs() <= half_step + 1e-12);
        }
        // Endpoints are exact.
        assert_eq!(r.body[0], 0);
        assert_eq!(r.body[3], 255);
    }

    #[test]
    fn constant_tile_quantizes_to_zero_and_dequantizes_to_min() {
        let t = tile_with(vec![2.5; 4], TileTier::Exact);
        let r = tile_response(&t, PayloadFmt::U8);
        assert!(r.body.iter().all(|&q| q == 0));
        let min: f64 = header(&r, "X-Lsga-Min").parse().unwrap();
        let max: f64 = header(&r, "X-Lsga-Max").parse().unwrap();
        assert_eq!(dequantize(0, min, max), 2.5);
    }

    #[test]
    fn header_min_max_round_trip_through_display() {
        // Rust's f64 Display prints the shortest string that parses
        // back to the same bits — the u8 format depends on this.
        for v in [0.1f64, 1.0 / 3.0, 1e-300, 12345.678901234567] {
            let s = format!("{v}");
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn encode_frames_status_headers_and_length() {
        let r = Response::new(200).body("text/plain", b"hi".to_vec());
        let bytes = r.encode(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        let closed = String::from_utf8(Response::new(204).encode(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
        assert!(closed.contains("Content-Length: 0\r\n"));
    }

    #[test]
    fn error_responses_carry_reason_and_retry_after() {
        let e = HttpError {
            status: 503,
            source: LsgaError::Io("queue full".into()),
        };
        let r = error_response(&e, 3);
        assert_eq!(r.status, 503);
        assert_eq!(header(&r, "Retry-After"), "3");
        assert!(String::from_utf8(r.body.clone())
            .unwrap()
            .contains("queue full"));
        // Out-of-band hints are re-clamped at the encoder.
        assert_eq!(header(&error_response(&e, 0), "Retry-After"), "1");
        assert_eq!(header(&error_response(&e, 999), "Retry-After"), "8");
        let nf = error_response(&HttpError::not_found("no such tile"), 1);
        assert_eq!(nf.status, 404);
        assert!(!nf.headers.iter().any(|(n, _)| n == "Retry-After"));
    }

    #[test]
    fn retry_after_rounds_up_and_clamps() {
        use std::time::Duration;
        // Unseeded estimate → the 1-second floor, never 0.
        assert_eq!(retry_after_secs(Duration::ZERO), 1);
        assert_eq!(retry_after_secs(Duration::from_millis(1)), 1);
        // Partial seconds round up, not down.
        assert_eq!(retry_after_secs(Duration::from_millis(1500)), 2);
        assert_eq!(retry_after_secs(Duration::from_secs(2)), 2);
        assert_eq!(retry_after_secs(Duration::from_nanos(2_000_000_001)), 3);
        // Deep overload clamps to the 8-second ceiling.
        assert_eq!(retry_after_secs(Duration::from_secs(100)), 8);
        assert_eq!(retry_after_secs(Duration::from_secs(u64::MAX)), 8);
    }

    #[test]
    fn subnormal_scale_takes_the_constant_tile_encoding() {
        // Regression: a subnormal range made `(v - min) / scale`
        // overflow to inf and saturated every pixel to 255, so the
        // dequantized tile read as `max` instead of `min`.
        let min: f64 = 1.0e-308;
        let max = f64::from_bits(min.to_bits() + 1);
        let vals = vec![min, max, min, max];
        let scale = max - min;
        assert!(scale > 0.0 && scale < f64::MIN_POSITIVE, "setup: subnormal");
        let t = tile_with(vals, TileTier::Exact);
        let r = tile_response(&t, PayloadFmt::U8);
        assert!(r.body.iter().all(|&q| q == 0), "got {:?}", r.body);
        let hmin: f64 = header(&r, "X-Lsga-Min").parse().unwrap();
        let hmax: f64 = header(&r, "X-Lsga-Max").parse().unwrap();
        assert!((dequantize(0, hmin, hmax) - min).abs() <= scale);
    }

    #[test]
    fn overflowing_range_quantizes_in_halved_space() {
        let (min, max): (f64, f64) = (-1.6e308, 1.6e308);
        assert!((max - min).is_infinite(), "setup: range overflows");
        let vals = vec![min, 0.0, max, min];
        let t = tile_with(vals.clone(), TileTier::Exact);
        let r = tile_response(&t, PayloadFmt::U8);
        assert_eq!(r.body[0], 0);
        assert_eq!(r.body[2], 255);
        let hmin: f64 = header(&r, "X-Lsga-Min").parse().unwrap();
        let hmax: f64 = header(&r, "X-Lsga-Max").parse().unwrap();
        // Half a step of the (halved-space) quantization grid, scaled
        // back up: (max/2 − min/2)/255 · 2 / 2.
        let half_step = (hmax / 2.0 - hmin / 2.0) / 255.0;
        for (&q, &v) in r.body.iter().zip(&vals) {
            let d = dequantize(q, hmin, hmax);
            assert!(d.is_finite());
            assert!((d - v).abs() <= half_step * 1.0000001, "q={q} v={v} d={d}");
        }
    }

    fn header<'a>(r: &'a Response, name: &str) -> &'a str {
        r.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("missing header {name}"))
    }
}
