//! A minimal blocking HTTP/1.1 client — just enough to talk to
//! [`HttpServer`](crate::HttpServer) from tests and the bench load
//! generator, with decode helpers that are the official inverse of the
//! wire formats in [`crate::wire`].
//!
//! The response reader consumes the head byte-by-byte and then exactly
//! `Content-Length` body bytes, never over-reading, so multiple
//! responses on one keep-alive (or pipelined) connection can be read
//! back-to-back from the same stream.

use crate::wire::dequantize;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on a response head the client will buffer.
const MAX_RESPONSE_HEAD: usize = 64 * 1024;

/// A fully read response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// Header fields in wire order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Decode an `application/x-lsga-f64` body: row-major
    /// little-endian f64 pixels, bit-exact.
    #[must_use]
    pub fn decode_f64(&self) -> Vec<f64> {
        self.body
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Decode an `application/x-lsga-u8` body back to f64 pixels using
    /// the `X-Lsga-Min`/`X-Lsga-Max` range headers. `None` if the
    /// headers are absent or unparsable.
    #[must_use]
    pub fn decode_u8(&self) -> Option<Vec<f64>> {
        let min: f64 = self.header("x-lsga-min")?.parse().ok()?;
        let max: f64 = self.header("x-lsga-max")?.parse().ok()?;
        Some(self.body.iter().map(|&q| dequantize(q, min, max)).collect())
    }
}

/// Read one response from a stream. Stops exactly at the end of the
/// declared body so the stream stays positioned for the next response.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<ClientResponse> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        if r.read(&mut byte)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response-head",
            ));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_RESPONSE_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    }
    let text =
        std::str::from_utf8(&head).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (n, v) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad header line: {line:?}"),
            )
        })?;
        headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))
        })
        .transpose()?
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Open a connection with the given timeout applied to connect, read,
/// and write.
pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

/// Send raw request bytes on a fresh connection and read one response.
pub fn send(addr: SocketAddr, request: &[u8], timeout: Duration) -> io::Result<ClientResponse> {
    let mut stream = connect(addr, timeout)?;
    stream.write_all(request)?;
    read_response(&mut stream)
}

/// `GET {target}` on a fresh connection (`Connection: close`), with
/// optional extra headers.
pub fn get(
    addr: SocketAddr,
    target: &str,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: lsga\r\nConnection: close\r\n");
    for (n, v) in extra_headers {
        req.push_str(&format!("{n}: {v}\r\n"));
    }
    req.push_str("\r\n");
    send(addr, req.as_bytes(), timeout)
}

/// `POST {target}` with a binary body on a fresh connection.
pub fn post(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut req = format!(
        "POST {target} HTTP/1.1\r\nHost: lsga\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    send(addr, &req, timeout)
}

/// Encode a point batch as the `POST /layers/{layer}/points` body
/// format: little-endian (x, y) f64 pairs.
#[must_use]
pub fn encode_points(points: &[lsga_core::Point]) -> Vec<u8> {
    let mut body = Vec::with_capacity(points.len() * 16);
    for p in points {
        body.extend_from_slice(&p.x.to_le_bytes());
        body.extend_from_slice(&p.y.to_le_bytes());
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_a_framed_response_without_overreading() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhiHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let mut cursor = io::Cursor::new(&wire[..]);
        let first = read_response(&mut cursor).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, b"hi");
        assert_eq!(first.header("content-type"), Some("text/plain"));
        let second = read_response(&mut cursor).unwrap();
        assert_eq!(second.status, 404);
        assert!(second.body.is_empty());
    }

    #[test]
    fn malformed_responses_are_errors_not_panics() {
        for wire in [
            &b"garbage\r\n\r\n"[..],
            &b"HTTP/1.1\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nNo-Colon\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\n"[..],
        ] {
            let mut cursor = io::Cursor::new(wire);
            assert!(read_response(&mut cursor).is_err());
        }
        // Truncated body.
        let mut cursor = io::Cursor::new(&b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhi"[..]);
        assert!(read_response(&mut cursor).is_err());
    }

    #[test]
    fn point_batch_round_trips() {
        let pts = vec![
            lsga_core::Point::new(1.5, -2.25),
            lsga_core::Point::new(0.0, 4.0),
        ];
        let body = encode_points(&pts);
        assert_eq!(body.len(), 32);
        let decoded: Vec<f64> = body
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(decoded, vec![1.5, -2.25, 0.0, 4.0]);
    }
}
