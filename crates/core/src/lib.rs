//! # lsga-core
//!
//! Foundation types for the `lsga` large-scale geospatial analytics suite:
//! geometry primitives, the kernel-function family of the paper's Table 2,
//! density rasters, bandwidth selection, and a small dense linear solver.
//!
//! Everything in the suite is built on the [`Point`] / [`BBox`] geometry
//! types and the [`Kernel`] trait defined here. The kernel definitions
//! follow Table 2 of Chan et al., *Large-scale Geospatial Analytics:
//! Problems, Challenges, and Opportunities* (SIGMOD-Companion 2023)
//! verbatim, extended with the triangular / cosine / exponential kernels
//! that the paper's Section 2.4 lists as future-work targets.

pub mod bandwidth;
pub mod error;
pub mod grid;
pub mod kernel;
pub mod linalg;
pub mod par;
pub mod point;
pub mod soa;
pub mod util;

pub use bandwidth::{scott_bandwidth, silverman_bandwidth};
pub use error::{LsgaError, Result};
pub use grid::{DensityGrid, GridSpec, SpaceTimeGrid};
pub use kernel::{
    AnyKernel, Cosine, Epanechnikov, Exponential, Gaussian, Kernel, KernelKind, PolyKernel,
    Quartic, Triangular, Uniform,
};
pub use par::{par_for_each_chunk, par_map, par_map_rows, par_reduce, Threads};
pub use point::{BBox, Point, TimedPoint};
pub use soa::PointsSoA;
