//! Bandwidth selection rules.
//!
//! The paper (§2.1) notes that the clustered range of a K-function plot can
//! guide the KDV bandwidth; that workflow lives in `lsga-kfunc`. This
//! module provides the classical data-driven rules of thumb used by the
//! packages the paper surveys (spatstat, QGIS, scikit-learn) so a KDV can
//! be produced without a prior K-function pass.

use crate::point::Point;
use crate::util::{iqr, sample_std};

/// Silverman's rule of thumb for 2-D point data.
///
/// Applies the univariate rule
/// `h_dim = 0.9 · min(σ, IQR/1.34) · n^(−1/5)` to each coordinate and
/// returns the geometric mean of the two, giving one isotropic bandwidth
/// as the paper's kernels (Table 2) expect. Returns `None` for fewer than
/// 2 points or degenerate (zero-spread) data.
pub fn silverman_bandwidth(points: &[Point]) -> Option<f64> {
    per_dim_rule(points, |sigma, iqr_v, n| {
        let spread = if iqr_v > 0.0 {
            sigma.min(iqr_v / 1.34)
        } else {
            sigma
        };
        0.9 * spread * n.powf(-0.2)
    })
}

/// Scott's rule for 2-D point data: `h_dim = σ_dim · n^(−1/6)` per
/// dimension (d = 2 gives exponent −1/(d+4) = −1/6), combined as the
/// geometric mean. Returns `None` for fewer than 2 points or zero spread.
pub fn scott_bandwidth(points: &[Point]) -> Option<f64> {
    per_dim_rule(points, |sigma, _iqr, n| sigma * n.powf(-1.0 / 6.0))
}

fn per_dim_rule(points: &[Point], rule: impl Fn(f64, f64, f64) -> f64) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let n = points.len() as f64;
    let hx = rule(sample_std(&xs), iqr(&xs), n);
    let hy = rule(sample_std(&ys), iqr(&ys), n);
    if hx <= 0.0 || hy <= 0.0 {
        return None;
    }
    Some((hx * hy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_points(n: usize) -> Vec<Point> {
        // Deterministic pseudo-spread: a coarse lattice walk.
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.731).sin() * 10.0, (f * 0.517).cos() * 10.0)
            })
            .collect()
    }

    #[test]
    fn silverman_positive_and_shrinks_with_n() {
        let small = silverman_bandwidth(&spread_points(50)).unwrap();
        let large = silverman_bandwidth(&spread_points(5000)).unwrap();
        assert!(small > 0.0 && large > 0.0);
        assert!(large < small, "bandwidth must shrink as n grows");
    }

    #[test]
    fn scott_positive() {
        let b = scott_bandwidth(&spread_points(100)).unwrap();
        assert!(b > 0.0);
    }

    #[test]
    fn degenerate_data_yields_none() {
        assert!(silverman_bandwidth(&[]).is_none());
        assert!(silverman_bandwidth(&[Point::new(1.0, 1.0)]).is_none());
        let same = vec![Point::new(2.0, 3.0); 10];
        assert!(silverman_bandwidth(&same).is_none());
        assert!(scott_bandwidth(&same).is_none());
    }

    #[test]
    fn scales_with_data_spread() {
        let tight: Vec<Point> = spread_points(200)
            .iter()
            .map(|p| Point::new(p.x * 0.01, p.y * 0.01))
            .collect();
        let wide = spread_points(200);
        let bt = silverman_bandwidth(&tight).unwrap();
        let bw = silverman_bandwidth(&wide).unwrap();
        assert!(
            (bw / bt - 100.0).abs() < 1.0,
            "bandwidth should scale linearly"
        );
    }
}
