//! Deterministic data-parallel execution on scoped threads.
//!
//! Every analytic in the suite is pixel- or point-parallel: the output
//! decomposes into independent slots (grid rows, point chunks,
//! permutation replicates) that can be computed on any thread in any
//! order. This module is the one shared harness for that pattern,
//! replacing the per-crate hand-rolled thread scaffolding.
//!
//! # Determinism contract
//!
//! Parallel output is **bit-identical** to sequential output, for every
//! thread count. Three rules make that hold:
//!
//! 1. **Fixed decomposition.** Work is split into chunks whose
//!    boundaries are a pure function of the item count and chunk size —
//!    never of the thread count, timing, or scheduling order.
//! 2. **Single-writer slots.** Each output slot (row, chunk, element)
//!    is written by exactly one task. Threads *claim* chunks dynamically
//!    off a shared atomic counter (cheap work stealing — a fast thread
//!    takes more chunks), but which thread computes a chunk never
//!    affects what is computed.
//! 3. **Ordered reduction.** [`par_reduce`] folds per-chunk partials in
//!    chunk-index order after all chunks complete, so floating-point
//!    reduction order matches a sequential left fold over the chunks.
//!
//! With one thread (or zero spawned workers) the primitives degrade to
//! plain sequential loops over the same chunk decomposition.
//!
//! # Thread-count configuration
//!
//! [`Threads`] resolves the worker count in this order: an explicit
//! count ([`Threads::exact`]) wins; otherwise the `LSGA_THREADS`
//! environment variable (if set to a positive integer); otherwise
//! [`std::thread::available_parallelism`]. Benchmarks use `exact` to
//! sweep thread counts; operators use `LSGA_THREADS` to cap a
//! deployment without recompiling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count configuration for the `par_*` primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads {
    count: NonZeroUsize,
}

impl Threads {
    /// Resolve from the environment: `LSGA_THREADS` if set to a positive
    /// integer, else [`std::thread::available_parallelism`] (falling
    /// back to 1 if even that is unavailable).
    pub fn auto() -> Self {
        if let Ok(v) = std::env::var("LSGA_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Self::exact(n);
                }
            }
        }
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::exact(n)
    }

    /// Exactly `n` workers (clamped up to 1).
    pub fn exact(n: usize) -> Self {
        Threads {
            count: NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"),
        }
    }

    /// The configured worker count.
    pub fn get(self) -> usize {
        self.count.get()
    }

    /// Workers actually worth spawning for `n_tasks` claimable tasks.
    fn for_tasks(self, n_tasks: usize) -> usize {
        self.get().min(n_tasks.max(1))
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

/// Number of chunks for `n` items at `chunk_size` (pure; the shared
/// fixed decomposition).
fn n_chunks(n: usize, chunk_size: usize) -> usize {
    debug_assert!(chunk_size > 0);
    n.div_ceil(chunk_size)
}

/// Run `work(chunk_index)` for every chunk index in `0..n_chunks`,
/// distributing chunks over `threads` via an atomic claim counter.
/// `work` must only touch state owned by its chunk index.
fn dispatch_chunks<F: Fn(usize) + Sync>(n_chunks: usize, threads: Threads, work: F) {
    if n_chunks == 0 {
        return;
    }
    let workers = threads.for_tasks(n_chunks);
    if workers <= 1 {
        for c in 0..n_chunks {
            work(c);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = &work;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                work(c);
            });
        }
    });
}

/// Apply `f(start_index, chunk)` to every `chunk_size`-sized chunk of
/// `data` in parallel. `start_index` is the offset of the chunk's first
/// element in `data`. The chunk decomposition is fixed (rule 1), each
/// element belongs to exactly one chunk (rule 2), so the result is
/// bit-identical to the sequential loop for any thread count.
pub fn par_for_each_chunk<T, F>(data: &mut [T], chunk_size: usize, threads: Threads, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n = data.len();
    let chunks = n_chunks(n, chunk_size);
    if chunks == 0 {
        return;
    }
    // Pre-slice into non-overlapping chunks so each task owns its slot.
    let mut slots: Vec<Option<(usize, &mut [T])>> = Vec::with_capacity(chunks);
    let mut rest = data;
    let mut start = 0;
    while !rest.is_empty() {
        let take = chunk_size.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        slots.push(Some((start, head)));
        start += take;
        rest = tail;
    }
    type Cell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;
    let cells: Vec<Cell<'_, T>> = slots.into_iter().map(std::sync::Mutex::new).collect();
    dispatch_chunks(chunks, threads, |c| {
        let (chunk_start, chunk) = cells[c]
            .lock()
            .expect("chunk cell poisoned")
            .take()
            .expect("chunk claimed twice");
        f(chunk_start, chunk);
    });
}

/// Apply `f(row_index, row)` to every `row_len`-sized row of a
/// row-major buffer in parallel — the natural shape for raster
/// analytics (`DensityGrid::values_mut()` with `row_len = nx`, or a
/// `SpaceTimeGrid` slice). `values.len()` must be a multiple of
/// `row_len`.
pub fn par_map_rows<F>(values: &mut [f64], row_len: usize, threads: Threads, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert!(
        values.len().is_multiple_of(row_len),
        "buffer length {} not a multiple of row length {}",
        values.len(),
        row_len
    );
    par_for_each_chunk(values, row_len, threads, |start, row| {
        f(start / row_len, row);
    });
}

/// Compute `f(i)` for `i in 0..n` in parallel and collect the results
/// in index order. Chunked claiming (`chunk_size` items per claim)
/// amortizes scheduling overhead for cheap `f`.
pub fn par_map<T, F>(n: usize, chunk_size: usize, threads: Threads, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    par_for_each_chunk(&mut out, chunk_size, threads, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + off));
        }
    });
    out.into_iter()
        .map(|v| v.expect("par_map slot unfilled"))
        .collect()
}

/// Map every index chunk `map(range)` in parallel, then fold the
/// per-chunk partials **in chunk-index order** (rule 3):
/// `fold(fold(fold(init, r₀), r₁), …)`. Floating-point accumulation is
/// therefore identical to a sequential chunked left fold, independent
/// of the thread count.
pub fn par_reduce<A, R, M, F>(
    n: usize,
    chunk_size: usize,
    threads: Threads,
    init: A,
    map: M,
    mut fold: F,
) -> A
where
    R: Send,
    M: Fn(std::ops::Range<usize>) -> R + Sync,
    F: FnMut(A, R) -> A,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks = n_chunks(n, chunk_size);
    let partials: Vec<R> = par_map(chunks, 1, threads, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(n);
        map(start..end)
    });
    let mut acc = init;
    for r in partials {
        acc = fold(acc, r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_exact_clamps_zero() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
    }

    #[test]
    fn threads_auto_is_positive() {
        assert!(Threads::auto().get() >= 1);
    }

    #[test]
    fn for_each_chunk_covers_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut data = vec![0u32; 1003];
            par_for_each_chunk(&mut data, 17, Threads::exact(threads), |start, chunk| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v += (start + off) as u32 + 1;
                }
            });
            let want: Vec<u32> = (1..=1003).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn for_each_chunk_empty_and_tiny() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_chunk(&mut empty, 4, Threads::exact(8), |_, _| panic!("no chunks"));
        let mut one = vec![5u8];
        par_for_each_chunk(&mut one, 100, Threads::exact(8), |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 6;
        });
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn map_rows_passes_row_indices() {
        for threads in [1, 3, 16] {
            let (nx, ny) = (7, 11);
            let mut values = vec![0.0; nx * ny];
            par_map_rows(&mut values, nx, Threads::exact(threads), |iy, row| {
                assert_eq!(row.len(), nx);
                for (ix, v) in row.iter_mut().enumerate() {
                    *v = (iy * nx + ix) as f64;
                }
            });
            let want: Vec<f64> = (0..nx * ny).map(|i| i as f64).collect();
            assert_eq!(values, want, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn map_rows_rejects_ragged_buffer() {
        let mut values = vec![0.0; 10];
        par_map_rows(&mut values, 3, Threads::exact(1), |_, _| {});
    }

    #[test]
    fn map_collects_in_index_order() {
        for threads in [1, 2, 5, 32] {
            let got = par_map(100, 7, Threads::exact(threads), |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(par_map(0, 4, Threads::exact(4), |i| i).is_empty());
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on association order: catches any
        // violation of the ordered-fold rule.
        let data: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.7153).sin() * 1e10 + 1e-7)
            .collect();
        let reduce = |threads: usize| {
            par_reduce(
                data.len(),
                64,
                Threads::exact(threads),
                0.0f64,
                |range| data[range].iter().sum::<f64>(),
                |acc, part: f64| acc + part,
            )
        };
        let reference = reduce(1);
        for threads in [2, 3, 8, 64] {
            let got = reduce(threads);
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn reduce_handles_empty_input() {
        let got = par_reduce(
            0,
            8,
            Threads::exact(4),
            42u64,
            |_range| 1u64,
            |acc, p| acc + p,
        );
        assert_eq!(got, 42);
    }

    #[test]
    fn thread_counts_exceeding_work_items() {
        let mut data = vec![1u64; 3];
        par_for_each_chunk(&mut data, 1, Threads::exact(100), |start, chunk| {
            chunk[0] += start as u64;
        });
        assert_eq!(data, vec![1, 2, 3]);
    }
}
