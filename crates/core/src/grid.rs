//! Density rasters: the `X × Y` pixel grids of the paper's Definition 1
//! and their `X × Y × T` spatiotemporal extension (STKDV, §2.2).

use crate::point::{BBox, Point};

/// Geometry of a raster: a bounding box divided into `nx × ny` pixels.
///
/// Pixel `(ix, iy)` covers
/// `[min_x + ix·dx, min_x + (ix+1)·dx) × [min_y + iy·dy, min_y + (iy+1)·dy)`
/// and the density is evaluated at the pixel **centre**, matching how the
/// heatmap tools the paper surveys rasterize (QGIS, LIBKDV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    pub bbox: BBox,
    pub nx: usize,
    pub ny: usize,
}

impl GridSpec {
    /// Create a grid spec. Panics if either dimension is zero or the box
    /// is empty.
    pub fn new(bbox: BBox, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(!bbox.is_empty(), "grid bbox must be non-empty");
        GridSpec { bbox, nx, ny }
    }

    /// Square-ish grid: `nx` pixels across, `ny` chosen to keep pixels as
    /// close to square as the box aspect allows (at least one).
    pub fn with_width(bbox: BBox, nx: usize) -> Self {
        assert!(nx > 0, "grid width must be positive");
        let aspect = if bbox.width() > 0.0 {
            bbox.height() / bbox.width()
        } else {
            1.0
        };
        let ny = ((nx as f64) * aspect).round().max(1.0) as usize;
        GridSpec::new(bbox, nx, ny)
    }

    /// Pixel width.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.bbox.width() / self.nx as f64
    }

    /// Pixel height.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.bbox.height() / self.ny as f64
    }

    /// Total number of pixels `X × Y`.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the grid has no pixels (never: dimensions are positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of pixel `(ix, iy)`.
    #[inline]
    pub fn pixel_center(&self, ix: usize, iy: usize) -> Point {
        debug_assert!(ix < self.nx && iy < self.ny);
        Point::new(
            self.bbox.min_x + (ix as f64 + 0.5) * self.dx(),
            self.bbox.min_y + (iy as f64 + 0.5) * self.dy(),
        )
    }

    /// X coordinate of the centre of pixel column `ix`.
    #[inline]
    pub fn col_x(&self, ix: usize) -> f64 {
        self.bbox.min_x + (ix as f64 + 0.5) * self.dx()
    }

    /// Y coordinate of the centre of pixel row `iy`.
    #[inline]
    pub fn row_y(&self, iy: usize) -> f64 {
        self.bbox.min_y + (iy as f64 + 0.5) * self.dy()
    }

    /// Pixel containing `p`, clamped to the grid (points on/outside the
    /// max edge map to the last pixel).
    #[inline]
    pub fn pixel_of(&self, p: &Point) -> (usize, usize) {
        let fx = (p.x - self.bbox.min_x) / self.dx();
        let fy = (p.y - self.bbox.min_y) / self.dy();
        let ix = (fx.max(0.0) as usize).min(self.nx - 1);
        let iy = (fy.max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Row-major linear index of pixel `(ix, iy)`.
    #[inline]
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }
}

/// A computed density raster (the output of every KDV/IDW/Kriging variant).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityGrid {
    spec: GridSpec,
    values: Vec<f64>,
}

impl DensityGrid {
    /// Zero-initialised grid.
    pub fn zeros(spec: GridSpec) -> Self {
        DensityGrid {
            spec,
            values: vec![0.0; spec.len()],
        }
    }

    /// Wrap precomputed values. Panics if the length mismatches the spec.
    pub fn from_values(spec: GridSpec, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), spec.len(), "value buffer length mismatch");
        DensityGrid { spec, values }
    }

    /// The grid geometry.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Value at pixel `(ix, iy)`.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.values[self.spec.index(ix, iy)]
    }

    /// Set the value at pixel `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        let i = self.spec.index(ix, iy);
        self.values[i] = v;
    }

    /// Add `v` to pixel `(ix, iy)`.
    #[inline]
    pub fn add(&mut self, ix: usize, iy: usize, v: f64) {
        let i = self.spec.index(ix, iy);
        self.values[i] += v;
    }

    /// Raw row-major values (row `iy` at `values[iy*nx .. (iy+1)*nx]`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// One row of pixels as a slice.
    #[inline]
    pub fn row(&self, iy: usize) -> &[f64] {
        let nx = self.spec.nx;
        &self.values[iy * nx..(iy + 1) * nx]
    }

    /// Mutable row of pixels.
    #[inline]
    pub fn row_mut(&mut self, iy: usize) -> &mut [f64] {
        let nx = self.spec.nx;
        &mut self.values[iy * nx..(iy + 1) * nx]
    }

    /// Maximum density value. Total: a zero-length grid (a [`GridSpec`]
    /// built from literal zero dims) reports `0.0`, not `-inf`.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum density value. Total: a zero-length grid reports `0.0`,
    /// not `+inf`.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Pixel `(ix, iy)` holding the maximum value (first occurrence).
    /// Total: a zero-length grid reports `(0, 0)` instead of panicking.
    pub fn argmax(&self) -> (usize, usize) {
        if self.values.is_empty() {
            return (0, 0);
        }
        let mut best = 0;
        for (i, v) in self.values.iter().enumerate() {
            if *v > self.values[best] {
                best = i;
            }
        }
        (best % self.spec.nx, best / self.spec.nx)
    }

    /// World coordinates of the hottest pixel centre.
    pub fn hotspot(&self) -> Point {
        let (ix, iy) = self.argmax();
        self.spec.pixel_center(ix, iy)
    }

    /// Sum of all pixel values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest absolute difference against another grid of the same spec.
    ///
    /// The `L∞` error metric used throughout the approximation-quality
    /// experiments (paper Eq. 6–7 guarantees).
    pub fn linf_diff(&self, other: &DensityGrid) -> f64 {
        assert_eq!(self.spec, other.spec, "grid spec mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest relative difference `|a−b| / max(|b|, floor)` against a
    /// reference grid; `floor` guards pixels where the reference is ~0.
    pub fn rel_diff(&self, reference: &DensityGrid, floor: f64) -> f64 {
        assert_eq!(self.spec, reference.spec, "grid spec mismatch");
        self.values
            .iter()
            .zip(&reference.values)
            .map(|(a, b)| (a - b).abs() / b.abs().max(floor))
            .fold(0.0, f64::max)
    }

    /// Iterate `(ix, iy, centre, value)` over all pixels.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (usize, usize, Point, f64)> + '_ {
        let spec = self.spec;
        self.values.iter().enumerate().map(move |(i, v)| {
            let ix = i % spec.nx;
            let iy = i / spec.nx;
            (ix, iy, spec.pixel_center(ix, iy), *v)
        })
    }

    /// Scale every pixel by `factor` (e.g. the normalization constant `w`
    /// of Eq. 1).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Add another grid of the same spec pixel-wise (accumulating
    /// partial densities, e.g. per-month layers).
    pub fn add_grid(&mut self, other: &DensityGrid) {
        assert_eq!(self.spec, other.spec, "grid spec mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Pixel-wise difference `self − other`: the change-detection map
    /// between two periods (positive = density gained).
    pub fn diff_grid(&self, other: &DensityGrid) -> DensityGrid {
        assert_eq!(self.spec, other.spec, "grid spec mismatch");
        DensityGrid {
            spec: self.spec,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// The `q`-quantile of the pixel values (`q ∈ [0, 1]`,
    /// nearest-rank). Useful for thresholding "hotspot" pixels (e.g. the
    /// top 5% of density).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }
}

/// An `X × Y × T` spatiotemporal raster (output of STKDV).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceTimeGrid {
    spec: GridSpec,
    /// Centres of the T temporal bins.
    times: Vec<f64>,
    /// Layout: time-major, each time slice row-major.
    values: Vec<f64>,
}

impl SpaceTimeGrid {
    /// Zero-initialised spatiotemporal grid with `nt` evenly spaced time
    /// slices across `[t_min, t_max]` (slice centres, like pixel centres).
    pub fn zeros(spec: GridSpec, t_min: f64, t_max: f64, nt: usize) -> Self {
        assert!(nt > 0, "need at least one time slice");
        assert!(t_max >= t_min, "inverted time range");
        let dt = (t_max - t_min) / nt as f64;
        let times = (0..nt).map(|i| t_min + (i as f64 + 0.5) * dt).collect();
        SpaceTimeGrid {
            spec,
            times,
            values: vec![0.0; spec.len() * nt],
        }
    }

    /// The spatial geometry shared by all slices.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of time slices.
    #[inline]
    pub fn nt(&self) -> usize {
        self.times.len()
    }

    /// Centre time of slice `it`.
    #[inline]
    pub fn time(&self, it: usize) -> f64 {
        self.times[it]
    }

    /// All slice-centre times.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Value at `(ix, iy, it)`.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize, it: usize) -> f64 {
        self.values[it * self.spec.len() + self.spec.index(ix, iy)]
    }

    /// Set the value at `(ix, iy, it)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, it: usize, v: f64) {
        let i = it * self.spec.len() + self.spec.index(ix, iy);
        self.values[i] = v;
    }

    /// Copy time slice `it` out as a standalone [`DensityGrid`]
    /// (e.g. to render Fig. 4's per-month heatmaps).
    pub fn slice(&self, it: usize) -> DensityGrid {
        let n = self.spec.len();
        DensityGrid::from_values(self.spec, self.values[it * n..(it + 1) * n].to_vec())
    }

    /// Mutable access to the raw buffer of slice `it` (row-major).
    pub fn slice_mut(&mut self, it: usize) -> &mut [f64] {
        let n = self.spec.len();
        &mut self.values[it * n..(it + 1) * n]
    }

    /// Largest absolute difference against another grid of the same shape.
    pub fn linf_diff(&self, other: &SpaceTimeGrid) -> f64 {
        assert_eq!(self.spec, other.spec);
        assert_eq!(self.times.len(), other.times.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 10.0, 5.0), 10, 5)
    }

    #[test]
    fn pixel_geometry() {
        let s = spec();
        assert_eq!(s.dx(), 1.0);
        assert_eq!(s.dy(), 1.0);
        assert_eq!(s.len(), 50);
        assert_eq!(s.pixel_center(0, 0), Point::new(0.5, 0.5));
        assert_eq!(s.pixel_center(9, 4), Point::new(9.5, 4.5));
        assert_eq!(s.col_x(3), 3.5);
        assert_eq!(s.row_y(2), 2.5);
    }

    #[test]
    fn pixel_of_clamps() {
        let s = spec();
        assert_eq!(s.pixel_of(&Point::new(0.5, 0.5)), (0, 0));
        assert_eq!(s.pixel_of(&Point::new(9.99, 4.99)), (9, 4));
        assert_eq!(s.pixel_of(&Point::new(10.0, 5.0)), (9, 4)); // max edge
        assert_eq!(s.pixel_of(&Point::new(-3.0, 99.0)), (0, 4)); // outside
    }

    #[test]
    fn with_width_respects_aspect() {
        let s = GridSpec::with_width(BBox::new(0.0, 0.0, 100.0, 50.0), 200);
        assert_eq!(s.nx, 200);
        assert_eq!(s.ny, 100);
        let sq = GridSpec::with_width(BBox::new(0.0, 0.0, 10.0, 10.0), 32);
        assert_eq!(sq.ny, 32);
    }

    #[test]
    fn density_grid_basics() {
        let mut g = DensityGrid::zeros(spec());
        g.set(3, 2, 7.5);
        g.add(3, 2, 0.5);
        assert_eq!(g.at(3, 2), 8.0);
        assert_eq!(g.max(), 8.0);
        assert_eq!(g.min(), 0.0);
        assert_eq!(g.argmax(), (3, 2));
        assert_eq!(g.hotspot(), Point::new(3.5, 2.5));
        assert_eq!(g.sum(), 8.0);
        g.scale(0.5);
        assert_eq!(g.at(3, 2), 4.0);
    }

    #[test]
    fn density_grid_rows() {
        let mut g = DensityGrid::zeros(spec());
        g.row_mut(1).iter_mut().for_each(|v| *v = 2.0);
        assert_eq!(g.row(1), &[2.0; 10]);
        assert_eq!(g.row(0), &[0.0; 10]);
        assert_eq!(g.at(7, 1), 2.0);
    }

    #[test]
    fn linf_and_rel_diff() {
        let mut a = DensityGrid::zeros(spec());
        let mut b = DensityGrid::zeros(spec());
        a.set(0, 0, 1.0);
        b.set(0, 0, 1.1);
        b.set(5, 3, 0.2);
        assert!((a.linf_diff(&b) - 0.2).abs() < 1e-12);
        // rel diff at (0,0): 0.1/1.1; at (5,3): 0.2/floor
        assert!((a.rel_diff(&b, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn iter_pixels_covers_grid() {
        let g = DensityGrid::zeros(spec());
        let v: Vec<_> = g.iter_pixels().collect();
        assert_eq!(v.len(), 50);
        assert_eq!(v[0].2, Point::new(0.5, 0.5));
        assert_eq!(v[49].2, Point::new(9.5, 4.5));
    }

    #[test]
    fn space_time_grid() {
        let mut st = SpaceTimeGrid::zeros(spec(), 0.0, 10.0, 5);
        assert_eq!(st.nt(), 5);
        assert_eq!(st.time(0), 1.0);
        assert_eq!(st.time(4), 9.0);
        st.set(2, 1, 3, 4.0);
        assert_eq!(st.at(2, 1, 3), 4.0);
        let slice = st.slice(3);
        assert_eq!(slice.at(2, 1), 4.0);
        assert_eq!(st.slice(2).sum(), 0.0);
        st.slice_mut(2)[0] = 1.0;
        assert_eq!(st.at(0, 0, 2), 1.0);
    }

    #[test]
    fn grid_arithmetic() {
        let mut a = DensityGrid::zeros(spec());
        let mut b = DensityGrid::zeros(spec());
        a.set(1, 1, 3.0);
        b.set(1, 1, 1.0);
        b.set(2, 2, 5.0);
        let d = a.diff_grid(&b);
        assert_eq!(d.at(1, 1), 2.0);
        assert_eq!(d.at(2, 2), -5.0);
        a.add_grid(&b);
        assert_eq!(a.at(1, 1), 4.0);
        assert_eq!(a.at(2, 2), 5.0);
    }

    #[test]
    fn quantiles() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 10.0, 1.0), 10, 1);
        let g = DensityGrid::from_values(spec, (0..10).map(f64::from).collect());
        assert_eq!(g.quantile(0.0), 0.0);
        assert_eq!(g.quantile(1.0), 9.0);
        assert_eq!(g.quantile(0.5), 5.0); // nearest rank of 4.5
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_values_checks_len() {
        let _ = DensityGrid::from_values(spec(), vec![0.0; 3]);
    }

    #[test]
    fn extrema_are_total_on_zero_length_grids() {
        // GridSpec::new rejects zero dims, but the fields are public,
        // so zero-length grids exist; the extrema must stay total on
        // them instead of reporting ∓inf or panicking.
        let empty = GridSpec {
            bbox: BBox::new(0.0, 0.0, 1.0, 1.0),
            nx: 0,
            ny: 0,
        };
        let g = DensityGrid::zeros(empty);
        assert_eq!(g.values().len(), 0);
        assert_eq!(g.max(), 0.0);
        assert_eq!(g.min(), 0.0);
        assert_eq!(g.argmax(), (0, 0));
    }

    #[test]
    fn extrema_on_single_pixel_grid() {
        let one = GridSpec::new(BBox::new(0.0, 0.0, 1.0, 1.0), 1, 1);
        let mut g = DensityGrid::zeros(one);
        g.set(0, 0, -2.5);
        assert_eq!(g.max(), -2.5);
        assert_eq!(g.min(), -2.5);
        assert_eq!(g.argmax(), (0, 0));
        assert_eq!(g.hotspot(), Point::new(0.5, 0.5));
    }
}
