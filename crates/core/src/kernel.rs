//! Kernel functions (paper Table 2, plus the Section 2.4 extensions).
//!
//! A kernel `K(q, p)` maps the distance between a query location `q` and a
//! data point `p` to a non-negative contribution; the kernel density value
//! of Eq. 1 is `F_P(q) = Σ_p w · K(q, p)`. Table 2 of the paper defines the
//! uniform, Epanechnikov, quartic, and Gaussian kernels; Section 2.4 names
//! the triangular, cosine, and exponential kernels as the ones famous
//! packages additionally support, so the suite implements all seven.
//!
//! Two traits organize them:
//!
//! * [`Kernel`] — everything the generic algorithms need: evaluation from a
//!   (squared) distance, the exact support radius for finite-support
//!   kernels, and an effective pruning radius for infinite-support ones.
//! * [`PolyKernel`] — the polynomial subfamily (uniform / Epanechnikov /
//!   quartic), whose value is a polynomial in `d²`. The SLAM sweep-line and
//!   SAFE multi-bandwidth algorithms (computational-sharing family,
//!   paper §2.2) rely on this structure.

/// A radially symmetric kernel function with bandwidth `b`.
///
/// Implementations must be cheap to copy and thread-safe: the parallel and
/// distributed executors copy kernels into every worker.
pub trait Kernel: Copy + Send + Sync + 'static {
    /// The bandwidth parameter `b` of the paper's Table 2.
    fn bandwidth(&self) -> f64;

    /// Kernel value given the *squared* distance `d²` between `q` and `p`.
    ///
    /// Working in squared distances lets finite-support kernels skip the
    /// `sqrt` entirely, which matters in the `O(X·Y·n)` naive loops.
    fn eval_sq(&self, d2: f64) -> f64;

    /// Kernel value given the distance `d`.
    #[inline]
    fn eval(&self, d: f64) -> f64 {
        self.eval_sq(d * d)
    }

    /// The kernel formula at `d²` **without** the support test.
    ///
    /// Inside the support this is bit-identical to [`Kernel::eval_sq`];
    /// outside it may return any finite value (including negative ones —
    /// e.g. `1 − d²/b²` keeps decreasing past `b`). The branch-free
    /// microkernels in [`crate::soa`] multiply it by a `{0.0, 1.0}` mask
    /// instead of branching, which is why the out-of-support value never
    /// has to be correct, only finite.
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        self.eval_sq(d2)
    }

    /// Squared support radius for branch-free masking: `support()²` for
    /// finite-support kernels, `+∞` otherwise (every distance passes).
    #[inline]
    fn support_sq(&self) -> f64 {
        self.support().map_or(f64::INFINITY, |s| s * s)
    }

    /// Batch evaluation: `out[i] = eval_sq(d2s[i])`, bit-identical per
    /// element to the scalar method.
    ///
    /// The default is the scalar loop; the concrete kernels override it
    /// with a branch-free multiply-by-mask form the compiler can
    /// vectorize, and the kernels whose formula needs `d` (triangular,
    /// cosine, exponential) take their single `sqrt` per lane here
    /// instead of duplicating the sqrt-then-branch shape at call sites.
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            *o = self.eval_sq(*d2);
        }
    }

    /// `Some(r)` if the kernel is exactly zero for all distances `> r`;
    /// `None` for infinite-support kernels (Gaussian, exponential).
    fn support(&self) -> Option<f64>;

    /// A radius beyond which the kernel value is `< tail_eps · K(0)`.
    ///
    /// Equals the exact support radius for finite-support kernels; for
    /// infinite-support kernels it is the analytic tail cutoff. Pruning
    /// structures (grids, trees, distributed halos) use this radius.
    fn effective_radius(&self, tail_eps: f64) -> f64;

    /// The maximum value of the kernel, attained at distance zero.
    #[inline]
    fn max_value(&self) -> f64 {
        self.eval_sq(0.0)
    }

    /// The planar integral `∫∫ K(‖x‖) dx` of the kernel over `R²`.
    ///
    /// Dividing a raw kernel sum by `n · integral_2d()` turns it into a
    /// proper density estimate; the adaptive-bandwidth KDV uses the
    /// ratio of integrals to keep per-point kernel mass constant as
    /// bandwidths vary.
    fn integral_2d(&self) -> f64;

    /// Which member of the family this is.
    fn kind(&self) -> KernelKind;
}

macro_rules! check_bandwidth {
    ($b:expr) => {
        assert!(
            $b.is_finite() && $b > 0.0,
            "kernel bandwidth must be finite and positive, got {}",
            $b
        );
    };
}

/// Uniform kernel: `1/b` if `d ≤ b`, else `0` (paper Table 2, row 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    b: f64,
    inv_b: f64,
    b2: f64,
}

impl Uniform {
    /// Uniform kernel with bandwidth `b`. Panics if `b ≤ 0` or non-finite.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Uniform {
            b,
            inv_b: 1.0 / b,
            b2: b * b,
        }
    }
}

impl Kernel for Uniform {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            self.inv_b
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_raw(&self, _d2: f64) -> f64 {
        self.inv_b
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            let m = (*d2 <= self.b2) as u64 as f64;
            *o = m * self.inv_b + 0.0;
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        std::f64::consts::PI * self.b
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Uniform
    }
}

/// Epanechnikov kernel: `1 − d²/b²` if `d ≤ b`, else `0`
/// (paper Table 2, row 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Epanechnikov {
    b: f64,
    inv_b2: f64,
    b2: f64,
}

impl Epanechnikov {
    /// Epanechnikov kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Epanechnikov {
            b,
            inv_b2: 1.0 / (b * b),
            b2: b * b,
        }
    }
}

impl Kernel for Epanechnikov {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            1.0 - d2 * self.inv_b2
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        1.0 - d2 * self.inv_b2
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            let m = (*d2 <= self.b2) as u64 as f64;
            *o = m * (1.0 - *d2 * self.inv_b2) + 0.0;
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        0.5 * std::f64::consts::PI * self.b * self.b
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Epanechnikov
    }
}

/// Quartic (biweight) kernel: `(1 − d²/b²)²` if `d ≤ b`, else `0`
/// (paper Table 2, row 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartic {
    b: f64,
    inv_b2: f64,
    b2: f64,
}

impl Quartic {
    /// Quartic kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Quartic {
            b,
            inv_b2: 1.0 / (b * b),
            b2: b * b,
        }
    }
}

impl Kernel for Quartic {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            let u = 1.0 - d2 * self.inv_b2;
            u * u
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        let u = 1.0 - d2 * self.inv_b2;
        u * u
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            let m = (*d2 <= self.b2) as u64 as f64;
            let u = 1.0 - *d2 * self.inv_b2;
            *o = m * (u * u) + 0.0;
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        std::f64::consts::PI * self.b * self.b / 3.0
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Quartic
    }
}

/// Gaussian kernel: `exp(−d²/b²)` (paper Table 2, row 4; infinite support).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    b: f64,
    inv_b2: f64,
}

impl Gaussian {
    /// Gaussian kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Gaussian {
            b,
            inv_b2: 1.0 / (b * b),
        }
    }
}

impl Kernel for Gaussian {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        (-d2 * self.inv_b2).exp()
    }
    // `eval_sq` has no support branch, so the default `eval_sq_raw` is
    // already branch-free; only the batch loop is specialized.
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            *o = (-*d2 * self.inv_b2).exp();
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        None
    }
    /// `exp(−r²/b²) = ε  ⇒  r = b·sqrt(ln(1/ε))`.
    #[inline]
    fn effective_radius(&self, tail_eps: f64) -> f64 {
        debug_assert!(tail_eps > 0.0 && tail_eps < 1.0);
        self.b * (1.0 / tail_eps).ln().sqrt()
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        std::f64::consts::PI * self.b * self.b
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Gaussian
    }
}

/// Triangular kernel: `1 − d/b` if `d ≤ b`, else `0` (§2.4 extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    b: f64,
    inv_b: f64,
    b2: f64,
}

impl Triangular {
    /// Triangular kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Triangular {
            b,
            inv_b: 1.0 / b,
            b2: b * b,
        }
    }
}

impl Kernel for Triangular {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            1.0 - d2.sqrt() * self.inv_b
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        1.0 - d2.sqrt() * self.inv_b
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            let m = (*d2 <= self.b2) as u64 as f64;
            *o = m * (1.0 - d2.sqrt() * self.inv_b) + 0.0;
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        std::f64::consts::PI * self.b * self.b / 3.0
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Triangular
    }
}

/// Cosine kernel: `cos(π·d / 2b)` if `d ≤ b`, else `0` (§2.4 extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cosine {
    b: f64,
    half_pi_inv_b: f64,
    b2: f64,
}

impl Cosine {
    /// Cosine kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Cosine {
            b,
            half_pi_inv_b: std::f64::consts::FRAC_PI_2 / b,
            b2: b * b,
        }
    }
}

impl Kernel for Cosine {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            (d2.sqrt() * self.half_pi_inv_b).cos()
        } else {
            0.0
        }
    }
    // `cos` is a libm call the autovectorizer cannot fold, so unlike the
    // polynomial kernels the branch-free mask form is a net loss here:
    // it would pay sqrt+cos on every out-of-support candidate. Keeping
    // the support branch in both hooks is still within the contract
    // (0.0 is a finite value outside support) and bit-identical to
    // `eval_sq` everywhere.
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        if d2 <= self.b2 {
            (d2.sqrt() * self.half_pi_inv_b).cos()
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            *o = if *d2 <= self.b2 {
                (d2.sqrt() * self.half_pi_inv_b).cos()
            } else {
                0.0
            };
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        self.b * self.b * (4.0 - 8.0 / std::f64::consts::PI)
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Cosine
    }
}

/// Exponential kernel: `exp(−d/b)` (§2.4 extension; infinite support).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    b: f64,
    inv_b: f64,
}

impl Exponential {
    /// Exponential kernel with bandwidth `b`. Panics if `b ≤ 0`.
    #[must_use]
    pub fn new(b: f64) -> Self {
        check_bandwidth!(b);
        Exponential { b, inv_b: 1.0 / b }
    }
}

impl Kernel for Exponential {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        (-d2.sqrt() * self.inv_b).exp()
    }
    // Infinite support: the default `eval_sq_raw` is already branch-free.
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        for (o, d2) in out.iter_mut().zip(d2s) {
            *o = (-d2.sqrt() * self.inv_b).exp();
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        None
    }
    /// `exp(−r/b) = ε  ⇒  r = b·ln(1/ε)`.
    #[inline]
    fn effective_radius(&self, tail_eps: f64) -> f64 {
        debug_assert!(tail_eps > 0.0 && tail_eps < 1.0);
        self.b * (1.0 / tail_eps).ln()
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.b * self.b
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        KernelKind::Exponential
    }
}

/// Discriminant for the kernel family, independent of bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    Uniform,
    Epanechnikov,
    Quartic,
    Gaussian,
    Triangular,
    Cosine,
    Exponential,
}

impl KernelKind {
    /// All seven kernels, in the paper's Table 2 order followed by the
    /// §2.4 extensions.
    pub const ALL: [KernelKind; 7] = [
        KernelKind::Uniform,
        KernelKind::Epanechnikov,
        KernelKind::Quartic,
        KernelKind::Gaussian,
        KernelKind::Triangular,
        KernelKind::Cosine,
        KernelKind::Exponential,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Uniform => "uniform",
            KernelKind::Epanechnikov => "epanechnikov",
            KernelKind::Quartic => "quartic",
            KernelKind::Gaussian => "gaussian",
            KernelKind::Triangular => "triangular",
            KernelKind::Cosine => "cosine",
            KernelKind::Exponential => "exponential",
        }
    }

    /// Instantiate this kernel with bandwidth `b`.
    #[must_use]
    pub fn with_bandwidth(&self, b: f64) -> AnyKernel {
        match self {
            KernelKind::Uniform => AnyKernel::Uniform(Uniform::new(b)),
            KernelKind::Epanechnikov => AnyKernel::Epanechnikov(Epanechnikov::new(b)),
            KernelKind::Quartic => AnyKernel::Quartic(Quartic::new(b)),
            KernelKind::Gaussian => AnyKernel::Gaussian(Gaussian::new(b)),
            KernelKind::Triangular => AnyKernel::Triangular(Triangular::new(b)),
            KernelKind::Cosine => AnyKernel::Cosine(Cosine::new(b)),
            KernelKind::Exponential => AnyKernel::Exponential(Exponential::new(b)),
        }
    }

    /// True for the kernels whose value is a polynomial in `d²`, i.e. the
    /// family the SLAM/SAFE computational-sharing algorithms support.
    pub fn is_polynomial(&self) -> bool {
        matches!(
            self,
            KernelKind::Uniform | KernelKind::Epanechnikov | KernelKind::Quartic
        )
    }
}

/// A dynamically chosen kernel. Useful where the kernel is a runtime
/// parameter (CLI harnesses, the distributed layer); statically typed code
/// should prefer the concrete structs so the evaluation inlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyKernel {
    Uniform(Uniform),
    Epanechnikov(Epanechnikov),
    Quartic(Quartic),
    Gaussian(Gaussian),
    Triangular(Triangular),
    Cosine(Cosine),
    Exponential(Exponential),
}

macro_rules! dispatch {
    ($self:ident, $k:ident => $body:expr) => {
        match $self {
            AnyKernel::Uniform($k) => $body,
            AnyKernel::Epanechnikov($k) => $body,
            AnyKernel::Quartic($k) => $body,
            AnyKernel::Gaussian($k) => $body,
            AnyKernel::Triangular($k) => $body,
            AnyKernel::Cosine($k) => $body,
            AnyKernel::Exponential($k) => $body,
        }
    };
}

impl Kernel for AnyKernel {
    #[inline]
    fn bandwidth(&self) -> f64 {
        dispatch!(self, k => k.bandwidth())
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        dispatch!(self, k => k.eval_sq(d2))
    }
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        dispatch!(self, k => k.eval_sq_raw(d2))
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        dispatch!(self, k => k.eval_sq_batch(d2s, out))
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        dispatch!(self, k => k.support())
    }
    #[inline]
    fn effective_radius(&self, tail_eps: f64) -> f64 {
        dispatch!(self, k => k.effective_radius(tail_eps))
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        dispatch!(self, k => k.integral_2d())
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        dispatch!(self, k => k.kind())
    }
}

/// The polynomial kernel subfamily: kernels whose value on their support is
/// `c₀ + c₁·d² + c₂·d⁴`. This is exactly the set the paper's
/// computational-sharing results (\[26, 29, 32\]) handle, and the reason the
/// paper's §2.4 calls complexity-reduced algorithms for *other* kernels an
/// open problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyKernel {
    kind: KernelKind,
    b: f64,
    coeffs: [f64; 3],
}

impl PolyKernel {
    /// Build the polynomial form of `kind` with bandwidth `b`.
    ///
    /// Returns `None` for non-polynomial kernels (Gaussian, triangular,
    /// cosine, exponential).
    #[must_use]
    pub fn new(kind: KernelKind, b: f64) -> Option<Self> {
        check_bandwidth!(b);
        let b2 = b * b;
        let coeffs = match kind {
            // 1/b on the support.
            KernelKind::Uniform => [1.0 / b, 0.0, 0.0],
            // 1 − d²/b².
            KernelKind::Epanechnikov => [1.0, -1.0 / b2, 0.0],
            // (1 − d²/b²)² = 1 − 2d²/b² + d⁴/b⁴.
            KernelKind::Quartic => [1.0, -2.0 / b2, 1.0 / (b2 * b2)],
            _ => return None,
        };
        Some(PolyKernel { kind, b, coeffs })
    }

    /// The `[c₀, c₁, c₂]` coefficients of the polynomial in `d²`.
    #[inline]
    pub fn coeffs(&self) -> [f64; 3] {
        self.coeffs
    }

    /// Degree in `d²`: 0 for uniform, 1 for Epanechnikov, 2 for quartic.
    #[inline]
    pub fn degree(&self) -> usize {
        if self.coeffs[2] != 0.0 {
            2
        } else if self.coeffs[1] != 0.0 {
            1
        } else {
            0
        }
    }

    /// Convert back to the dynamic kernel form (for evaluation fallbacks).
    pub fn as_any(&self) -> AnyKernel {
        self.kind.with_bandwidth(self.b)
    }
}

impl Kernel for PolyKernel {
    #[inline]
    fn bandwidth(&self) -> f64 {
        self.b
    }
    #[inline]
    fn eval_sq(&self, d2: f64) -> f64 {
        if d2 <= self.b * self.b {
            let [c0, c1, c2] = self.coeffs;
            c0 + d2 * (c1 + d2 * c2)
        } else {
            0.0
        }
    }
    #[inline]
    fn eval_sq_raw(&self, d2: f64) -> f64 {
        let [c0, c1, c2] = self.coeffs;
        c0 + d2 * (c1 + d2 * c2)
    }
    #[inline]
    fn eval_sq_batch(&self, d2s: &[f64], out: &mut [f64]) {
        debug_assert_eq!(d2s.len(), out.len());
        let b2 = self.b * self.b;
        let [c0, c1, c2] = self.coeffs;
        for (o, d2) in out.iter_mut().zip(d2s) {
            let m = (*d2 <= b2) as u64 as f64;
            *o = m * (c0 + *d2 * (c1 + *d2 * c2)) + 0.0;
        }
    }
    #[inline]
    fn support(&self) -> Option<f64> {
        Some(self.b)
    }
    #[inline]
    fn effective_radius(&self, _tail_eps: f64) -> f64 {
        self.b
    }
    #[inline]
    fn integral_2d(&self) -> f64 {
        self.as_any().integral_2d()
    }
    #[inline]
    fn kind(&self) -> KernelKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kernels(b: f64) -> Vec<AnyKernel> {
        KernelKind::ALL
            .iter()
            .map(|k| k.with_bandwidth(b))
            .collect()
    }

    #[test]
    fn table2_values_at_zero_and_bandwidth() {
        let b = 2.0;
        let u = Uniform::new(b);
        assert_eq!(u.eval(0.0), 0.5);
        assert_eq!(u.eval(2.0), 0.5); // inclusive at d = b
        assert_eq!(u.eval(2.0001), 0.0);

        let e = Epanechnikov::new(b);
        assert_eq!(e.eval(0.0), 1.0);
        assert!((e.eval(1.0) - 0.75).abs() < 1e-12);
        assert_eq!(e.eval(2.0), 0.0);

        let q = Quartic::new(b);
        assert_eq!(q.eval(0.0), 1.0);
        assert!((q.eval(1.0) - 0.5625).abs() < 1e-12);
        assert_eq!(q.eval(2.0), 0.0);

        let g = Gaussian::new(b);
        assert_eq!(g.eval(0.0), 1.0);
        assert!((g.eval(2.0) - (-1.0f64).exp()).abs() < 1e-12);

        let t = Triangular::new(b);
        assert_eq!(t.eval(0.0), 1.0);
        assert_eq!(t.eval(1.0), 0.5);
        assert_eq!(t.eval(2.0), 0.0);

        let c = Cosine::new(b);
        assert_eq!(c.eval(0.0), 1.0);
        assert!((c.eval(1.0) - (std::f64::consts::FRAC_PI_4).cos()).abs() < 1e-12);
        assert!(c.eval(2.0).abs() < 1e-12);

        let x = Exponential::new(b);
        assert_eq!(x.eval(0.0), 1.0);
        assert!((x.eval(2.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn kernels_are_monotone_non_increasing() {
        for k in all_kernels(1.5) {
            let mut last = k.eval(0.0);
            let mut d = 0.0;
            while d < 3.0 {
                d += 0.01;
                let v = k.eval(d);
                assert!(
                    v <= last + 1e-12,
                    "{:?} increased at d={}: {} > {}",
                    k.kind(),
                    d,
                    v,
                    last
                );
                assert!(v >= 0.0);
                last = v;
            }
        }
    }

    #[test]
    fn finite_support_kernels_vanish_outside() {
        for k in all_kernels(1.0) {
            if let Some(r) = k.support() {
                assert_eq!(k.eval(r * 1.0001), 0.0, "{:?}", k.kind());
                assert!(k.eval(r * 0.9999) >= 0.0);
            }
        }
    }

    #[test]
    fn effective_radius_truncates_tail() {
        let eps = 1e-6;
        for k in all_kernels(3.0) {
            let r = k.effective_radius(eps);
            let tail = k.eval(r * 1.0001);
            assert!(
                tail <= eps * k.max_value() + 1e-15,
                "{:?}: tail {} at r {}",
                k.kind(),
                tail,
                r
            );
        }
    }

    #[test]
    fn poly_kernel_matches_direct_evaluation() {
        for kind in [
            KernelKind::Uniform,
            KernelKind::Epanechnikov,
            KernelKind::Quartic,
        ] {
            let b = 2.5;
            let poly = PolyKernel::new(kind, b).unwrap();
            let direct = kind.with_bandwidth(b);
            let mut d = 0.0;
            while d < 3.5 {
                assert!(
                    (poly.eval(d) - direct.eval(d)).abs() < 1e-12,
                    "{:?} at d={}",
                    kind,
                    d
                );
                d += 0.0173;
            }
        }
    }

    #[test]
    fn poly_kernel_rejects_non_polynomial() {
        assert!(PolyKernel::new(KernelKind::Gaussian, 1.0).is_none());
        assert!(PolyKernel::new(KernelKind::Triangular, 1.0).is_none());
        assert!(PolyKernel::new(KernelKind::Cosine, 1.0).is_none());
        assert!(PolyKernel::new(KernelKind::Exponential, 1.0).is_none());
    }

    #[test]
    fn poly_kernel_degrees() {
        assert_eq!(
            PolyKernel::new(KernelKind::Uniform, 1.0).unwrap().degree(),
            0
        );
        assert_eq!(
            PolyKernel::new(KernelKind::Epanechnikov, 1.0)
                .unwrap()
                .degree(),
            1
        );
        assert_eq!(
            PolyKernel::new(KernelKind::Quartic, 1.0).unwrap().degree(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Gaussian::new(0.0);
    }

    #[test]
    fn kind_roundtrip() {
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(1.25);
            assert_eq!(k.kind(), kind);
            assert_eq!(k.bandwidth(), 1.25);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn integral_2d_matches_numeric_quadrature() {
        for kind in KernelKind::ALL {
            let b = 1.7;
            let k = kind.with_bandwidth(b);
            // Radial quadrature: ∫ K(r)·2πr dr out to the effective tail.
            let r_max = k.effective_radius(1e-12);
            let steps = 200_000;
            let dr = r_max / steps as f64;
            let mut acc = 0.0;
            for i in 0..steps {
                let r = (i as f64 + 0.5) * dr;
                acc += k.eval(r) * std::f64::consts::TAU * r * dr;
            }
            let analytic = k.integral_2d();
            assert!(
                (acc - analytic).abs() / analytic < 1e-3,
                "{kind:?}: numeric {acc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn eval_sq_consistent_with_eval() {
        for k in all_kernels(0.8) {
            for d in [0.0, 0.1, 0.5, 0.79, 0.8, 1.0, 2.0] {
                assert!((k.eval(d) - k.eval_sq(d * d)).abs() < 1e-12);
            }
        }
    }

    /// The branch-free batch path must be *bit-identical* to the scalar
    /// `eval_sq`, including at the support boundary and outside it (where
    /// the mask must yield exactly `+0.0`, never `-0.0` or a negative
    /// out-of-support polynomial value).
    #[test]
    fn eval_sq_batch_bit_equals_scalar() {
        let b = 1.3;
        let d2s: Vec<f64> = (0..400).map(|i| i as f64 * 0.01).collect();
        let mut batch = vec![0.0; d2s.len()];
        let mut check =
            |name: &str, k: &dyn Fn(&[f64], &mut [f64]), scalar: &dyn Fn(f64) -> f64| {
                k(&d2s, &mut batch);
                for (d2, got) in d2s.iter().zip(&batch) {
                    let want = scalar(*d2);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{name} at d2={d2}: batch {got} vs scalar {want}"
                    );
                }
            };
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(b);
            check(kind.name(), &|d2s, out| k.eval_sq_batch(d2s, out), &|d2| {
                k.eval_sq(d2)
            });
        }
        let p = PolyKernel::new(KernelKind::Quartic, b).unwrap();
        check(
            "poly-quartic",
            &|d2s, out| p.eval_sq_batch(d2s, out),
            &|d2| p.eval_sq(d2),
        );
    }

    /// `eval_sq_raw` must agree bit-for-bit with `eval_sq` inside the
    /// support (the masked microkernels rely on this).
    #[test]
    fn eval_sq_raw_matches_inside_support() {
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(2.1);
            let s2 = k.support_sq();
            for i in 0..300 {
                let d2 = i as f64 * 0.02;
                if d2 <= s2 {
                    assert_eq!(k.eval_sq_raw(d2).to_bits(), k.eval_sq(d2).to_bits());
                }
            }
        }
    }
}
