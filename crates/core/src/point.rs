//! Planar geometry primitives: [`Point`], [`TimedPoint`], and [`BBox`].
//!
//! All analytics in the suite operate on plain `f64` planar coordinates.
//! Geographic inputs are assumed to have been projected (e.g. to a local
//! UTM zone) before entering the library, matching how the tools the paper
//! surveys (QGIS heatmaps, spatstat, CrimeStat) treat coordinates.

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this in hot loops: every finite-support kernel in the suite
    /// can be evaluated from the squared distance without a `sqrt`.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// A point with an event timestamp, the unit of the spatiotemporal tools
/// (STKDV, spatiotemporal K-function; paper Eq. 8).
///
/// Time is a plain `f64` in caller-defined units (days, hours, ...); the
/// temporal kernels and thresholds use the same unit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimedPoint {
    pub point: Point,
    pub t: f64,
}

impl TimedPoint {
    /// Create a spatiotemporal point.
    #[inline]
    pub const fn new(x: f64, y: f64, t: f64) -> Self {
        TimedPoint {
            point: Point::new(x, y),
            t,
        }
    }

    /// Spatial (planar) distance to `other`, ignoring time.
    #[inline]
    pub fn spatial_dist(&self, other: &TimedPoint) -> f64 {
        self.point.dist(&other.point)
    }

    /// Absolute temporal distance to `other`.
    #[inline]
    pub fn temporal_dist(&self, other: &TimedPoint) -> f64 {
        (self.t - other.t).abs()
    }
}

/// An axis-aligned bounding box. Degenerate (zero-area) boxes are legal;
/// an *empty* box (no points accumulated yet) is represented by
/// [`BBox::empty`], which has `min > max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl BBox {
    /// Construct from explicit corners. Panics in debug builds if the
    /// corners are inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted bbox");
        BBox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The empty box: the identity element of [`BBox::expand`].
    #[inline]
    pub fn empty() -> Self {
        BBox {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// True if no point has been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// Smallest box covering every point of `points`, or the empty box.
    pub fn of_points(points: &[Point]) -> Self {
        let mut b = BBox::empty();
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Grow the box to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grow the box to cover another box.
    #[inline]
    pub fn expand_box(&mut self, other: &BBox) {
        if other.is_empty() {
            return;
        }
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Return a copy grown by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Box width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Box height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Box area. Zero for empty or degenerate boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min_x + self.max_x),
            0.5 * (self.min_y + self.max_y),
        )
    }

    /// True if `p` lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True if the two boxes overlap (inclusive bounds).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero when `p` is inside). Used by tree-based pruning and the
    /// function-approximation lower bound (paper Eq. 6).
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// Squared distance from `p` to the farthest point of the box.
    /// Used for the function-approximation upper bound (paper Eq. 6).
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn point_midpoint() {
        let m = Point::new(0.0, 2.0).midpoint(&Point::new(4.0, 0.0));
        assert_eq!(m, Point::new(2.0, 1.0));
    }

    #[test]
    fn timed_point_distances() {
        let a = TimedPoint::new(0.0, 0.0, 1.0);
        let b = TimedPoint::new(0.0, 1.0, 4.0);
        assert_eq!(a.spatial_dist(&b), 1.0);
        assert_eq!(a.temporal_dist(&b), 3.0);
        assert_eq!(b.temporal_dist(&a), 3.0);
    }

    #[test]
    fn bbox_accumulation() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let b = BBox::of_points(&pts);
        assert_eq!(b, BBox::new(-2.0, 0.0, 3.0, 5.0));
        assert_eq!(b.width(), 5.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 25.0);
        assert_eq!(b.center(), Point::new(0.5, 2.5));
    }

    #[test]
    fn bbox_empty_semantics() {
        let mut b = BBox::empty();
        assert!(b.is_empty());
        assert_eq!(b.area(), 0.0);
        b.expand(&Point::new(1.0, 1.0));
        assert!(!b.is_empty());
        assert_eq!(b.area(), 0.0); // single point: degenerate but non-empty

        let mut c = BBox::empty();
        c.expand_box(&b);
        assert_eq!(c, b);
        let mut d = b;
        d.expand_box(&BBox::empty()); // empty is the identity
        assert_eq!(d, b);
    }

    #[test]
    fn bbox_contains_and_intersects() {
        let b = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(2.0, 2.0)));
        assert!(!b.contains(&Point::new(2.1, 1.0)));

        assert!(b.intersects(&BBox::new(2.0, 2.0, 3.0, 3.0))); // edge touch
        assert!(!b.intersects(&BBox::new(2.5, 2.5, 3.0, 3.0)));
    }

    #[test]
    fn bbox_min_max_dist() {
        let b = BBox::new(0.0, 0.0, 2.0, 2.0);
        // Inside: min dist 0, max dist to the farthest corner.
        let inside = Point::new(0.5, 0.5);
        assert_eq!(b.min_dist_sq(&inside), 0.0);
        assert_eq!(b.max_dist_sq(&inside), 1.5 * 1.5 + 1.5 * 1.5);
        // Outside along x.
        let out = Point::new(5.0, 1.0);
        assert_eq!(b.min_dist_sq(&out), 9.0);
        assert_eq!(b.max_dist_sq(&out), 25.0 + 1.0);
    }

    #[test]
    fn bbox_inflate() {
        let b = BBox::new(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(b, BBox::new(-0.5, -0.5, 1.5, 1.5));
    }
}
