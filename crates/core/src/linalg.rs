//! A small dense linear-algebra kernel: just enough to solve the ordinary
//! kriging systems (`lsga-interp`) and least-squares variogram fits without
//! pulling in an external BLAS. Systems are tiny (neighbourhood size + 1,
//! typically ≤ 65 unknowns), so an O(n³) dense solver is the right tool.

use crate::error::{LsgaError, Result};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data. Panics on length mismatch.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product. Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }
}

/// Solve `A·x = b` in place via Gaussian elimination with partial pivoting.
///
/// `A` is consumed (it is reduced to echelon form). Returns
/// [`LsgaError::SingularSystem`] when a pivot falls below `1e-12` of the
/// largest row entry, which in kriging signals duplicate sample locations.
#[allow(clippy::needless_range_loop)] // dense matrix index arithmetic
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LsgaError::InvalidParameter {
            name: "system",
            message: format!(
                "need square system, got {}x{} with rhs {}",
                n,
                a.cols(),
                b.len()
            ),
        });
    }
    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_val = a.at(col, col).abs();
        for r in (col + 1)..n {
            let v = a.at(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(LsgaError::SingularSystem("pivot below tolerance"));
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a.at(col, c);
                a.set(col, c, a.at(pivot_row, c));
                a.set(pivot_row, c, tmp);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = a.at(col, col);
        for r in (col + 1)..n {
            let factor = a.at(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.at(r, c) - factor * a.at(col, c);
                a.set(r, c, v);
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in (r + 1)..n {
            acc -= a.at(r, c) * x[c];
        }
        x[r] = acc / a.at(r, r);
    }
    Ok(x)
}

/// Least-squares fit of `A·x ≈ b` via the normal equations
/// `(AᵀA)·x = Aᵀb`. Adequate for the 2–3 parameter variogram fits here;
/// ill-conditioned inputs surface as [`LsgaError::SingularSystem`].
#[allow(clippy::needless_range_loop)] // dense matrix index arithmetic
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    assert_eq!(b.len(), a.rows());
    let n = a.cols();
    let mut ata = Matrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for r in 0..a.rows() {
                s += a.at(r, i) * a.at(r, j);
            }
            ata.set(i, j, s);
        }
        let mut s = 0.0;
        for r in 0..a.rows() {
            s += a.at(r, i) * b[r];
        }
        atb[i] = s;
    }
    solve(ata, atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::from_rows(3, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        let x = solve(a, vec![3.0, -1.0, 2.0]).unwrap();
        assert_eq!(x, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
        let a = Matrix::from_rows(2, 2, vec![2., 1., 1., 3.]);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0., 1., 1., 0.]);
        let x = solve(a, vec![2.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1., 2., 2., 4.]);
        assert!(matches!(
            solve(a, vec![1.0, 2.0]),
            Err(LsgaError::SingularSystem(_))
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::from_rows(2, 3, vec![0.0; 6]);
        assert!(solve(a, vec![0.0; 2]).is_err());
    }

    #[test]
    fn mul_vec_roundtrip() {
        let a = Matrix::from_rows(3, 3, vec![4., 1., 0., 1., 3., 1., 0., 1., 2.]);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = solve(a, b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = 2x + 1 through exact points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(4, 2);
        let mut b = vec![0.0; 4];
        for (i, x) in xs.iter().enumerate() {
            a.set(i, 0, *x);
            a.set(i, 1, 1.0);
            b[i] = 2.0 * x + 1.0;
        }
        let sol = least_squares(&a, &b).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-10);
        assert!((sol[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_noise() {
        // y = 3x with one outlier; slope should stay close to 3.
        let mut a = Matrix::zeros(5, 1);
        let mut b = vec![0.0; 5];
        for (i, bi) in b.iter_mut().enumerate() {
            a.set(i, 0, i as f64);
            *bi = 3.0 * i as f64;
        }
        b[4] += 1.0;
        let sol = least_squares(&a, &b).unwrap();
        assert!((sol[0] - 3.0).abs() < 0.2);
    }
}
