//! Structure-of-arrays point store and cache-blocked batch microkernels.
//!
//! The tool crates' hot loops are all O(n·m) pair sweeps — every pixel (or
//! point) against every candidate point. Run over `Vec<Point>` they load
//! interleaved `{x, y}` pairs and evaluate `Kernel::eval_sq` one pair at a
//! time through a support branch, which defeats vectorization. This module
//! provides the layer below thread parallelism:
//!
//! * [`PointsSoA`] — columnar `xs`/`ys` (plus optional `ts`/`ws` columns
//!   for spatio-temporal and weighted tools), built once per invocation.
//! * Cache-blocked microkernels — [`accumulate_density_row`],
//!   [`accumulate_density_span`], [`distances_sq_tile`],
//!   [`count_within_span`], [`scatter_scaled_row`] — that process
//!   [`TILE`]-point blocks against [`LANES`]-query register blocks with
//!   branch-free multiply-by-mask kernel evaluation.
//!
//! # Determinism contract
//!
//! Every microkernel folds each accumulator's contributions in **exact
//! input (point) order** — tiling changes only *when* a contribution is
//! computed, never the order it is added into its accumulator — so the
//! results are bit-identical to the scalar loops they replace, and
//! therefore identical across thread counts (the PR-1 pool already fixes
//! the chunk decomposition). The mask trick is sound because for
//! out-of-support distances the masked product is `±0.0`, and adding
//! `±0.0` to a running sum that started at `+0.0` never changes its bits:
//! `x + ±0.0 == x` for `x != 0`, and `(+0.0) + (±0.0) == +0.0` in
//! round-to-nearest.
//!
//! Callers of the masked paths must pass `cutoff_r2` no larger than the
//! kernel's [`Kernel::support_sq`] (use `r2.min(kernel.support_sq())`):
//! beyond the support the *raw* formula keeps decreasing below zero, so a
//! looser mask would add garbage the branchy scalar code never saw.

use crate::kernel::Kernel;
use crate::point::{Point, TimedPoint};

/// Points per inner block: two `f64` columns of 512 points are 8 KiB,
/// comfortably inside a 32 KiB L1 together with the query block and
/// scratch.
pub const TILE: usize = 512;

/// Queries per register block. Eight accumulators fit the 16 vector
/// registers of baseline x86-64 with room for the distance temporaries.
pub const LANES: usize = 8;

/// Columnar view of a point set: one `Vec<f64>` per coordinate.
///
/// `ts` (timestamps) and `ws` (weights / sample values) are optional
/// side columns; constructors fill only what their input carries and
/// leave the rest empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointsSoA {
    /// X coordinates, in input order.
    pub xs: Vec<f64>,
    /// Y coordinates, in input order.
    pub ys: Vec<f64>,
    /// Timestamps (empty unless built from timed points).
    pub ts: Vec<f64>,
    /// Weights or attached sample values (empty unless provided).
    pub ws: Vec<f64>,
}

impl PointsSoA {
    /// Columnarize a plain point set.
    #[must_use]
    pub fn from_points(points: &[Point]) -> Self {
        PointsSoA {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
            ts: Vec::new(),
            ws: Vec::new(),
        }
    }

    /// Columnarize a spatio-temporal point set (fills `ts`).
    #[must_use]
    pub fn from_timed(points: &[TimedPoint]) -> Self {
        PointsSoA {
            xs: points.iter().map(|p| p.point.x).collect(),
            ys: points.iter().map(|p| p.point.y).collect(),
            ts: points.iter().map(|p| p.t).collect(),
            ws: Vec::new(),
        }
    }

    /// Columnarize weighted samples `(point, value)` (fills `ws`).
    #[must_use]
    pub fn from_samples(samples: &[(Point, f64)]) -> Self {
        PointsSoA {
            xs: samples.iter().map(|(p, _)| p.x).collect(),
            ys: samples.iter().map(|(p, _)| p.y).collect(),
            ts: Vec::new(),
            ws: samples.iter().map(|(_, z)| *z).collect(),
        }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the store holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// Accumulate masked kernel density of every query in a raster row
/// against a point span: `acc[i] += Σ_j [d²(q_i, p_j) ≤ cutoff_r2] ·
/// K_raw(d²)`, folding each `acc[i]`'s terms in point order.
///
/// Queries share the row ordinate `qy`; their abscissae are `qxs`. The
/// span is blocked [`TILE`] points at a time (with `(qy − y_j)²` hoisted
/// into a stack buffer per tile) and [`LANES`] queries at a time, so the
/// inner loop is a branch-free 8-accumulator sweep the compiler can keep
/// entirely in registers.
///
/// Bit-identical to the scalar loop
/// `for j { if d2 <= cutoff_r2 { acc[i] += kernel.eval_sq(d2) } }`
/// provided `cutoff_r2 ≤ kernel.support_sq()` (see the module docs).
pub fn accumulate_density_row<K: Kernel>(
    kernel: &K,
    cutoff_r2: f64,
    qxs: &[f64],
    qy: f64,
    xs: &[f64],
    ys: &[f64],
    acc: &mut [f64],
) {
    debug_assert_eq!(qxs.len(), acc.len());
    debug_assert_eq!(xs.len(), ys.len());
    let mut dy2 = [0.0f64; TILE];
    let mut p0 = 0;
    while p0 < xs.len() {
        let p1 = (p0 + TILE).min(xs.len());
        let txs = &xs[p0..p1];
        for (s, y) in dy2[..p1 - p0].iter_mut().zip(&ys[p0..p1]) {
            let dy = qy - *y;
            *s = dy * dy;
        }
        let tdy2 = &dy2[..p1 - p0];

        let mut q0 = 0;
        while q0 < qxs.len() {
            let q1 = (q0 + LANES).min(qxs.len());
            let w = q1 - q0;
            let mut accs = [0.0f64; LANES];
            accs[..w].copy_from_slice(&acc[q0..q1]);
            if w == LANES {
                // Full register block: fixed-size arrays keep the lane
                // loops unrollable and the accumulators in registers.
                let mut qs = [0.0f64; LANES];
                qs.copy_from_slice(&qxs[q0..q1]);
                for (x, dy2j) in txs.iter().zip(tdy2) {
                    let mut d2s = [0.0f64; LANES];
                    for l in 0..LANES {
                        let dx = qs[l] - *x;
                        d2s[l] = dx * dx + *dy2j;
                    }
                    for l in 0..LANES {
                        let m = (d2s[l] <= cutoff_r2) as u64 as f64;
                        accs[l] += m * kernel.eval_sq_raw(d2s[l]);
                    }
                }
            } else {
                let qs = &qxs[q0..q1];
                for (x, dy2j) in txs.iter().zip(tdy2) {
                    for (a, qx) in accs[..w].iter_mut().zip(qs) {
                        let dx = *qx - *x;
                        let d2 = dx * dx + *dy2j;
                        let m = (d2 <= cutoff_r2) as u64 as f64;
                        *a += m * kernel.eval_sq_raw(d2);
                    }
                }
            }
            acc[q0..q1].copy_from_slice(&accs[..w]);
            q0 = q1;
        }
        p0 = p1;
    }
}

/// Masked kernel-density fold of a single query over a point span,
/// starting from `init`: returns
/// `init + Σ_j [d²(q, p_j) ≤ cutoff_r2] · K_raw(d²)` with terms added in
/// point order. Same bit-equality contract as [`accumulate_density_row`].
#[must_use]
pub fn accumulate_density_span<K: Kernel>(
    kernel: &K,
    cutoff_r2: f64,
    qx: f64,
    qy: f64,
    xs: &[f64],
    ys: &[f64],
    init: f64,
) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let mut acc = init;
    for (x, y) in xs.iter().zip(ys) {
        let dx = qx - *x;
        let dy = qy - *y;
        let d2 = dx * dx + dy * dy;
        let m = (d2 <= cutoff_r2) as u64 as f64;
        acc += m * kernel.eval_sq_raw(d2);
    }
    acc
}

/// Squared distances from one query to a point span:
/// `out[j] = (qx − xs[j])² + (qy − ys[j])²`, bit-identical to
/// `Point::dist_sq` in either argument order (the sign of the difference
/// squares away exactly).
pub fn distances_sq_tile(qx: f64, qy: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert_eq!(xs.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = qx - *x;
        let dy = qy - *y;
        *o = dx * dx + dy * dy;
    }
}

/// Branch-free range count over a point span: how many points lie within
/// squared distance `r2` of `(qx, qy)` (boundary inclusive).
#[must_use]
pub fn count_within_span(qx: f64, qy: f64, xs: &[f64], ys: &[f64], r2: f64) -> usize {
    debug_assert_eq!(xs.len(), ys.len());
    let mut count = 0usize;
    for (x, y) in xs.iter().zip(ys) {
        let dx = qx - *x;
        let dy = qy - *y;
        count += ((dx * dx + dy * dy) <= r2) as usize;
    }
    count
}

/// Scatter one point's scaled kernel mass across a raster-row pixel span:
/// `acc[i] += [d² ≤ cutoff_r2] · (scale · K_raw(d²))` for each query
/// abscissa. The inner product is grouped `scale · raw` first so the
/// masked value matches the scalar `scale * kernel.eval_sq(d2)` bits.
#[allow(clippy::too_many_arguments)]
pub fn scatter_scaled_row<K: Kernel>(
    kernel: &K,
    cutoff_r2: f64,
    scale: f64,
    px: f64,
    py: f64,
    qxs: &[f64],
    qy: f64,
    acc: &mut [f64],
) {
    debug_assert_eq!(qxs.len(), acc.len());
    let dy = qy - py;
    let dy2 = dy * dy;
    for (a, qx) in acc.iter_mut().zip(qxs) {
        let dx = *qx - px;
        let d2 = dx * dx + dy2;
        let m = (d2 <= cutoff_r2) as u64 as f64;
        *a += m * (scale * kernel.eval_sq_raw(d2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Epanechnikov, Gaussian, Kernel, KernelKind};

    /// Deterministic pseudo-random coordinates (no external RNG needed).
    fn coords(n: usize, seed: u64, span: f64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * span
            })
            .collect()
    }

    fn scalar_row<K: Kernel>(
        kernel: &K,
        cutoff_r2: f64,
        qxs: &[f64],
        qy: f64,
        xs: &[f64],
        ys: &[f64],
        acc: &mut [f64],
    ) {
        for (a, qx) in acc.iter_mut().zip(qxs) {
            for (x, y) in xs.iter().zip(ys) {
                let dx = qx - x;
                let dy = qy - y;
                let d2 = dx * dx + dy * dy;
                if d2 <= cutoff_r2 {
                    *a += kernel.eval_sq(d2);
                }
            }
        }
    }

    /// The tiled row accumulator must match the branchy scalar loop
    /// bit-for-bit at every awkward size: empty, sub-lane, lane
    /// boundaries, and multi-tile spans.
    #[test]
    fn accumulate_density_row_bit_equals_scalar() {
        for kind in KernelKind::ALL {
            let kernel = kind.with_bandwidth(7.0);
            let cutoff = kernel.support_sq().min(20.0 * 20.0);
            for (nq, np) in [
                (0, 17),
                (1, 0),
                (1, 1),
                (3, 5),
                (LANES - 1, TILE - 1),
                (LANES, TILE),
                (LANES + 1, TILE + 1),
                (2 * LANES + 3, 2 * TILE + 7),
            ] {
                let qxs = coords(nq, 1, 30.0);
                let xs = coords(np, 2, 30.0);
                let ys = coords(np, 3, 30.0);
                let qy = 11.5;
                let mut want = vec![0.25; nq];
                let mut got = want.clone();
                scalar_row(&kernel, cutoff, &qxs, qy, &xs, &ys, &mut want);
                accumulate_density_row(&kernel, cutoff, &qxs, qy, &xs, &ys, &mut got);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{kind:?} nq={nq} np={np} pixel {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn span_fold_bit_equals_scalar() {
        let kernel = Epanechnikov::new(6.0);
        let cutoff = kernel.support_sq();
        let xs = coords(777, 5, 40.0);
        let ys = coords(777, 6, 40.0);
        let mut want = 1.5;
        for (x, y) in xs.iter().zip(&ys) {
            let d2 = (20.0 - x) * (20.0 - x) + (20.0 - y) * (20.0 - y);
            if d2 <= cutoff {
                want += kernel.eval_sq(d2);
            }
        }
        let got = accumulate_density_span(&kernel, cutoff, 20.0, 20.0, &xs, &ys, 1.5);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn distances_match_point_dist_sq() {
        let xs = coords(100, 7, 50.0);
        let ys = coords(100, 8, 50.0);
        let q = Point::new(17.0, 23.0);
        let mut out = vec![0.0; 100];
        distances_sq_tile(q.x, q.y, &xs, &ys, &mut out);
        for ((x, y), d2) in xs.iter().zip(&ys).zip(&out) {
            let p = Point::new(*x, *y);
            assert_eq!(d2.to_bits(), p.dist_sq(&q).to_bits());
            assert_eq!(d2.to_bits(), q.dist_sq(&p).to_bits());
        }
    }

    #[test]
    fn count_matches_filtered_scalar() {
        let xs = coords(333, 9, 25.0);
        let ys = coords(333, 10, 25.0);
        let r2 = 8.0 * 8.0;
        let want = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| {
                let dx = 12.0 - **x;
                let dy = 12.0 - **y;
                dx * dx + dy * dy <= r2
            })
            .count();
        assert_eq!(count_within_span(12.0, 12.0, &xs, &ys, r2), want);
        assert!(want > 0, "degenerate test: no points in range");
    }

    #[test]
    fn scatter_bit_equals_branchy_scatter() {
        let kernel = Gaussian::new(4.0);
        let radius = kernel.effective_radius(1e-9);
        let cutoff = (radius * radius).min(kernel.support_sq());
        let qxs: Vec<f64> = (0..40).map(|i| i as f64 * 0.7).collect();
        let scale = 0.37;
        let (px, py, qy) = (13.0, 5.0, 4.0);
        let mut want = vec![0.5; qxs.len()];
        for (a, qx) in want.iter_mut().zip(&qxs) {
            let q = Point::new(*qx, qy);
            let d2 = q.dist_sq(&Point::new(px, py));
            if d2 <= cutoff {
                *a += scale * kernel.eval_sq(d2);
            }
        }
        let mut got = vec![0.5; qxs.len()];
        scatter_scaled_row(&kernel, cutoff, scale, px, py, &qxs, qy, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn soa_constructors_preserve_order_and_columns() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let soa = PointsSoA::from_points(&pts);
        assert_eq!(soa.xs, vec![1.0, 3.0]);
        assert_eq!(soa.ys, vec![2.0, 4.0]);
        assert!(soa.ts.is_empty() && soa.ws.is_empty());
        assert_eq!(soa.len(), 2);
        assert!(!soa.is_empty());

        let timed = vec![TimedPoint::new(1.0, 2.0, 9.0)];
        let soa = PointsSoA::from_timed(&timed);
        assert_eq!(soa.ts, vec![9.0]);

        let samples = vec![(Point::new(5.0, 6.0), 42.0)];
        let soa = PointsSoA::from_samples(&samples);
        assert_eq!(soa.ws, vec![42.0]);
        assert!(PointsSoA::default().is_empty());
    }
}
