//! Small numeric helpers shared by the statistics and bandwidth modules.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by `n`). Returns 0 for fewer than 1 element.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (divide by `n − 1`). Returns 0 for `n < 2`.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Interquartile range using the nearest-rank quartile convention.
/// Returns 0 for fewer than 4 elements.
pub fn iqr(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| -> f64 {
        let idx = (f * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    };
    q(0.75) - q(0.25)
}

/// Two-sided tail probability of the standard normal distribution:
/// `P(|Z| > |z|)`. Used by the Moran's I / Getis-Ord z-tests.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (max absolute error ~1.5e-7, ample for significance reporting).
pub fn normal_two_sided_p(z: f64) -> f64 {
    let phi = 0.5 * (1.0 + erf(z.abs() / std::f64::consts::SQRT_2));
    (2.0 * (1.0 - phi)).clamp(0.0, 1.0)
}

/// Error function via Abramowitz–Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Derive an independent sub-seed for replicate `k` of a seeded
/// experiment (SplitMix64 finalizer over the combined bits). Used by the
/// permutation/simulation loops so each replicate owns its own RNG
/// stream — which makes the loops order-independent and therefore
/// parallelizable with bit-identical results.
pub fn mix_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(k.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_distinguishes_replicates() {
        let a = mix_seed(1, 0);
        let b = mix_seed(1, 1);
        let c = mix_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(1, 0));
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(sample_std(&[1.0]), 0.0);
    }

    #[test]
    fn iqr_nearest_rank() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        // q25 at index round(0.25*8)=2 -> 3, q75 at round(0.75*8)=6 -> 7
        assert_eq!(iqr(&xs), 4.0);
        assert_eq!(iqr(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_p_values() {
        assert!((normal_two_sided_p(0.0) - 1.0).abs() < 1e-6);
        assert!((normal_two_sided_p(1.959964) - 0.05).abs() < 1e-4);
        assert!(normal_two_sided_p(5.0) < 1e-5);
        // symmetric
        assert_eq!(normal_two_sided_p(2.0), normal_two_sided_p(-2.0));
    }
}
