//! Error type shared across the suite.

use std::fmt;

/// Convenience alias used by fallible APIs in the suite.
pub type Result<T> = std::result::Result<T, LsgaError>;

/// Errors produced by the `lsga` crates.
///
/// Panics are reserved for programmer errors (violated preconditions such
/// as a non-positive bandwidth); recoverable conditions — bad input files,
/// unsolvable kriging systems, empty datasets where data is required —
/// surface as `LsgaError`.
#[derive(Debug, Clone, PartialEq)]
pub enum LsgaError {
    /// The input dataset is empty but the operation needs data.
    EmptyDataset(&'static str),
    /// A parameter value is outside its legal range.
    InvalidParameter { name: &'static str, message: String },
    /// A linear system had no (stable) solution.
    SingularSystem(&'static str),
    /// Parsing an external file failed.
    Parse { line: usize, message: String },
    /// An I/O error (message-only so the error stays `Clone + PartialEq`).
    Io(String),
    /// A graph vertex/edge reference was out of bounds.
    GraphIndex(String),
    /// A distributed worker died (crash or lost heartbeat) while holding
    /// a task.
    WorkerLost { worker: usize, tile: usize },
    /// A per-task deadline fired before the task completed (simulated
    /// ticks, not wall-clock).
    Timeout { what: &'static str, ticks: u64 },
    /// A data shipment to a worker was lost in transit and must be
    /// re-sent.
    ShipmentLost { tile: usize },
    /// A distributed task failed; `attempts` is how many times it had
    /// been tried when the error was recorded.
    TaskFailed {
        tile: usize,
        attempts: u32,
        message: String,
    },
    /// A computation running on behalf of this request panicked — e.g.
    /// a single-flight leader that other requests had coalesced onto.
    /// The panic itself propagates in the computing thread; waiters
    /// receive this error instead of blocking forever.
    Panicked(&'static str),
}

impl fmt::Display for LsgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsgaError::EmptyDataset(what) => write!(f, "empty dataset: {what}"),
            LsgaError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            LsgaError::SingularSystem(what) => write!(f, "singular linear system: {what}"),
            LsgaError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LsgaError::Io(message) => write!(f, "I/O error: {message}"),
            LsgaError::GraphIndex(message) => write!(f, "graph index error: {message}"),
            LsgaError::WorkerLost { worker, tile } => {
                write!(f, "worker {worker} lost while running tile {tile}")
            }
            LsgaError::Timeout { what, ticks } => {
                write!(f, "timeout after {ticks} ticks: {what}")
            }
            LsgaError::ShipmentLost { tile } => {
                write!(f, "shipment for tile {tile} lost in transit")
            }
            LsgaError::TaskFailed {
                tile,
                attempts,
                message,
            } => {
                write!(
                    f,
                    "task for tile {tile} failed after {attempts} attempt(s): {message}"
                )
            }
            LsgaError::Panicked(what) => write!(f, "computation panicked: {what}"),
        }
    }
}

impl std::error::Error for LsgaError {}

impl From<std::io::Error> for LsgaError {
    fn from(e: std::io::Error) -> Self {
        LsgaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LsgaError::EmptyDataset("points").to_string(),
            "empty dataset: points"
        );
        assert!(LsgaError::InvalidParameter {
            name: "eps",
            message: "must be positive".into()
        }
        .to_string()
        .contains("eps"));
        assert!(LsgaError::Parse {
            line: 3,
            message: "bad float".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn distributed_failure_messages() {
        assert_eq!(
            LsgaError::WorkerLost { worker: 3, tile: 7 }.to_string(),
            "worker 3 lost while running tile 7"
        );
        assert_eq!(
            LsgaError::Timeout {
                what: "straggling task",
                ticks: 40
            }
            .to_string(),
            "timeout after 40 ticks: straggling task"
        );
        assert_eq!(
            LsgaError::ShipmentLost { tile: 2 }.to_string(),
            "shipment for tile 2 lost in transit"
        );
        let e = LsgaError::TaskFailed {
            tile: 1,
            attempts: 4,
            message: "retry budget exhausted".into(),
        };
        assert!(e.to_string().contains("tile 1"));
        assert!(e.to_string().contains("4 attempt(s)"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: LsgaError = io.into();
        assert!(matches!(e, LsgaError::Io(_)));
    }
}
