//! Property tests on the foundation types: kernel laws, bbox distance
//! bounds, grid indexing, and the linear solver.

use lsga_core::linalg::{solve, Matrix};
use lsga_core::{BBox, GridSpec, Kernel, KernelKind, Point};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = lsga_core::AnyKernel> {
    (0usize..7, 0.1f64..100.0).prop_map(|(i, b)| KernelKind::ALL[i].with_bandwidth(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernels_nonnegative_bounded_and_max_at_zero(k in arb_kernel(), d in 0.0f64..1000.0) {
        let v = k.eval(d);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= k.max_value() + 1e-12);
    }

    #[test]
    fn kernel_support_is_sharp(k in arb_kernel(), frac in 1.0001f64..10.0) {
        if let Some(r) = k.support() {
            prop_assert_eq!(k.eval(r * frac), 0.0);
        }
    }

    #[test]
    fn effective_radius_bounds_tail(k in arb_kernel(), eps_exp in 1i32..12) {
        let eps = 10f64.powi(-eps_exp);
        let r = k.effective_radius(eps);
        prop_assert!(k.eval(r * 1.0001) <= eps * k.max_value() + 1e-15);
    }

    #[test]
    fn bbox_min_max_dist_sandwich_point_distances(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
        qx in -200.0f64..200.0,
        qy in -200.0f64..200.0,
    ) {
        let points: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let bbox = BBox::of_points(&points);
        let q = Point::new(qx, qy);
        let lo = bbox.min_dist_sq(&q);
        let hi = bbox.max_dist_sq(&q);
        for p in &points {
            let d2 = q.dist_sq(p);
            prop_assert!(d2 >= lo - 1e-9);
            prop_assert!(d2 <= hi + 1e-9);
        }
    }

    #[test]
    fn grid_pixel_of_contains_center_roundtrip(
        nx in 1usize..64,
        ny in 1usize..64,
        ix_f in 0.0f64..1.0,
        iy_f in 0.0f64..1.0,
    ) {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 10.0, 7.0), nx, ny);
        let ix = ((ix_f * nx as f64) as usize).min(nx - 1);
        let iy = ((iy_f * ny as f64) as usize).min(ny - 1);
        let c = spec.pixel_center(ix, iy);
        prop_assert_eq!(spec.pixel_of(&c), (ix, iy));
    }

    #[test]
    fn solver_roundtrips_well_conditioned_systems(
        diag in prop::collection::vec(1.0f64..10.0, 2..8),
        off in prop::collection::vec(-0.2f64..0.2, 64),
        x_true in prop::collection::vec(-5.0f64..5.0, 2..8),
    ) {
        let n = diag.len().min(x_true.len());
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let v = if r == c { diag[r] } else { off[(r * n + c) % off.len()] };
                a.set(r, c, v);
            }
        }
        let b = a.mul_vec(&x_true[..n]);
        let x = solve(a, b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true[..n]) {
            prop_assert!((xi - ti).abs() < 1e-8, "{} vs {}", xi, ti);
        }
    }
}
