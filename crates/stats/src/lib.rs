//! # lsga-stats
//!
//! The correlation-analysis tools of the paper's Table 1 beyond the
//! K-function — Moran's I and the Getis-Ord General G — plus the spatial
//! clustering methods its introduction cites (\[18, 88\]):
//!
//! * [`weights`] — sparse spatial weight matrices (distance band, k-NN,
//!   row standardization) that both global statistics consume;
//! * [`areal`] — quadrat counting: aggregating a point dataset onto a
//!   lattice of cells, the areal form these statistics apply to;
//! * [`moran`] — global Moran's I with the analytic normal z-test and a
//!   permutation test;
//! * [`getis`] — Getis-Ord General G with a permutation test;
//! * [`cluster`] — grid-accelerated DBSCAN, K-means (k-means++ init), and
//!   the adjusted Rand index for evaluating recovered hotspot structure;
//! * [`local`] — the local decompositions practitioners use for hot-spot
//!   mapping: Getis-Ord `Gi*` and local Moran's I (LISA).

pub mod areal;
pub mod cluster;
pub mod getis;
pub mod local;
pub mod moran;
pub mod weights;

pub use areal::{quadrat_chi2_test, quadrat_counts, QuadratTest};
pub use cluster::{
    adjusted_rand_index, dbscan, dbscan_threads, kmeans, kmeans_threads, DbscanResult,
    KMeansResult, NOISE,
};
pub use getis::{general_g, general_g_threads, GeneralGResult};
pub use local::{
    lisa_quadrants, local_gi_star, local_gi_star_threads, local_morans_i, local_morans_i_threads,
    LisaQuadrant, LocalResult,
};
pub use moran::{morans_i, morans_i_threads, MoranResult};
pub use weights::SpatialWeights;
