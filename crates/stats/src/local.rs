//! Local indicators of spatial association: Getis-Ord `Gi*` and local
//! Moran's I (LISA).
//!
//! The paper's Table 1 lists the *global* Moran's I and General G; the
//! tools practitioners actually click in ArcGIS ("Hot Spot Analysis")
//! are their local decompositions, which attach a z-score to every
//! cell. They are included as the natural extension of the global
//! statistics and feed the same quadrat-count pipeline.

use crate::moran::PERM_CHUNK;
use crate::weights::SpatialWeights;
use lsga_core::par::{par_map, par_reduce, Threads};
use lsga_core::util::{mix_seed, normal_two_sided_p};
use lsga_core::{LsgaError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sites handled per work-stealing claim in the per-location maps.
const SITE_CHUNK: usize = 256;

/// Per-location result of a local statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalResult {
    /// The local statistic value (z-score for `Gi*`, `I_i` for LISA).
    pub value: f64,
    /// Two-sided normal p-value (analytic for `Gi*`, permutation-based
    /// for LISA when permutations were requested, else analytic-ish 1.0).
    pub p: f64,
}

/// Moran-scatterplot quadrant of a location (the LISA cluster map
/// legend: High-High cores, Low-Low cold clusters, and the two outlier
/// quadrants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LisaQuadrant {
    /// High value amid high neighbours (hot-spot core).
    HighHigh,
    /// Low value amid low neighbours (cold-spot core).
    LowLow,
    /// High value amid low neighbours (positive outlier).
    HighLow,
    /// Low value amid high neighbours (negative outlier).
    LowHigh,
}

/// Classify every location into its Moran-scatterplot quadrant by the
/// signs of its deviation and its spatial lag's deviation — the layer a
/// LISA cluster map colours (usually masked by the permutation p-values
/// of [`local_morans_i`]).
pub fn lisa_quadrants(values: &[f64], w: &SpatialWeights) -> Vec<LisaQuadrant> {
    let n = values.len();
    assert_eq!(n, w.n(), "value/weight dimension mismatch");
    let mean = values.iter().sum::<f64>() / n.max(1) as f64;
    let lag = w.lag(values);
    // The lag of the mean field: each row's weight sum times the mean.
    (0..n)
        .map(|i| {
            let (_, ws) = w.row(i);
            let wsum: f64 = ws.iter().sum();
            let z = values[i] - mean;
            let zlag = lag[i] - wsum * mean;
            match (z >= 0.0, zlag >= 0.0) {
                (true, true) => LisaQuadrant::HighHigh,
                (false, false) => LisaQuadrant::LowLow,
                (true, false) => LisaQuadrant::HighLow,
                (false, true) => LisaQuadrant::LowHigh,
            }
        })
        .collect()
}

/// Getis-Ord `Gi*` hot-spot statistic for every location: the z-score of
/// the weighted local sum (self-inclusive) against its expectation under
/// spatial randomness.
///
/// `Gi*_i = (Σ_j w*_ij x_j − X̄ · W*_i) / (S · sqrt((n·Σ w*_ij² − W*_i²)/(n−1)))`
/// with `w*` = `w` plus a unit self-weight. Positive z: cluster of high
/// values ("hot spot"); negative: cluster of low values ("cold spot").
pub fn local_gi_star(values: &[f64], w: &SpatialWeights) -> Vec<LocalResult> {
    local_gi_star_threads(values, w, Threads::auto())
}

/// [`local_gi_star`] with an explicit [`Threads`] config. Each location
/// is independent, so the site loop parallelizes with bit-identical
/// results.
pub fn local_gi_star_threads(
    values: &[f64],
    w: &SpatialWeights,
    threads: Threads,
) -> Vec<LocalResult> {
    let n = values.len();
    assert_eq!(n, w.n(), "value/weight dimension mismatch");
    assert!(n >= 2, "need at least two locations");
    let nf = n as f64;
    let mean = values.iter().sum::<f64>() / nf;
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    let s = (sum_sq / nf - mean * mean).max(0.0).sqrt();
    par_map(n, SITE_CHUNK, threads, |i| {
        {
            let (cols, ws) = w.row(i);
            // Self-inclusive star weights.
            let mut lag = values[i]; // w*_ii = 1
            let mut w_sum = 1.0;
            let mut w_sq = 1.0;
            for (c, wv) in cols.iter().zip(ws) {
                lag += wv * values[*c as usize];
                w_sum += wv;
                w_sq += wv * wv;
            }
            let denom_inner = (nf * w_sq - w_sum * w_sum) / (nf - 1.0);
            let denom = s * denom_inner.max(0.0).sqrt();
            let z = if denom > 0.0 {
                (lag - mean * w_sum) / denom
            } else {
                0.0
            };
            LocalResult {
                value: z,
                p: normal_two_sided_p(z),
            }
        }
    })
}

/// Local Moran's I (Anselin's LISA) per location:
/// `I_i = (z_i / m₂) · Σ_j w_ij z_j` with `z = x − x̄`,
/// `m₂ = Σ z² / n`. Positive `I_i`: the location sits in a high-high or
/// low-low cluster; negative: a spatial outlier.
///
/// With `permutations > 0`, a conditional permutation test (the other
/// values shuffled over the other locations) yields pseudo p-values;
/// with `0` the `p` field is 1.0 (no inference).
///
/// Returns [`LsgaError::InvalidParameter`] for a value/weight dimension
/// mismatch, fewer than three locations, non-finite values, or a
/// degenerate weight matrix (non-finite or zero total weight).
pub fn local_morans_i(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
) -> Result<Vec<LocalResult>> {
    local_morans_i_threads(values, w, permutations, seed, Threads::auto())
}

/// Shared input validation for the local Moran statistic: the failure
/// modes that would otherwise panic (dimension mismatch, tiny n) or
/// silently poison every z-score with NaN (non-finite values, a weight
/// matrix whose total weight is zero or non-finite).
fn validate_local_inputs(values: &[f64], w: &SpatialWeights) -> Result<()> {
    let n = values.len();
    if n != w.n() {
        return Err(LsgaError::InvalidParameter {
            name: "values",
            message: format!("{n} values but {} weight-matrix rows", w.n()),
        });
    }
    if n < 3 {
        return Err(LsgaError::InvalidParameter {
            name: "values",
            message: format!("local statistics need at least three locations, got {n}"),
        });
    }
    if let Some(i) = values.iter().position(|v| !v.is_finite()) {
        return Err(LsgaError::InvalidParameter {
            name: "values",
            message: format!("value {i} is non-finite: {}", values[i]),
        });
    }
    let s0 = w.s0();
    if !(s0.is_finite() && s0 > 0.0) {
        return Err(LsgaError::InvalidParameter {
            name: "weights",
            message: format!("degenerate weight matrix: total weight S0 = {s0}"),
        });
    }
    Ok(())
}

/// [`local_morans_i`] with an explicit [`Threads`] config. Permutation
/// replicates run in parallel, each with its own `(seed, replicate)`
/// RNG stream; the per-site extreme counters are exact integers summed
/// in chunk order, so results are bit-identical for every thread count.
pub fn local_morans_i_threads(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
    threads: Threads,
) -> Result<Vec<LocalResult>> {
    validate_local_inputs(values, w)?;
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let z: Vec<f64> = values.iter().map(|x| x - mean).collect();
    let m2 = z.iter().map(|v| v * v).sum::<f64>() / n as f64;
    if m2 == 0.0 {
        return Ok(vec![LocalResult { value: 0.0, p: 1.0 }; n]);
    }
    let lag_i = |i: usize, z: &[f64]| -> f64 {
        let (cols, ws) = w.row(i);
        cols.iter().zip(ws).map(|(c, wv)| wv * z[*c as usize]).sum()
    };
    let observed: Vec<f64> = (0..n).map(|i| z[i] / m2 * lag_i(i, &z)).collect();
    if permutations == 0 {
        return Ok(observed
            .into_iter()
            .map(|value| LocalResult { value, p: 1.0 })
            .collect());
    }
    // Conditional permutation: hold z_i fixed, shuffle the others. Each
    // replicate derives its RNG from (seed, replicate); per-site extreme
    // counters accumulate per chunk and are merged in chunk order.
    let extreme: Vec<usize> = par_reduce(
        permutations,
        PERM_CHUNK,
        threads,
        vec![0usize; n],
        |range| {
            let mut local = vec![0usize; n];
            let mut shuffled = z.clone();
            for k in range {
                shuffled.copy_from_slice(&z);
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, k as u64));
                shuffled.shuffle(&mut rng);
                // One global shuffle approximates the conditional draw
                // for all sites at once (the standard fast LISA
                // implementation trick): for each site, overwrite
                // position i with its true z_i.
                for i in 0..n {
                    let saved = shuffled[i];
                    shuffled[i] = z[i];
                    let ip = z[i] / m2 * lag_i(i, &shuffled);
                    if ip.abs() >= observed[i].abs() - 1e-15 {
                        local[i] += 1;
                    }
                    shuffled[i] = saved;
                }
            }
            local
        },
        |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(part) {
                *a += p;
            }
            acc
        },
    );
    Ok(observed
        .into_iter()
        .zip(extreme)
        .map(|(value, ex)| LocalResult {
            value,
            p: (ex + 1) as f64 / (permutations + 1) as f64,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::Point;

    fn lattice_weights(k: usize) -> SpatialWeights {
        let pts: Vec<Point> = (0..k * k)
            .map(|i| Point::new((i % k) as f64, (i / k) as f64))
            .collect();
        SpatialWeights::distance_band(&pts, 1.0)
    }

    /// 8x8 lattice with a hot 3x3 corner.
    fn hot_corner(k: usize) -> Vec<f64> {
        (0..k * k)
            .map(|i| {
                let (x, y) = (i % k, i / k);
                if x < 3 && y < 3 {
                    10.0
                } else {
                    1.0
                }
            })
            .collect()
    }

    #[test]
    fn gi_star_flags_the_hot_corner() {
        let k = 8;
        let w = lattice_weights(k);
        let values = hot_corner(k);
        let gi = local_gi_star(&values, &w);
        // Centre of the hot block: strongly positive and significant.
        let hot = gi[k + 1];
        assert!(hot.value > 2.5, "z = {}", hot.value);
        assert!(hot.p < 0.05);
        // Far corner: weakly negative (cold side), not a hot spot.
        let cold = gi[(k - 1) * k + (k - 1)];
        assert!(cold.value < 0.5, "z = {}", cold.value);
    }

    #[test]
    fn gi_star_zero_variance_is_flat() {
        let k = 5;
        let w = lattice_weights(k);
        let gi = local_gi_star(&[3.0; 25], &w);
        assert!(gi.iter().all(|r| r.value == 0.0));
    }

    #[test]
    fn lisa_high_high_and_outlier_signs() {
        let k = 8;
        let w = lattice_weights(k);
        let mut values = hot_corner(k);
        // Plant a high outlier amid the low region.
        values[5 * k + 5] = 10.0;
        let lisa = local_morans_i(&values, &w, 99, 7).unwrap();
        // Hot-block interior: positive I_i (high-high).
        assert!(lisa[k + 1].value > 0.5, "I = {}", lisa[k + 1].value);
        // The isolated spike: negative I_i (high-low outlier).
        assert!(lisa[5 * k + 5].value < 0.0, "I = {}", lisa[5 * k + 5].value);
        // Permutation p-values are valid probabilities.
        assert!(lisa.iter().all(|r| (0.0..=1.0).contains(&r.p)));
        // The hot-block core should be significant.
        assert!(lisa[k + 1].p < 0.1, "p = {}", lisa[k + 1].p);
    }

    #[test]
    fn lisa_without_permutations_skips_inference() {
        let k = 5;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k).map(|i| (i % k) as f64).collect();
        let lisa = local_morans_i(&values, &w, 0, 0).unwrap();
        assert!(lisa.iter().all(|r| r.p == 1.0));
        // Gradient: an off-centre interior cell (z_i ≠ 0) sits in a
        // similar-valued neighbourhood, so its local I is positive.
        assert!(lisa[2 * k + 1].value > 0.0, "I = {}", lisa[2 * k + 1].value);
    }

    #[test]
    fn lisa_sums_to_global_moran_numerator() {
        // Σ_i I_i = n/S0 normalization away from the global I: check the
        // proportionality explicitly.
        let k = 6;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k).map(|i| ((i * 31 + 3) % 11) as f64).collect();
        let lisa = local_morans_i(&values, &w, 0, 0).unwrap();
        let sum_local: f64 = lisa.iter().map(|r| r.value).sum();
        let global = crate::morans_i(&values, &w, 0, 0).unwrap();
        // global I = sum_local / S0 * ... derive: I = (n/S0)*(Σ w z z)/Σz²,
        // Σ I_i = Σ z_i lag_i / m2 = n (Σ w z z)/Σ z² = S0/n * n * I... =>
        // I = Σ I_i / S0.
        assert!(
            (global.i - sum_local / w.s0()).abs() < 1e-9,
            "{} vs {}",
            global.i,
            sum_local / w.s0()
        );
    }

    #[test]
    fn quadrants_match_structure() {
        let k = 8;
        let w = lattice_weights(k);
        let mut values = hot_corner(k);
        values[5 * k + 5] = 10.0; // outlier spike in the low region
        let quads = lisa_quadrants(&values, &w);
        assert_eq!(quads[k + 1], LisaQuadrant::HighHigh); // hot core
        assert_eq!(quads[6 * k + 6], LisaQuadrant::LowLow); // far corner
        assert_eq!(quads[5 * k + 5], LisaQuadrant::HighLow); // the spike
                                                             // Neighbour of the spike: low value, raised lag.
        assert_eq!(quads[5 * k + 4], LisaQuadrant::LowHigh);
        // Quadrant signs agree with the local I signs: HH/LL -> I >= 0.
        let lisa = local_morans_i(&values, &w, 0, 0).unwrap();
        for (q, r) in quads.iter().zip(&lisa) {
            match q {
                LisaQuadrant::HighHigh | LisaQuadrant::LowLow => {
                    assert!(r.value >= -1e-12)
                }
                _ => assert!(r.value <= 1e-12),
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let k = 5;
        let w = lattice_weights(k);
        let values = hot_corner(k);
        let a = local_morans_i(&values, &w, 49, 3).unwrap();
        let b = local_morans_i(&values, &w, 49, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lisa_rejects_dimension_mismatch_and_tiny_inputs() {
        let w = lattice_weights(5);
        let err = local_morans_i(&[1.0; 24], &w, 0, 0).unwrap_err();
        assert!(
            matches!(err, LsgaError::InvalidParameter { name: "values", .. }),
            "{err:?}"
        );
        let w2 = SpatialWeights::distance_band(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1.5);
        let err = local_morans_i(&[1.0, 2.0], &w2, 0, 0).unwrap_err();
        assert!(
            matches!(err, LsgaError::InvalidParameter { name: "values", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn lisa_rejects_non_finite_values() {
        let w = lattice_weights(5);
        let mut values = hot_corner(5);
        values[7] = f64::NAN;
        let err = local_morans_i(&values, &w, 9, 1).unwrap_err();
        assert!(
            matches!(err, LsgaError::InvalidParameter { name: "values", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn lisa_rejects_degenerate_weight_matrix() {
        // Band smaller than any pairwise distance: every row is empty,
        // S0 = 0, and every local I would be a meaningless 0 — reject.
        let pts: Vec<Point> = (0..9).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let w = SpatialWeights::distance_band(&pts, 1.0);
        assert_eq!(w.s0(), 0.0);
        let err = local_morans_i(&[1.0; 9], &w, 0, 0).unwrap_err();
        assert!(
            matches!(
                err,
                LsgaError::InvalidParameter {
                    name: "weights",
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
