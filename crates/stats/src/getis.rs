//! Getis-Ord General G (paper Table 1, correlation analysis).
//!
//! `G = Σ_ij w_ij·x_i·x_j / Σ_{i≠j} x_i·x_j` over non-negative values
//! with (typically binary distance-band) weights. G above its
//! expectation `S0 / (n(n−1))` signals that **high** values cluster
//! ("hot spots"); below signals clustering of low values — the
//! distinction Moran's I cannot make.
//!
//! Significance uses a permutation test (the analytic moments exist but
//! every practical implementation offers permutation inference; with
//! seeded RNG it is also exactly reproducible).

use crate::moran::PERM_CHUNK;
use crate::weights::SpatialWeights;
use lsga_core::par::{par_map, Threads};
use lsga_core::util::{mix_seed, normal_two_sided_p};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a General G analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralGResult {
    /// The statistic.
    pub g: f64,
    /// Null expectation `S0 / (n(n−1))`.
    pub expected: f64,
    /// Permutation z-score.
    pub z: f64,
    /// Two-sided p-value from the permutation z-score.
    pub p: f64,
    /// Pseudo p-value `(#{|G_p − E| ≥ |G − E|} + 1) / (perms + 1)`.
    pub p_perm: f64,
}

/// Compute the General G with a permutation test. Values must be
/// non-negative (the statistic's domain); returns `None` when `n < 3`,
/// all values are zero, or the weights are empty.
pub fn general_g(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
) -> Option<GeneralGResult> {
    general_g_threads(values, w, permutations, seed, Threads::auto())
}

/// [`general_g`] with an explicit [`Threads`] config. Permutation
/// replicates run in parallel, each with its own `(seed, replicate)`
/// RNG stream; results are bit-identical for every thread count.
pub fn general_g_threads(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
    threads: Threads,
) -> Option<GeneralGResult> {
    let n = values.len();
    assert_eq!(n, w.n(), "value/weight dimension mismatch");
    assert!(
        values.iter().all(|v| *v >= 0.0),
        "General G requires non-negative values"
    );
    assert!(permutations >= 1, "need at least one permutation");
    if n < 3 {
        return None;
    }
    let s0 = w.s0();
    if s0 == 0.0 {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    let denom = sum * sum - sum_sq; // Σ_{i≠j} x_i x_j
    if denom <= 0.0 {
        return None;
    }
    let _span = lsga_obs::span("stats.general_g");
    let stat = |x: &[f64]| -> f64 {
        let mut num = 0.0;
        let mut nnz: u64 = 0;
        for i in 0..n {
            let (cols, ws) = w.row(i);
            nnz += cols.len() as u64;
            let xi = x[i];
            for (c, wv) in cols.iter().zip(ws) {
                num += wv * xi * x[*c as usize];
            }
        }
        lsga_obs::add(lsga_obs::Counter::StatsPairs, nnz);
        num / denom
    };
    let g_obs = stat(values);
    let expected = s0 / (n as f64 * (n as f64 - 1.0));

    // Per-replicate RNG streams make the loop order-independent and
    // therefore parallel with bit-identical output.
    let perms: Vec<f64> = par_map(permutations, PERM_CHUNK, threads, |k| {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, k as u64));
        let mut shuffled = values.to_vec();
        shuffled.shuffle(&mut rng);
        stat(&shuffled)
    });
    let mut at_least = 0usize;
    for gp in &perms {
        if (gp - expected).abs() >= (g_obs - expected).abs() - 1e-15 {
            at_least += 1;
        }
    }
    let mean_p = perms.iter().sum::<f64>() / permutations as f64;
    let var_p = perms
        .iter()
        .map(|v| (v - mean_p) * (v - mean_p))
        .sum::<f64>()
        / permutations as f64;
    let z = if var_p > 0.0 {
        (g_obs - mean_p) / var_p.sqrt()
    } else {
        0.0
    };
    Some(GeneralGResult {
        g: g_obs,
        expected,
        z,
        p: normal_two_sided_p(z),
        p_perm: (at_least + 1) as f64 / (permutations + 1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::Point;

    fn lattice_weights(k: usize) -> SpatialWeights {
        let pts: Vec<Point> = (0..k * k)
            .map(|i| Point::new((i % k) as f64, (i / k) as f64))
            .collect();
        SpatialWeights::distance_band(&pts, 1.0)
    }

    #[test]
    fn hot_corner_detected() {
        // Large values packed into one lattice corner: G ≫ E[G].
        let k = 8;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k)
            .map(|i| {
                let (x, y) = (i % k, i / k);
                if x < 3 && y < 3 {
                    10.0
                } else {
                    0.1
                }
            })
            .collect();
        let r = general_g(&values, &w, 199, 5).unwrap();
        assert!(r.g > r.expected, "g {} vs E {}", r.g, r.expected);
        assert!(r.z > 3.0, "z = {}", r.z);
        assert!(r.p_perm < 0.02);
    }

    #[test]
    fn alternating_values_give_low_g() {
        // High values never adjacent: numerator only pairs high with low.
        let k = 8;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k)
            .map(|i| if (i % k + i / k) % 2 == 0 { 5.0 } else { 0.0 })
            .collect();
        let r = general_g(&values, &w, 199, 6).unwrap();
        assert!(r.g < r.expected);
        assert!(r.z < -3.0, "z = {}", r.z);
    }

    #[test]
    fn shuffled_values_not_significant() {
        let k = 9;
        let w = lattice_weights(k);
        // Hash-scrambled values (an affine pattern would be spatially
        // structured on the lattice).
        let values: Vec<f64> = (0..k * k)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 % 13.0)
            .collect();
        let r = general_g(&values, &w, 499, 7).unwrap();
        assert!(r.p_perm > 0.05, "p_perm = {}", r.p_perm);
    }

    #[test]
    fn degenerate_inputs() {
        let w = lattice_weights(3);
        assert!(general_g(&[0.0; 9], &w, 9, 0).is_none());
        let one_hot: Vec<f64> = (0..9).map(|i| if i == 4 { 3.0 } else { 0.0 }).collect();
        // Only one non-zero value: denominator Σ_{i≠j} x_i x_j = 0.
        assert!(general_g(&one_hot, &w, 9, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        let w = lattice_weights(3);
        let mut v = vec![1.0; 9];
        v[0] = -1.0;
        let _ = general_g(&v, &w, 9, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let w = lattice_weights(5);
        let values: Vec<f64> = (0..25).map(|i| (i % 6) as f64).collect();
        assert_eq!(
            general_g(&values, &w, 99, 11),
            general_g(&values, &w, 99, 11)
        );
    }
}
